//! Facade crate re-exporting all gnrlab subsystems.
pub use gnr_cmos as cmos;
pub use gnr_device as device;
pub use gnr_lattice as lattice;
pub use gnr_negf as negf;
pub use gnr_num as num;
pub use gnr_poisson as poisson;
pub use gnr_spice as spice;
pub use gnrfet_explore as explore;
