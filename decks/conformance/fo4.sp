* conformance: fo4 inverter chain
.nodes in out vdd load0 load1 load2 load3
v0 in 0 pulse( 0.0 0.8 1e-10 2e-11 2e-11 9e-10 2e-9 )
v1 vdd 0 dc 0.8
m2 out in 0 mdl0
m3 out in vdd mdl1
c4 in 0 2e-18
c5 in vdd 2e-18
c6 in out 4e-18
m7 load0 out 0 mdl0
m8 load0 out vdd mdl1
c9 out 0 2e-18
c10 out vdd 2e-18
c11 out load0 4e-18
m12 load1 out 0 mdl0
m13 load1 out vdd mdl1
c14 out 0 2e-18
c15 out vdd 2e-18
c16 out load1 4e-18
m17 load2 out 0 mdl0
m18 load2 out vdd mdl1
c19 out 0 2e-18
c20 out vdd 2e-18
c21 out load2 4e-18
m22 load3 out 0 mdl0
m23 load3 out vdd mdl1
c24 out 0 2e-18
c25 out vdd 2e-18
c26 out load3 4e-18
.model mdl0 extern
.model mdl1 extern
.end
