* conformance: latch half latch_b
.nodes in out vdd
v0 in 0 dc 0.0
v1 vdd 0 dc 0.8
m2 out in 0 mdl0
m3 out in vdd mdl1
c4 in 0 2e-18
c5 in vdd 2e-18
c6 in out 4e-18
.model mdl0 extern
.model mdl1 extern
.end
