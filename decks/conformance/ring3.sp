* conformance: 3-stage ring oscillator
.nodes vdd s0 s1 s2 s0d0 s0d1 s0d2 s1d0 s1d1 s1d2 s2d0 s2d1 s2d2
v0 vdd 0 dc 0.8
m1 s0 s2 0 mdl0
m2 s0 s2 vdd mdl1
c3 s2 0 2e-18
c4 s2 vdd 2e-18
c5 s2 s0 4e-18
m6 s0d0 s0 0 mdl0
m7 s0d0 s0 vdd mdl1
c8 s0 0 2e-18
c9 s0 vdd 2e-18
c10 s0 s0d0 4e-18
m11 s0d1 s0 0 mdl0
m12 s0d1 s0 vdd mdl1
c13 s0 0 2e-18
c14 s0 vdd 2e-18
c15 s0 s0d1 4e-18
m16 s0d2 s0 0 mdl0
m17 s0d2 s0 vdd mdl1
c18 s0 0 2e-18
c19 s0 vdd 2e-18
c20 s0 s0d2 4e-18
m21 s1 s0 0 mdl0
m22 s1 s0 vdd mdl1
c23 s0 0 2e-18
c24 s0 vdd 2e-18
c25 s0 s1 4e-18
m26 s1d0 s1 0 mdl0
m27 s1d0 s1 vdd mdl1
c28 s1 0 2e-18
c29 s1 vdd 2e-18
c30 s1 s1d0 4e-18
m31 s1d1 s1 0 mdl0
m32 s1d1 s1 vdd mdl1
c33 s1 0 2e-18
c34 s1 vdd 2e-18
c35 s1 s1d1 4e-18
m36 s1d2 s1 0 mdl0
m37 s1d2 s1 vdd mdl1
c38 s1 0 2e-18
c39 s1 vdd 2e-18
c40 s1 s1d2 4e-18
m41 s2 s1 0 mdl0
m42 s2 s1 vdd mdl1
c43 s1 0 2e-18
c44 s1 vdd 2e-18
c45 s1 s2 4e-18
m46 s2d0 s2 0 mdl0
m47 s2d0 s2 vdd mdl1
c48 s2 0 2e-18
c49 s2 vdd 2e-18
c50 s2 s2d0 4e-18
m51 s2d1 s2 0 mdl0
m52 s2d1 s2 vdd mdl1
c53 s2 0 2e-18
c54 s2 vdd 2e-18
c55 s2 s2d1 4e-18
m56 s2d2 s2 0 mdl0
m57 s2d2 s2 vdd mdl1
c58 s2 0 2e-18
c59 s2 vdd 2e-18
c60 s2 s2d2 4e-18
.model mdl0 extern
.model mdl1 extern
.end
