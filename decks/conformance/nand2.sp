* conformance: nand2
.nodes a b out vdd stack
v0 a 0 dc 0.0
v1 b 0 dc 0.0
v2 vdd 0 dc 0.8
m3 out a stack mdl0
m4 stack b 0 mdl0
m5 out a vdd mdl1
m6 out b vdd mdl1
c7 out 0 4e-18
.model mdl0 extern
.model mdl1 extern
.end
