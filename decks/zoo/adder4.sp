* 4-bit ripple-carry adder: 36 nand2 gates (144 fets)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
.subckt nand2 a b out vdd
mn1 out a mid nmos
mn2 mid b 0 nmos
mp1 out a vdd pmos
mp2 out b vdd pmos
cl out 0 5e-17
.ends
.subckt fa a b cin sum cout vdd
x1 a b n1 vdd nand2
x2 a n1 n2 vdd nand2
x3 b n1 n3 vdd nand2
x4 n2 n3 hx vdd nand2
x5 hx cin n4 vdd nand2
x6 hx n4 n5 vdd nand2
x7 cin n4 n6 vdd nand2
x8 n5 n6 sum vdd nand2
x9 n1 n4 cout vdd nand2
.ends
vdd vdd 0 dc 0.8
va0 a0 0 dc 0
va1 a1 0 dc 0
va2 a2 0 dc 0
va3 a3 0 dc 0
vb0 b0 0 dc 0
vb1 b1 0 dc 0
vb2 b2 0 dc 0
vb3 b3 0 dc 0
vcin cin 0 dc 0
xfa0 a0 b0 cin s0 c1 vdd fa
xfa1 a1 b1 c1 s1 c2 vdd fa
xfa2 a2 b2 c2 s2 c3 vdd fa
xfa3 a3 b3 c3 s3 cout vdd fa
.op
.end
