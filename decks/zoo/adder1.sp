* 1-bit full adder: 9 nand2 gates (sum and carry both nand-only)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
.subckt nand2 a b out vdd
mn1 out a mid nmos
mn2 mid b 0 nmos
mp1 out a vdd pmos
mp2 out b vdd pmos
cl out 0 5e-17
.ends
.subckt fa a b cin sum cout vdd
* n1 = nand(a,b); hx = a xor b; cout = nand(n1, n4)
x1 a b n1 vdd nand2
x2 a n1 n2 vdd nand2
x3 b n1 n3 vdd nand2
x4 n2 n3 hx vdd nand2
x5 hx cin n4 vdd nand2
x6 hx n4 n5 vdd nand2
x7 cin n4 n6 vdd nand2
x8 n5 n6 sum vdd nand2
x9 n1 n4 cout vdd nand2
.ends
vdd vdd 0 dc 0.8
va a 0 dc 0
vb b 0 dc 0
vc cin 0 dc 0
xfa a b cin sum cout vdd fa
.op
.end
