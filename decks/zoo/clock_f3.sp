* 4-stage clock buffer chain, fanout taper f = 3 (load c0 * f^k)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
.subckt inv in out vdd
mn out in 0 nmos
mp out in vdd pmos
.ends
vdd vdd 0 dc 0.8
vin in 0 pulse( 0 0.8 1e-10 2e-11 2e-11 9e-10 2e-9 )
x1 in b1 vdd inv
x2 b1 b2 vdd inv
x3 b2 b3 vdd inv
x4 b3 out vdd inv
c1 b1 0 6e-17
c2 b2 0 1.8e-16
c3 b3 0 5.4e-16
c4 out 0 1.62e-15
.tran 5e-12 2e-9
.end
