* 8-input nand gate (series n-stack, parallel p pull-ups)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
vdd vdd 0 dc 0.8
vi0 i0 0 dc 0.8
vi1 i1 0 dc 0.8
vi2 i2 0 dc 0.8
vi3 i3 0 dc 0.8
vi4 i4 0 dc 0.8
vi5 i5 0 dc 0.8
vi6 i6 0 dc 0.8
vi7 i7 0 dc 0.8
mn0 out i0 m1 nmos
mn1 m1 i1 m2 nmos
mn2 m2 i2 m3 nmos
mn3 m3 i3 m4 nmos
mn4 m4 i4 m5 nmos
mn5 m5 i5 m6 nmos
mn6 m6 i6 m7 nmos
mn7 m7 i7 0 nmos
mp0 out i0 vdd pmos
mp1 out i1 vdd pmos
mp2 out i2 vdd pmos
mp3 out i3 vdd pmos
mp4 out i4 vdd pmos
mp5 out i5 vdd pmos
mp6 out i6 vdd pmos
mp7 out i7 vdd pmos
cl out 0 1e-16
.op
.end
