* 4-input nand gate (series n-stack, parallel p pull-ups)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
vdd vdd 0 dc 0.8
vi0 i0 0 dc 0.8
vi1 i1 0 dc 0.8
vi2 i2 0 dc 0.8
vi3 i3 0 dc 0.8
mn0 out i0 m1 nmos
mn1 m1 i1 m2 nmos
mn2 m2 i2 m3 nmos
mn3 m3 i3 0 nmos
mp0 out i0 vdd pmos
mp1 out i1 vdd pmos
mp2 out i2 vdd pmos
mp3 out i3 vdd pmos
cl out 0 1e-16
.op
.end
