* 6t sram cell in hold state (word line low, bit lines precharged)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
.subckt inv in out vdd
mn out in 0 nmos
mp out in vdd pmos
.ends
vdd vdd 0 dc 0.8
vwl wl 0 dc 0
vbl bl 0 dc 0.8
vblb blb 0 dc 0.8
* cross-coupled pair: x1 drives qb from q, x2 drives q from qb
x1 q qb vdd inv
x2 qb q vdd inv
* access transistors (off in hold)
ma1 bl wl q nmos
ma2 blb wl qb nmos
cq q 0 1e-17
cqb qb 0 1e-17
.op
.end
