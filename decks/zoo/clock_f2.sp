* 4-stage clock buffer chain, fanout taper f = 2 (load c0 * f^k)
.model nmos surrogate polarity=n
.model pmos surrogate polarity=p
.subckt inv in out vdd
mn out in 0 nmos
mp out in vdd pmos
.ends
vdd vdd 0 dc 0.8
vin in 0 pulse( 0 0.8 1e-10 2e-11 2e-11 9e-10 2e-9 )
x1 in b1 vdd inv
x2 b1 b2 vdd inv
x3 b2 b3 vdd inv
x4 b3 out vdd inv
c1 b1 0 4e-17
c2 b2 0 8e-17
c3 b3 0 1.6e-16
c4 out 0 3.2e-16
.tran 5e-12 2e-9
.end
