//! Chaos soak: every registered fault site, one at a time, armed at
//! p = 0.3 over a composite workload that crosses all the fragile loops —
//! SCF, NEGF transport, DC rescue chain, transient ladder, Monte Carlo
//! checkpoint/resume, and the budget checks themselves.
//!
//! The contract is deliberately loose on *outcomes* (a fault may be
//! rescued, degrade the result, or surface an error) and strict on
//! *failure modes*: no workload may panic, and every failure must be one
//! of the typed error enums — never an abort, a poisoned lock, or a
//! nonsense result. This is the tier-2 safety net for new fault sites:
//! registering a site makes it part of the soak automatically.

use gnrlab::cmos::{CmosNode, CmosTransistor};
use gnrlab::device::scf::ScfOptions;
use gnrlab::device::{DeviceConfig, Polarity, ScfSolver, TableStore};
use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{
    characterize_stage_universe, monte_carlo_from_universe_resumable, StageUniverse,
};
use gnrlab::num::budget::{Budget, ExecLimits};
use gnrlab::num::fault::{self, FaultPlan, REGISTERED_SITES};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::dc::{dc_operating_point, DcOptions};
use gnrlab::spice::transient::{transient, TransientOptions};
use gnrlab::spice::{Circuit, Element, NodeId, Waveform};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The one-time, fault-free stage universe: characterizing under
/// injection is exercised separately (see [`soak_site`]), so the shared
/// sampling workload reuses a clean universe.
fn universe() -> &'static StageUniverse {
    static UNIVERSE: OnceLock<StageUniverse> = OnceLock::new();
    UNIVERSE.get_or_init(|| {
        fault::disarm();
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        characterize_stage_universe(&ExecCtx::serial(), &mut lib, 0.4, 15)
            .expect("fault-free universe characterizes")
    })
}

fn scf_solver() -> ScfSolver {
    let mut cfg = DeviceConfig::test_small(9).expect("valid test config");
    cfg.channel_cells = 12;
    ScfSolver::new(&cfg, ScfOptions::fast())
}

fn rc_circuit() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.add(Element::VSource {
        p: vin,
        n: NodeId::GROUND,
        wave: Waveform::Dc(1.0),
    });
    c.add(Element::Resistor {
        a: vin,
        b: out,
        ohms: 1e3,
    });
    c.add(Element::Capacitor {
        a: out,
        b: NodeId::GROUND,
        farads: 1e-12,
    });
    c
}

fn checkpoint_path(site: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gnr-chaos-soak-{}-{}.json",
        std::process::id(),
        site.replace('.', "-")
    ))
}

/// Runs the composite workload with `site` armed, recording each step's
/// outcome as a human-readable line. Returns the log; panics propagate to
/// the caller's `catch_unwind`.
fn soak_site(site: &'static str) -> Vec<String> {
    let mut log = Vec::new();
    let mut note = |step: &str, outcome: Result<String, String>| match outcome {
        Ok(ok) => log.push(format!("{site}/{step}: ok ({ok})")),
        Err(e) => {
            assert!(!e.is_empty(), "{site}/{step}: empty error display");
            log.push(format!("{site}/{step}: typed error ({e})"));
        }
    };

    // 1. SCF ladder (NEGF transport, Poisson, linear rescue inside).
    let solver = scf_solver();
    note(
        "scf",
        solver
            .solve(&ExecCtx::serial(), 0.0, 0.1)
            .map(|(r, _)| format!("I = {:.3e} A", r.current_a))
            .map_err(|e| e.to_string()),
    );

    // 2. DC operating point (gmin ladder, mid-rail seeds, source stepping).
    let c = rc_circuit();
    note(
        "dc",
        dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none())
            .map(|x| format!("{} unknowns", x.len()))
            .map_err(|e| e.to_string()),
    );

    // 3. Netlist front end: the SRAM zoo deck parses, elaborates, and
    //    solves its operating point with the site armed. The deck path
    //    shares the DC rescue ladder with the builders, so a fault may
    //    be rescued or surface — but only as a typed error.
    note(
        "sram-deck",
        gnrlab::spice::parse_deck(include_str!("../decks/zoo/sram6t.sp"))
            .map_err(|e| e.to_string())
            .and_then(|deck| {
                deck.elaborate(&gnrlab::spice::ModelBindings::new())
                    .map_err(|e| e.to_string())
            })
            .and_then(|elab| {
                dc_operating_point(
                    &elab.circuit,
                    None,
                    DcOptions::default(),
                    &ExecLimits::none(),
                )
                .map(|x| format!("{} unknowns", x.len()))
                .map_err(|e| e.to_string())
            }),
    );

    // 4. Transient ladder (dt halvings, source ramp) under a budget, so
    //    the budget checks themselves are inside the blast radius.
    let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(100_000));
    let ctx = ExecCtx::serial().with_limits(limits);
    note(
        "transient",
        transient(&ctx, &c, &TransientOptions::new(2e-9, 2e-11))
            .map(|(_, report)| format!("policy = {:?}", report.policy_used))
            .map_err(|e| e.to_string()),
    );

    // 5. Monte Carlo: interrupt after one chunk, checkpoint, resume.
    let path = checkpoint_path(site);
    let _ = std::fs::remove_file(&path);
    let capped = ExecCtx::serial()
        .with_limits(ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(1)));
    note(
        "mc-interrupt",
        monte_carlo_from_universe_resumable(&capped, universe(), 600, 20080608, Some(&path))
            .map(|o| format!("{}/{} samples", o.completed_samples, o.requested_samples))
            .map_err(|e| e.to_string()),
    );
    note(
        "mc-resume",
        monte_carlo_from_universe_resumable(
            &ExecCtx::serial(),
            universe(),
            600,
            20080608,
            Some(&path),
        )
        .map(|o| format!("complete = {}", o.is_complete()))
        .map_err(|e| e.to_string()),
    );
    let _ = std::fs::remove_file(&path);

    // 6. Characterization under injection — the one workload that reaches
    //    the per-cell fault log and the surface-GF cache. Only for the
    //    sites that can fire inside it (it is the expensive step).
    if site == "characterize" || site == "negf.surface_cache" {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        note(
            "characterize",
            characterize_stage_universe(&ExecCtx::serial(), &mut lib, 0.4, 15)
                .map(|_| "universe built".to_string())
                .map_err(|e| e.to_string()),
        );
    }

    // 7. Mode-space NEGF table under fallback injection: every armed
    //    probe reroutes that energy point through the fresh real-space
    //    solve, so the build must still land (within the conformance the
    //    gnr-device tests pin) — never panic or corrupt the table.
    if site == gnrlab::negf::mode_space::FALLBACK_SITE {
        use gnrlab::device::table::TableGrid;
        use gnrlab::device::{ballistic_negf_table, NegfTableOptions, SbfetModel};
        let mut cfg = DeviceConfig::test_small(9).expect("valid test config");
        cfg.channel_cells = 6;
        let grid = TableGrid {
            vgs: (0.0, 0.5),
            vds: (0.05, 0.35),
            points: 2,
        };
        note(
            "mode-space-table",
            SbfetModel::new(&cfg)
                .map_err(|e| e.to_string())
                .and_then(|model| {
                    ballistic_negf_table(
                        &ExecCtx::serial(),
                        &model,
                        Polarity::NType,
                        grid,
                        1,
                        &NegfTableOptions::mode_space(),
                    )
                    .map(|t| format!("solver_path = {}", t.solver_path()))
                    .map_err(|e| e.to_string())
                }),
        );
    }

    // 8. Content-addressed table store under disk-read injection: each
    //    re-read probes the corrupt-entry site and must either serve the
    //    clean entry or evict and rebuild — never surface a bad table.
    if site == gnrlab::device::store::FAULT_SITE {
        let dir = std::env::temp_dir().join(format!("gnr-chaos-store-{}", std::process::id()));
        let tx = CmosTransistor::nominal(CmosNode::N22);
        let mut rebuilt = 0usize;
        let mut outcome = Ok(String::new());
        for round in 0..10 {
            // A fresh handle each round forces the disk path (the
            // in-memory tier would otherwise absorb every later read).
            let store = TableStore::on_disk(&dir);
            match tx.to_table_cached(&store, Polarity::NType, 0.8) {
                Ok(t) => {
                    assert!(
                        t.current(0.8, 0.4).is_finite(),
                        "cached table must be well-formed"
                    );
                    rebuilt += 1;
                }
                Err(e) => {
                    outcome = Err(format!("round {round}: {e}"));
                    break;
                }
            }
        }
        if outcome.is_ok() {
            outcome = Ok(format!("{rebuilt}/10 reads served or rebuilt"));
        }
        note("table-store", outcome);
        let _ = std::fs::remove_dir_all(&dir);
    }
    log
}

/// One pass over every registered site. Serialized by being a single test
/// (the injector is process-global); each site's workload runs behind
/// `catch_unwind` so a panic is attributed to its site.
#[test]
fn every_registered_site_soaks_without_panic() {
    // Build the clean universe before any plan is armed.
    universe();
    let mut injected_total = 0usize;
    for &site in REGISTERED_SITES {
        fault::arm(FaultPlan::seeded(0x5eed ^ site.len() as u64).with_site(site, 0.3));
        let outcome = std::panic::catch_unwind(|| soak_site(site));
        injected_total += fault::injection_count(site);
        fault::disarm();
        match outcome {
            Ok(log) => {
                for line in &log {
                    println!("{line}");
                }
            }
            Err(_) => panic!("workload panicked with fault site '{site}' armed"),
        }
    }
    assert!(
        injected_total > 0,
        "the soak never injected a single fault — sites are miswired"
    );
}
