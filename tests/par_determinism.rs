//! Cross-pool determinism contract: every `ExecCtx` entry point must
//! produce bit-identical results regardless of thread count. The pool
//! only changes *who* computes each fixed chunk — the ordered merge and
//! the serial pre-draw of RNG/fault streams pin the arithmetic itself.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{characterize_stage_universe, monte_carlo_from_universe};
use gnrlab::num::par::ExecCtx;

fn pools() -> [ExecCtx; 3] {
    [
        ExecCtx::with_threads(1),
        ExecCtx::with_threads(2),
        ExecCtx::with_threads(4),
    ]
}

/// The pinned §4 Monte Carlo result (seed 20080608, Fast fidelity,
/// 2000 samples) is bit-identical whether the bias grid, the stage
/// universe, and the sample loop run serially or on 2- or 4-thread
/// pools — and the aggregate counts still match the recorded baseline.
#[test]
fn monte_carlo_pinned_result_is_pool_invariant() {
    let mut runs = Vec::new();
    for ctx in pools() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let universe = characterize_stage_universe(&ctx, &mut lib, 0.4, 15).expect("characterizes");
        let mc = monte_carlo_from_universe(&ctx, &universe, 2000, 20080608);
        runs.push(mc);
    }
    let baseline = &runs[0];
    assert_eq!(
        baseline.frequency_hz.len(),
        1470,
        "functional yield changed"
    );
    assert_eq!(
        baseline.stalled_samples, 530,
        "stalled-sample count changed"
    );
    assert!((baseline.functional_yield() - 0.735).abs() < 1e-12);

    for (threads, mc) in [(2usize, &runs[1]), (4, &runs[2])] {
        assert_eq!(
            mc.frequency_hz.len(),
            baseline.frequency_hz.len(),
            "{threads}-thread pool changed the kept-sample count"
        );
        assert_eq!(mc.stalled_samples, baseline.stalled_samples);
        for (a, b) in baseline.frequency_hz.iter().zip(&mc.frequency_hz) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "frequency drifted at {threads} threads"
            );
        }
        for (a, b) in baseline.dynamic_w.iter().zip(&mc.dynamic_w) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "dynamic power drifted at {threads} threads"
            );
        }
        for (a, b) in baseline.static_w.iter().zip(&mc.static_w) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "static power drifted at {threads} threads"
            );
        }
    }
}

/// A bias-grid table build — the hottest parallel loop — serialises to
/// byte-identical JSON under pool sizes 1, 2, and 4.
#[test]
fn device_table_json_is_pool_invariant() {
    let cfg = DeviceConfig::test_small(9).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (-0.3, 0.9),
        vds: (0.0, 0.8),
        points: 9,
    };
    let mut jsons = Vec::new();
    for ctx in pools() {
        let table = DeviceTable::from_model(&ctx, &model, Polarity::NType, grid, 4).expect("table");
        jsons.push(table.to_json().expect("serialises"));
    }
    assert_eq!(jsons[0], jsons[1], "2-thread table differs from serial");
    assert_eq!(jsons[0], jsons[2], "4-thread table differs from serial");
}
