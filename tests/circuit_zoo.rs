//! Circuit-zoo integration: the committed decks under `decks/zoo/` run as
//! real workloads — a 4-bit ripple-carry adder swept over its full truth
//! table, a 6T SRAM cell's butterfly SNM pinned to a golden value,
//! wide-fan-in NAND output-level ordering, fanout-tapered clock-chain
//! delays, and one deck routed through the characterization service's
//! job API.

use gnrlab::explore::devices::Fidelity;
use gnrlab::explore::service::{CharacterizationService, JobRequest};
use gnrlab::num::budget::ExecLimits;
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::dc::set_source_value;
use gnrlab::spice::measure::{propagation_delay, sram_butterfly_snm};
use gnrlab::spice::netlist::AnalysisCard;
use gnrlab::spice::{
    dc_operating_point, parse_deck, transient, DcOptions, ElaboratedDeck, ModelBindings,
    TransientOptions,
};

const VDD: f64 = 0.8;

fn elaborate(text: &str) -> ElaboratedDeck {
    parse_deck(text)
        .expect("parse deck")
        .elaborate(&ModelBindings::new())
        .expect("elaborate deck")
}

/// All 256 input combinations of the 4-bit ripple-carry adder compute
/// the right sum and carry, with warm-started DC sweeps (the previous
/// solution seeds the next combination).
#[test]
fn adder4_truth_table_sweep() {
    let elab = elaborate(include_str!("../decks/zoo/adder4.sp"));
    let mut circuit = elab.circuit.clone();
    let a_sources: Vec<usize> = (0..4)
        .map(|i| elab.source_index(&format!("va{i}")).expect("va source"))
        .collect();
    let b_sources: Vec<usize> = (0..4)
        .map(|i| elab.source_index(&format!("vb{i}")).expect("vb source"))
        .collect();
    let outs: Vec<_> = ["s0", "s1", "s2", "s3", "cout"]
        .iter()
        .map(|n| elab.node(n).expect("output node"))
        .collect();
    let mut warm: Option<Vec<f64>> = None;
    for a in 0..16u32 {
        for b in 0..16u32 {
            for i in 0..4 {
                let va = if a >> i & 1 == 1 { VDD } else { 0.0 };
                let vb = if b >> i & 1 == 1 { VDD } else { 0.0 };
                set_source_value(&mut circuit, a_sources[i], va).expect("set a");
                set_source_value(&mut circuit, b_sources[i], vb).expect("set b");
            }
            let x = dc_operating_point(
                &circuit,
                warm.as_deref(),
                DcOptions::default(),
                &ExecLimits::none(),
            )
            .unwrap_or_else(|e| panic!("a={a} b={b}: {e}"));
            let want = a + b;
            for (bit, node) in outs.iter().enumerate() {
                let v = circuit.voltage(&x, *node);
                let logic = v > VDD / 2.0;
                let expect = want >> bit & 1 == 1;
                assert_eq!(
                    logic, expect,
                    "a={a} b={b} bit {bit}: v={v:.4} (expect {expect})"
                );
                // Levels must be solid, not marginal.
                assert!(
                    if expect { v > 0.9 * VDD } else { v < 0.1 * VDD },
                    "a={a} b={b} bit {bit}: weak level {v:.4}"
                );
            }
            warm = Some(x);
        }
    }
}

/// The SRAM cell's hold-state butterfly SNM is pinned to a golden value.
/// The measurement chain (two forced half-VTCs through `transfer_curve`,
/// then the max-inscribed-square DP) is deterministic, so the tolerance
/// only absorbs cross-platform libm drift.
#[test]
fn sram6t_snm_matches_golden() {
    const GOLDEN_SNM_V: f64 = 0.29223744292237447;
    let elab = elaborate(include_str!("../decks/zoo/sram6t.sp"));
    let q = elab.node("q").expect("q node");
    let qb = elab.node("qb").expect("qb node");
    let margins = sram_butterfly_snm(&elab.circuit, q, qb, VDD, 41).expect("butterfly snm");
    let snm = margins.snm();
    assert!(
        (snm - GOLDEN_SNM_V).abs() < 1e-9,
        "snm {snm:.16} drifted from golden {GOLDEN_SNM_V:.16}"
    );
    // Sanity: a healthy hold cell keeps a sizeable fraction of VDD/2.
    assert!(
        snm > 0.2 * VDD && snm < 0.5 * VDD,
        "snm {snm:.4} out of range"
    );
}

/// V_OL degrades monotonically with n-stack depth: the 8-input NAND
/// sits above the 4-input, which sits above the 2-input — and all stay
/// well below the logic threshold.
#[test]
fn nand_tree_output_low_ordering() {
    let vol: Vec<f64> = [
        include_str!("../decks/zoo/nand2.sp"),
        include_str!("../decks/zoo/nand4.sp"),
        include_str!("../decks/zoo/nand8.sp"),
    ]
    .iter()
    .map(|text| {
        let elab = elaborate(text);
        let x = dc_operating_point(
            &elab.circuit,
            None,
            DcOptions::default(),
            &ExecLimits::none(),
        )
        .expect("nand dc");
        elab.circuit.voltage(&x, elab.node("out").expect("out"))
    })
    .collect();
    assert!(
        vol[0] < vol[1] && vol[1] < vol[2],
        "V_OL must grow with stack depth: {vol:?}"
    );
    assert!(vol[2] < 0.05 * VDD, "nand8 V_OL too high: {:.4}", vol[2]);
}

/// Clock-chain propagation delay grows monotonically with the fanout
/// taper factor; the transient runs straight off each deck's `.tran`
/// card.
#[test]
fn clock_chain_delay_monotone_in_fanout() {
    let ctx = ExecCtx::from_env();
    let mut delays = Vec::new();
    for text in [
        include_str!("../decks/zoo/clock_f2.sp"),
        include_str!("../decks/zoo/clock_f3.sp"),
        include_str!("../decks/zoo/clock_f4.sp"),
    ] {
        let elab = elaborate(text);
        let (dt, t_stop) = elab
            .analyses
            .iter()
            .find_map(|a| match a {
                AnalysisCard::Tran { dt, t_stop } => Some((*dt, *t_stop)),
                _ => None,
            })
            .expect("deck has a .tran card");
        let (result, _) = transient(&ctx, &elab.circuit, &TransientOptions::new(t_stop, dt))
            .expect("clock transient");
        let vin = result.voltage(&elab.circuit, elab.node("in").expect("in"));
        let vout = result.voltage(&elab.circuit, elab.node("out").expect("out"));
        let delay = propagation_delay(result.times(), &vin, &vout, VDD / 2.0, true, true)
            .expect("chain delay");
        assert!(delay > 0.0 && delay < 1e-9, "implausible delay {delay:.3e}");
        delays.push(delay);
    }
    assert!(
        delays[0] < delays[1] && delays[1] < delays[2],
        "delay must grow with fanout taper: {delays:?}"
    );
}

/// A zoo deck runs through the characterization service's job API and
/// returns a well-formed rawfile with solid SRAM hold levels.
#[test]
fn sram_deck_through_service_job_api() {
    let mut service = CharacterizationService::new(ExecCtx::serial(), Fidelity::Fast);
    let response = service
        .submit(JobRequest::deck_op(include_str!("../decks/zoo/sram6t.sp")))
        .expect("deck job");
    let raw = response.deck_raw().expect("deck rawfile payload");
    let vars = raw
        .get("variables")
        .and_then(|v| v.as_array())
        .expect("variables");
    let names: Vec<&str> = vars
        .iter()
        .filter_map(|v| v.get("name").and_then(|n| n.as_str()))
        .collect();
    let iq = names
        .iter()
        .position(|n| *n == "v(q)")
        .expect("v(q) variable");
    let iqb = names
        .iter()
        .position(|n| *n == "v(qb)")
        .expect("v(qb) variable");
    let points = raw
        .get("points")
        .and_then(|p| p.as_array())
        .expect("points");
    let point = points[0].as_array().expect("point row");
    let vq = point[iq].as_f64().expect("v(q) value");
    let vqb = point[iqb].as_f64().expect("v(qb) value");
    // An unbiased cold-start DC on the symmetric cross-coupled pair finds
    // the metastable point: both storage nodes in-range and (by symmetry)
    // equal. The bistable states are exercised by the forced butterfly
    // measurement in `sram6t_snm_matches_golden`.
    for (name, v) in [("v(q)", vq), ("v(qb)", vqb)] {
        assert!(
            v.is_finite() && (-0.01..=VDD + 0.01).contains(&v),
            "{name} out of range: {v:?}"
        );
    }
    assert!(
        (vq - vqb).abs() < 1e-6,
        "symmetric cell must solve symmetrically: {vq:?} vs {vqb:?}"
    );
    assert_eq!(
        raw.get("format").and_then(|f| f.as_str()),
        Some("gnr-rawfile/v1"),
        "rawfile format tag"
    );
}
