//! Integration of the variability machinery: the signs and orderings of
//! the paper's Tables 2-4 claims, measured end-to-end at reduced fidelity.

use gnrlab::explore::devices::{ArrayScenario, DeviceLibrary, DeviceVariant, Fidelity};
use gnrlab::explore::monte_carlo::ring_oscillator_monte_carlo;
use gnrlab::explore::variability::{inverter_figures, variability_table, Metric};
use gnrlab::num::par::ExecCtx;
use std::sync::{Mutex, OnceLock};

/// Shared library so the expensive device tables build once.
fn lib() -> &'static Mutex<DeviceLibrary> {
    static LIB: OnceLock<Mutex<DeviceLibrary>> = OnceLock::new();
    LIB.get_or_init(|| Mutex::new(DeviceLibrary::new(Fidelity::Fast)))
}

#[test]
fn width_table_signs_match_paper() {
    let mut lib = lib().lock().unwrap();
    let axis: Vec<(String, usize, f64)> = [9usize, 18]
        .into_iter()
        .map(|n| (format!("N={n}"), n, 0.0))
        .collect();
    let table = variability_table(&ExecCtx::serial(), &mut lib, &axis, &axis, 0.4).unwrap();
    // N=9/N=9 cell: slower (paper: +6..77% delay).
    let (one, all) = table.delta_pct(0, 0, Metric::Delay);
    assert!(
        one > 0.0 && all > one,
        "N9 delay deltas one {one:.0}% all {all:.0}%"
    );
    // N=18/N=18 cell: faster but dramatically leakier (paper: -12..-30%
    // delay, +313..643% static in its worst case).
    let (one18, all18) = table.delta_pct(1, 1, Metric::Delay);
    assert!(all18 < 0.0, "N18 all-four delay {all18:.0}%");
    let _ = one18;
    let (_, static18) = table.delta_pct(1, 1, Metric::StaticPower);
    assert!(static18 > 300.0, "N18 static {static18:.0}%");
    // Width mismatch degrades SNM (paper: up to -80%).
    let (_, snm_mismatch) = table.delta_pct(0, 1, Metric::Snm);
    assert!(snm_mismatch < -20.0, "mismatch SNM {snm_mismatch:.0}%");
    // One-of-four effects are bounded by all-four effects for leakage.
    let (one_s, all_s) = table.delta_pct(1, 1, Metric::StaticPower);
    assert!(one_s < all_s, "one {one_s:.0}% < all {all_s:.0}%");
}

#[test]
fn impurity_asymmetry_matches_paper() {
    let mut lib = lib().lock().unwrap();
    let shift = lib.min_leakage_shift(0.4).unwrap();
    let ctx = ExecCtx::serial();
    let nominal = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::nominal(),
        DeviceVariant::nominal(),
        0.4,
        shift,
        None,
    )
    .unwrap();
    // Adverse impurities (-2q on n, +2q on p) slow the inverter
    // (paper Table 3: up to +92% delay).
    let adverse = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::charge(-2.0, ArrayScenario::AllFour),
        DeviceVariant::charge(2.0, ArrayScenario::AllFour),
        0.4,
        shift,
        None,
    )
    .unwrap();
    assert!(
        adverse.delay_s > 1.2 * nominal.delay_s,
        "adverse delay {:.2e} vs nominal {:.2e}",
        adverse.delay_s,
        nominal.delay_s
    );
    // Favourable impurities help far less than adverse ones hurt
    // (paper: max improvement 1-9% vs degradation up to 92%).
    let favourable = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::charge(2.0, ArrayScenario::AllFour),
        DeviceVariant::charge(-2.0, ArrayScenario::AllFour),
        0.4,
        shift,
        None,
    )
    .unwrap();
    let gain = (nominal.delay_s / favourable.delay_s).max(1.0) - 1.0;
    let loss = adverse.delay_s / nominal.delay_s - 1.0;
    assert!(
        loss > gain,
        "asymmetry: loss {:.0}% vs gain {:.0}%",
        loss * 100.0,
        gain * 100.0
    );
}

#[test]
fn single_gnr_effects_are_weaker_than_all_gnr() {
    let mut lib = lib().lock().unwrap();
    let shift = lib.min_leakage_shift(0.4).unwrap();
    let ctx = ExecCtx::serial();
    let nominal = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::nominal(),
        DeviceVariant::nominal(),
        0.4,
        shift,
        None,
    )
    .unwrap();
    let one = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::charge(-2.0, ArrayScenario::OneOfFour),
        DeviceVariant::charge(2.0, ArrayScenario::OneOfFour),
        0.4,
        shift,
        None,
    )
    .unwrap();
    let all = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::charge(-2.0, ArrayScenario::AllFour),
        DeviceVariant::charge(2.0, ArrayScenario::AllFour),
        0.4,
        shift,
        None,
    )
    .unwrap();
    let d_one = one.delay_s / nominal.delay_s;
    let d_all = all.delay_s / nominal.delay_s;
    assert!(
        d_one < d_all,
        "one-of-four ({d_one:.2}x) must bound all-four ({d_all:.2}x)"
    );
}

#[test]
fn monte_carlo_reproduces_fig6_directions() {
    let mut lib = lib().lock().unwrap();
    let mc = ring_oscillator_monte_carlo(&ExecCtx::serial(), &mut lib, 0.4, 15, 400, 7).unwrap();
    // Paper Fig. 6: mean frequency drops, mean static power rises —
    // variations degrade more than they improve.
    let f = mc.frequency_summary().unwrap();
    let s = mc.static_summary().unwrap();
    assert!(
        f.mean < mc.nominal_frequency_hz,
        "mean f {:.3e} vs nominal {:.3e}",
        f.mean,
        mc.nominal_frequency_hz
    );
    assert!(
        s.mean > mc.nominal_static_w,
        "mean static {:.3e} vs nominal {:.3e}",
        s.mean,
        mc.nominal_static_w
    );
    // Distributions have real spread.
    assert!(f.std_dev > 0.0 && s.std_dev > 0.0);
}
