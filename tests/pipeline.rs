//! End-to-end integration: atomistic device model → lookup tables →
//! circuit simulation → paper-level metrics, all at reduced fidelity.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::builders::{ExtrinsicParasitics, InverterCell, RingOscillator};
use gnrlab::spice::measure::{
    butterfly_snm, estimate_oscillator_from_inverter, fo4_metrics_for_cell, inverter_vtc,
    ring_oscillator_metrics,
};
use std::sync::OnceLock;

fn test_grid() -> TableGrid {
    TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    }
}

fn nominal_cell() -> &'static (InverterCell, f64) {
    static CELL: OnceLock<(InverterCell, f64)> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid index");
        let model = SbfetModel::new(&cfg).expect("model builds");
        let vmin = model.minimum_leakage_vg(0.4).expect("leakage minimum");
        let n =
            DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, test_grid(), 4)
                .expect("table builds")
                .with_vg_shift(-vmin);
        let p = n.mirrored();
        let cell =
            InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("parasitics fold");
        (cell, 0.4)
    })
}

#[test]
fn inverter_logic_levels_and_delay() {
    let (cell, vdd) = nominal_cell();
    let vtc = inverter_vtc(cell, *vdd, 33).unwrap();
    // Full logic swing at the rails.
    assert!(vtc[0].1 > 0.95 * vdd, "V_OH = {}", vtc[0].1);
    assert!(
        vtc.last().unwrap().1 < 0.05 * vdd,
        "V_OL = {}",
        vtc.last().unwrap().1
    );
    // Monotone non-increasing transfer curve.
    for w in vtc.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-6);
    }
    let m = fo4_metrics_for_cell(cell, *vdd).unwrap();
    // Picosecond-class FO4 delay (paper: 7.54 ps nominal).
    assert!(
        m.delay_s > 0.5e-12 && m.delay_s < 60e-12,
        "delay = {:.2e} s",
        m.delay_s
    );
    // Sub-microwatt static power (paper: 0.095 uW).
    assert!(m.static_power_w > 1e-9 && m.static_power_w < 1e-6);
    // SNM is a meaningful fraction of VDD.
    let snm = butterfly_snm(&vtc, &vtc, *vdd).snm();
    assert!(snm > 0.02 && snm < 0.5 * vdd, "SNM = {snm}");
}

#[test]
fn ring_oscillator_full_transient_matches_estimate() {
    let (cell, vdd) = nominal_cell();
    let inv = fo4_metrics_for_cell(cell, *vdd).unwrap();
    let est = estimate_oscillator_from_inverter(&inv, 15);
    let ro = RingOscillator::uniform(cell, 15, *vdd).unwrap();
    let full = ring_oscillator_metrics(&ro, inv.delay_s, inv.static_power_w).unwrap();
    // GHz-class oscillation (paper: ~3 GHz at the B operating point).
    assert!(
        full.frequency_hz > 0.5e9 && full.frequency_hz < 50e9,
        "f = {:.3e}",
        full.frequency_hz
    );
    // The FO4-based estimate tracks the full transient within 2x — the
    // accuracy contract the design-space exploration relies on.
    let ratio = est.frequency_hz / full.frequency_hz;
    assert!(ratio > 0.5 && ratio < 2.0, "estimate/full = {ratio:.2}");
    // Power sanity: dynamic power positive, total above static floor.
    assert!(full.dynamic_power_w > 0.0);
    assert!(full.power_w >= full.static_power_w * 0.5);
}

#[test]
fn vt_shift_trades_leakage_for_speed() {
    let (cell, vdd) = nominal_cell();
    // Re-derive raw tables via the public API to rebuild shifted cells.
    let cfg = DeviceConfig::test_small(12).unwrap();
    let model = SbfetModel::new(&cfg).unwrap();
    let vmin = model.minimum_leakage_vg(0.4).unwrap();
    let raw = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, test_grid(), 4)
        .unwrap();
    let mk = |extra: f64| {
        let n = raw.with_vg_shift(-vmin + extra);
        let p = n.mirrored();
        InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).unwrap()
    };
    let low_vt = mk(-0.06);
    let high_vt = mk(0.06);
    let m_low = fo4_metrics_for_cell(&low_vt, *vdd).unwrap();
    let m_high = fo4_metrics_for_cell(&high_vt, *vdd).unwrap();
    let m_nom = fo4_metrics_for_cell(cell, *vdd).unwrap();
    // Lower threshold: faster but leakier; higher threshold: the reverse.
    assert!(m_low.delay_s < m_nom.delay_s, "low-VT faster");
    assert!(
        m_low.static_power_w > m_nom.static_power_w,
        "low-VT leakier"
    );
    assert!(m_high.delay_s > m_nom.delay_s, "high-VT slower");
}

#[test]
fn supply_scaling_behaves() {
    let (cell, _) = nominal_cell();
    let m3 = fo4_metrics_for_cell(cell, 0.3).unwrap();
    let m5 = fo4_metrics_for_cell(cell, 0.5).unwrap();
    assert!(m5.delay_s < m3.delay_s, "higher VDD is faster");
    // Higher supply leaks more (the ambipolar minimum-leakage current rises
    // exponentially with V_D, paper Fig. 2a).
    assert!(
        m5.static_power_w > 1.5 * m3.static_power_w,
        "higher VDD leaks more: {:.3e} vs {:.3e}",
        m5.static_power_w,
        m3.static_power_w
    );
}

#[test]
fn contact_resistance_slows_the_gate() {
    // Paper Fig. 3(a): R_S = R_D ranges 1-100 kOhm (nominal 10 kOhm).
    // Heavier contacts must slow the FO4 inverter monotonically.
    let cfg = DeviceConfig::test_small(12).unwrap();
    let model = SbfetModel::new(&cfg).unwrap();
    let vmin = model.minimum_leakage_vg(0.4).unwrap();
    let raw = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, test_grid(), 4)
        .unwrap();
    let delay_with = |r: f64| {
        let n = raw.with_vg_shift(-vmin);
        let p = n.mirrored();
        let par = gnrlab::spice::builders::ExtrinsicParasitics {
            r_s: r,
            r_d: r,
            ..gnrlab::spice::builders::ExtrinsicParasitics::nominal()
        };
        let cell = InverterCell::new(&n, &p, &par).unwrap();
        fo4_metrics_for_cell(&cell, 0.4).unwrap().delay_s
    };
    let d1k = delay_with(1e3);
    let d10k = delay_with(10e3);
    let d100k = delay_with(100e3);
    assert!(
        d1k < d10k && d10k < d100k,
        "delay vs contacts: {d1k:.2e} < {d10k:.2e} < {d100k:.2e}"
    );
    // 100 kOhm contacts degrade delay substantially vs 1 kOhm.
    assert!(d100k > 1.3 * d1k, "{d100k:.2e} vs {d1k:.2e}");
}
