//! Parser robustness suite: seeded-random emit/reparse round-trips, a
//! malformed-deck corpus with typed error and line assertions, and the
//! SPICE scale-suffix goldens. The parser must never panic on bad input —
//! every failure is a `ParseError` with a meaningful position.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceTable, Polarity};
use gnrlab::num::rng::Rng;
use gnrlab::spice::netlist::emit_deck;
use gnrlab::spice::{parse_deck, Circuit, Element, NodeId, ParseErrorKind, Waveform};
use std::sync::Arc;

/// Seeded-random circuits survive an emit → parse → elaborate round trip
/// with a Debug-identical element list and node table.
#[test]
fn random_circuits_roundtrip_bitwise() {
    let grid = TableGrid {
        vgs: (-0.3, 0.9),
        vds: (0.0, 0.9),
        points: 5,
    };
    let table = Arc::new(
        DeviceTable::from_samples(
            grid,
            Polarity::NType,
            |vg, vd| 1e-5 * (vg - 0.2).max(0.0) * vd.tanh(),
            |vg, _| 1e-16 * vg,
        )
        .expect("table"),
    );
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xDECC + seed);
        let mut circuit = Circuit::new();
        let n_nodes = 3 + rng.below(5);
        let nodes: Vec<NodeId> = (0..n_nodes)
            .map(|i| circuit.node(&format!("n{i}")))
            .collect();
        let pick = |rng: &mut Rng| {
            if rng.below(5) == 0 {
                NodeId::GROUND
            } else {
                nodes[rng.below(n_nodes)]
            }
        };
        for _ in 0..12 {
            let e = match rng.below(5) {
                0 => Element::Resistor {
                    a: pick(&mut rng),
                    b: pick(&mut rng),
                    ohms: rng.uniform_in(1.0, 1e6),
                },
                1 => Element::Capacitor {
                    a: pick(&mut rng),
                    b: pick(&mut rng),
                    farads: rng.uniform_in(1e-18, 1e-12),
                },
                2 => {
                    let wave = if rng.below(2) == 0 {
                        Waveform::Dc(rng.uniform_in(-1.0, 1.0))
                    } else {
                        Waveform::Pulse {
                            low: rng.uniform_in(-0.2, 0.2),
                            high: rng.uniform_in(0.4, 1.0),
                            delay: rng.uniform_in(0.0, 1e-9),
                            rise: rng.uniform_in(1e-12, 1e-10),
                            fall: rng.uniform_in(1e-12, 1e-10),
                            width: rng.uniform_in(1e-10, 1e-9),
                            period: rng.uniform_in(2e-9, 4e-9),
                        }
                    };
                    Element::VSource {
                        p: pick(&mut rng),
                        n: pick(&mut rng),
                        wave,
                    }
                }
                3 => Element::ISource {
                    p: pick(&mut rng),
                    n: pick(&mut rng),
                    wave: Waveform::Dc(rng.uniform_in(-1e-5, 1e-5)),
                },
                _ => Element::Fet {
                    d: pick(&mut rng),
                    g: pick(&mut rng),
                    s: pick(&mut rng),
                    table: Arc::clone(&table),
                },
            };
            circuit.add(e);
        }
        let emitted =
            emit_deck(&circuit, &format!("random deck seed {seed}")).expect("emit random circuit");
        let deck = parse_deck(&emitted.text).expect("reparse emitted deck");
        let elab = deck
            .elaborate(&emitted.bindings())
            .expect("elaborate emitted deck");
        assert_eq!(
            circuit.node_count(),
            elab.circuit.node_count(),
            "seed {seed}: node count"
        );
        assert_eq!(
            format!("{:?}", circuit.elements()),
            format!("{:?}", elab.circuit.elements()),
            "seed {seed}: element list drifted through the round trip"
        );
    }
}

/// Malformed decks produce the right typed error at the right line —
/// and never panic.
#[test]
fn malformed_corpus_yields_typed_errors() {
    let cases: &[(&str, ParseErrorKind, usize)] = &[
        // Unclosed subcircuit definition.
        (
            "* t\n.subckt inv a b\nr1 a b 1k\n.end\n",
            ParseErrorKind::UnclosedSubckt,
            2,
        ),
        // Duplicate alias target.
        (
            "* t\n.alias vss 0\n.alias vss gnd\nr1 vss 0 1k\n.end\n",
            ParseErrorKind::DuplicateAlias,
            3,
        ),
        // Unknown model on an instance (elaboration-time, pinned to the
        // instance line).
        (
            "* t\nv1 d 0 dc 0.5\nm1 d d 0 mystery\n.end\n",
            ParseErrorKind::UnknownModel,
            3,
        ),
        // Bad scale suffix.
        ("* t\nr1 a 0 3k3\n.end\n", ParseErrorKind::BadNumber, 2),
        // Trailing garbage after a complete element.
        ("* t\nr1 a 0 1k extra\n.end\n", ParseErrorKind::Syntax, 2),
        // Unknown element letter.
        (
            "* t\nq1 a b c 1k\n.end\n",
            ParseErrorKind::UnknownElement,
            2,
        ),
        // Unknown directive.
        (
            "* t\n.noise v(out) 1k\n.end\n",
            ParseErrorKind::UnknownDirective,
            2,
        ),
        // Duplicate subcircuit definition.
        (
            "* t\n.subckt i a\nr1 a 0 1\n.ends\n.subckt i a\nr1 a 0 1\n.ends\n.end\n",
            ParseErrorKind::DuplicateSubckt,
            5,
        ),
        // Instance of an undefined subcircuit.
        (
            "* t\nx1 a b nosuch\n.end\n",
            ParseErrorKind::UnknownSubckt,
            2,
        ),
        // Self-recursive subcircuit: the error pins the instance card
        // inside the definition where expansion bottomed out.
        (
            "* t\n.subckt loop a\nx1 a loop\n.ends\nx0 n1 loop\n.end\n",
            ParseErrorKind::RecursiveSubckt,
            3,
        ),
    ];
    for (text, kind, line) in cases {
        let outcome = std::panic::catch_unwind(|| match parse_deck(text) {
            Ok(deck) => deck
                .elaborate(&gnrlab::spice::ModelBindings::new())
                .map(|_| ()),
            Err(e) => Err(e),
        });
        let result = outcome.unwrap_or_else(|_| panic!("parser panicked on: {text:?}"));
        let err = result.expect_err("malformed deck must not elaborate");
        assert_eq!(err.kind, *kind, "kind for deck {text:?} (got {err})");
        assert_eq!(err.line, *line, "line for deck {text:?} (got {err})");
    }
}

/// Scale suffixes and unit words resolve to the documented multipliers.
#[test]
fn scale_suffix_goldens() {
    let deck = "* suffixes\n\
                r1 a 0 10u\n\
                r2 a 0 47k\n\
                r3 a 0 2meg\n\
                c1 a 0 3n\n\
                c2 a 0 120p\n\
                c3 a 0 2.5fF\n\
                v1 a 0 dc 800mV\n\
                i1 a 0 dc 5uA\n\
                .end\n";
    let parsed = parse_deck(deck).expect("suffix deck");
    let elab = parsed
        .elaborate(&gnrlab::spice::ModelBindings::new())
        .expect("suffix elaborate");
    let close = |got: f64, want: f64, what: &str| {
        assert!(
            (got / want - 1.0).abs() < 1e-15,
            "{what}: got {got:?}, want {want:?}"
        );
    };
    let mut r = Vec::new();
    let mut c = Vec::new();
    let mut vi = Vec::new();
    for e in elab.circuit.elements() {
        match e {
            Element::Resistor { ohms, .. } => r.push(*ohms),
            Element::Capacitor { farads, .. } => c.push(*farads),
            Element::VSource {
                wave: Waveform::Dc(v),
                ..
            } => vi.push(*v),
            Element::ISource {
                wave: Waveform::Dc(v),
                ..
            } => vi.push(*v),
            _ => {}
        }
    }
    close(r[0], 1e-5, "10u");
    close(r[1], 4.7e4, "47k");
    close(r[2], 2e6, "2meg");
    close(c[0], 3e-9, "3n");
    close(c[1], 1.2e-10, "120p");
    close(c[2], 2.5e-15, "2.5fF");
    close(vi[0], 0.8, "800mV");
    close(vi[1], 5e-6, "5uA");
}
