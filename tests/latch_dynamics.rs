//! Dynamic latch behaviour: the cross-coupled pair must actually hold
//! state (bistability) when simulated in time — the property the paper's
//! static butterfly analysis is a proxy for.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::builders::{ExtrinsicParasitics, InverterCell};
use gnrlab::spice::circuit::{Circuit, Element, NodeId, Waveform};
use gnrlab::spice::transient::{transient, TransientOptions};
use std::sync::OnceLock;

fn cell() -> &'static InverterCell {
    static CELL: OnceLock<InverterCell> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid");
        let model = SbfetModel::new(&cfg).expect("builds");
        let vmin = model.minimum_leakage_vg(0.4).expect("minimum");
        let grid = TableGrid {
            vgs: (-0.35, 1.0),
            vds: (0.0, 0.85),
            points: 21,
        };
        let n = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, grid, 4)
            .expect("table")
            .with_vg_shift(-vmin);
        let p = n.mirrored();
        InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("cell")
    })
}

/// Builds the cross-coupled latch circuit; returns `(circuit, left, right)`.
fn latch_circuit(vdd: f64) -> (Circuit, NodeId, NodeId) {
    let cell = cell();
    let mut c = Circuit::new();
    let left = c.node("l");
    let right = c.node("r");
    let vdd_node = c.node("vdd");
    c.add(Element::VSource {
        p: vdd_node,
        n: NodeId::GROUND,
        wave: Waveform::Dc(vdd),
    });
    cell.instantiate(&mut c, left, right, vdd_node);
    cell.instantiate(&mut c, right, left, vdd_node);
    // Small explicit node capacitances so the state nodes have dynamics
    // even where the device capacitances are tiny.
    for node in [left, right] {
        c.add(Element::Capacitor {
            a: node,
            b: NodeId::GROUND,
            farads: 5e-18,
        });
    }
    (c, left, right)
}

#[test]
fn latch_holds_both_states() {
    let vdd = 0.4;
    let (c, left, right) = latch_circuit(vdd);
    for (l0, r0) in [(vdd, 0.0), (0.0, vdd)] {
        let mut opts = TransientOptions::new(200e-12, 0.2e-12);
        opts.skip_dc = true;
        opts.initial_voltages = vec![(left, l0), (right, r0)];
        let (result, _) = transient(&ExecCtx::strict(), &c, &opts).expect("simulates");
        let vl = *result.voltage(&c, left).last().unwrap();
        let vr = *result.voltage(&c, right).last().unwrap();
        if l0 > r0 {
            assert!(
                vl > 0.8 * vdd && vr < 0.2 * vdd,
                "state lost: l={vl:.3} r={vr:.3}"
            );
        } else {
            assert!(
                vr > 0.8 * vdd && vl < 0.2 * vdd,
                "state lost: l={vl:.3} r={vr:.3}"
            );
        }
    }
}

#[test]
fn latch_regenerates_from_perturbed_state() {
    // Start near (but not at) the metastable point, biased towards one
    // side: the positive feedback must regenerate full logic levels.
    let vdd = 0.4;
    let (c, left, right) = latch_circuit(vdd);
    let mut opts = TransientOptions::new(400e-12, 0.2e-12);
    opts.skip_dc = true;
    opts.initial_voltages = vec![(left, 0.55 * vdd), (right, 0.45 * vdd)];
    let (result, _) = transient(&ExecCtx::strict(), &c, &opts).expect("simulates");
    let vl = *result.voltage(&c, left).last().unwrap();
    let vr = *result.voltage(&c, right).last().unwrap();
    assert!(
        vl > 0.8 * vdd && vr < 0.2 * vdd,
        "did not regenerate: l={vl:.3} r={vr:.3}"
    );
    // The separation must be monotone-ish: the final split exceeds the
    // initial 10% split by a large factor.
    assert!((vl - vr) > 3.0 * (0.1 * vdd));
}
