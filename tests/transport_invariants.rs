//! Property-style transport invariants on seeded random devices, checked
//! against EVERY solver path — the legacy fresh-Sancho–Rubio route, the
//! cached/adaptive acceleration layer (DESIGN.md §11), and the reduced
//! mode-space transform (DESIGN.md §15) — so no fast path can drift from
//! the physics the slow path pins:
//!
//! * `0 ≤ T(E) ≤` number of propagating lead modes at `E`;
//! * zero bias window (`μ₁ = μ₂`) carries exactly zero current;
//! * swapping the contact Fermi levels reverses the current;
//! * mirroring the device along transport leaves `T(E)` unchanged.

use gnrlab::lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian};
use gnrlab::negf::transport::{EnergyGrid, RefineOptions, SpectralSolver, TransportOptions};
use gnrlab::negf::{
    integrate_transport, integrate_transport_with, Lead, ModeBasis, ModeSpaceOptions,
    ModeSpaceSolver, RgfSolver, SurfaceGfCache,
};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::{Rng, Telemetry, TelemetryShard};
use std::sync::Arc;

const SEED: u64 = 20080608;
const N: usize = 7;
const CELLS: usize = 5;

/// A random disordered channel potential, constant within each layer so the
/// device can be exactly mirrored by reversing the array.
fn random_layer_potential(rng: &mut Rng) -> Vec<f64> {
    let m = AGnr::new(N).unwrap().atoms_per_cell();
    let mut pot = Vec::with_capacity(CELLS * m);
    for _ in 0..CELLS {
        let u = rng.uniform_in(-0.15, 0.35);
        pot.extend(std::iter::repeat_n(u, m));
    }
    pot
}

fn solver_for(pot: &[f64]) -> (DeviceHamiltonian, AGnr) {
    let gnr = AGnr::new(N).unwrap();
    (DeviceHamiltonian::new(gnr, CELLS, pot).unwrap(), gnr)
}

/// The mode-space counterpart of a real-space solver, sharing the same
/// device. The window is the transport grid widened enough to absorb the
/// random potential shifts, so every propagating mode stays in the basis.
fn mode_solver_for(ham: &DeviceHamiltonian) -> ModeSpaceSolver {
    let (h00, h01) = unit_cell_hamiltonian(ham.gnr());
    let opts = ModeSpaceOptions::default().with_window_margin_ev(0.7);
    let basis = ModeBasis::build(&h00, &h01, -0.8, 0.8, &opts).unwrap();
    ModeSpaceSolver::new(ham, Lead::gnr_contact(), Lead::gnr_contact(), &basis, &opts).unwrap()
}

/// Number of lead modes propagating at energy `e`: bands whose Bloch
/// dispersion spans `e`.
fn open_modes(gnr: AGnr, e: f64) -> usize {
    let bs = gnr.band_structure(128).unwrap();
    bs.bands()
        .iter()
        .filter(|band| {
            let lo = band.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = band.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            lo <= e && e <= hi
        })
        .count()
}

#[test]
fn transmission_bounded_by_open_modes_on_both_paths() {
    let mut rng = Rng::seed_from_u64(SEED);
    let cache = SurfaceGfCache::new();
    let sink = Telemetry::isolated();
    let mut shard = TelemetryShard::for_sink(&sink);
    for _ in 0..4 {
        let pot = random_layer_potential(&mut rng);
        let (ham, gnr) = solver_for(&pot);
        let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
        for _ in 0..6 {
            let e = rng.uniform_in(-1.0, 1.0);
            let bound = open_modes(gnr, e) as f64;
            let t_legacy = solver.transmission(e).expect("legacy solves");
            let t_cached = solver
                .transmission_cached(e, &cache, &mut shard)
                .expect("cached solves");
            for (label, t) in [("legacy", t_legacy), ("cached", t_cached)] {
                assert!(
                    (-1e-9..=bound + 1e-6).contains(&t),
                    "{label} T({e:.4}) = {t:.6} outside [0, {bound}]"
                );
            }
            // The cached path evaluates at the snapped energy (one key
            // quantum away at most); T may move by the local slope only.
            assert!(
                (t_legacy - t_cached).abs() < 5e-3,
                "paths disagree at E = {e:.4}: {t_legacy:.6} vs {t_cached:.6}"
            );
        }
    }
}

#[test]
fn zero_bias_window_carries_no_current() {
    let mut rng = Rng::seed_from_u64(SEED + 1);
    let pot = random_layer_potential(&mut rng);
    let (ham, _) = solver_for(&pot);
    let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let ctx = ExecCtx::serial();
    let grid = EnergyGrid::new(-0.8, 0.8, 41).unwrap();
    let mu = 0.12;
    let legacy = integrate_transport(&ctx, &solver, &grid, mu, mu, 300.0, &pot).unwrap();
    let opts = TransportOptions::legacy()
        .with_cache(Arc::new(SurfaceGfCache::new()))
        .with_refine(RefineOptions::default());
    let accel = integrate_transport_with(&ctx, &solver, &grid, &opts, mu, mu, 300.0, &pot).unwrap();
    // The integrand carries (f1 - f2) per energy point: identically zero.
    assert_eq!(legacy.current_a, 0.0, "legacy leaks at zero bias");
    assert_eq!(accel.current_a, 0.0, "accelerated path leaks at zero bias");
    // Charge does not vanish: the window still fills states.
    assert!(legacy.charge.total().abs() > 0.0);
}

#[test]
fn bias_reversal_flips_the_current() {
    let mut rng = Rng::seed_from_u64(SEED + 2);
    let pot = random_layer_potential(&mut rng);
    let (ham, _) = solver_for(&pot);
    let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let ctx = ExecCtx::serial();
    let grid = EnergyGrid::new(-0.8, 0.8, 41).unwrap();
    let (mu1, mu2) = (0.15, -0.15);
    for opts in [
        TransportOptions::legacy(),
        TransportOptions::legacy()
            .with_cache(Arc::new(SurfaceGfCache::new()))
            .with_refine(RefineOptions::default()),
    ] {
        let fwd =
            integrate_transport_with(&ctx, &solver, &grid, &opts, mu1, mu2, 300.0, &pot).unwrap();
        let rev =
            integrate_transport_with(&ctx, &solver, &grid, &opts, mu2, mu1, 300.0, &pot).unwrap();
        let (i1, i2) = (fwd.current_a, rev.current_a);
        assert!(
            (i1 + i2).abs() <= 1e-9 * i1.abs().max(i2.abs()),
            "bias reversal not antisymmetric: {i1:.6e} vs {i2:.6e}"
        );
        assert!(i1 != 0.0, "finite bias should drive current");
    }
}

#[test]
fn transmission_invariant_under_device_mirror() {
    let mut rng = Rng::seed_from_u64(SEED + 3);
    let cache = SurfaceGfCache::new();
    let sink = Telemetry::isolated();
    let mut shard = TelemetryShard::for_sink(&sink);
    for _ in 0..3 {
        let pot = random_layer_potential(&mut rng);
        let mirrored: Vec<f64> = pot.iter().rev().copied().collect();
        let (ham_f, _) = solver_for(&pot);
        let (ham_m, _) = solver_for(&mirrored);
        let fwd = RgfSolver::new(&ham_f, Lead::gnr_contact(), Lead::gnr_contact());
        let rev = RgfSolver::new(&ham_m, Lead::gnr_contact(), Lead::gnr_contact());
        for e in [-0.6, -0.25, 0.3, 0.55, 0.8] {
            // Reversing the layer potentials mirrors the device only up to
            // the within-cell atom ordering (the unit cell is not exactly
            // reflection-symmetric), so this is a physics-level check, not
            // a bit pin.
            let tf = fwd.transmission(e).expect("solves");
            let tr = rev.transmission(e).expect("solves");
            assert!(
                (tf - tr).abs() <= 5e-3 * (1.0 + tf.abs()),
                "mirror symmetry broke at E = {e}: {tf:.9} vs {tr:.9}"
            );
            let tfc = fwd
                .transmission_cached(e, &cache, &mut shard)
                .expect("solves");
            let trc = rev
                .transmission_cached(e, &cache, &mut shard)
                .expect("solves");
            assert!(
                (tfc - trc).abs() <= 5e-3 * (1.0 + tfc.abs()),
                "cached mirror symmetry broke at E = {e}: {tfc:.9} vs {trc:.9}"
            );
        }
    }
}

#[test]
fn mode_space_transmission_bounded_and_tracks_real_space() {
    let mut rng = Rng::seed_from_u64(SEED + 4);
    let limits = gnrlab::num::budget::ExecLimits::none();
    for _ in 0..3 {
        let pot = random_layer_potential(&mut rng);
        let (ham, gnr) = solver_for(&pot);
        let real = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
        let mode = mode_solver_for(&ham);
        // Layer-uniform potentials project to zero kept↔dropped coupling,
        // so the monitor must keep these devices on the reduced path.
        assert!(!mode.degraded(), "rigid shifts must not degrade");
        for _ in 0..5 {
            let e = rng.uniform_in(-0.75, 0.75);
            let bound = open_modes(gnr, e) as f64;
            let t_real = real.spectral_slice(e, &limits).expect("real").transmission;
            let t_mode = mode.spectral_slice(e, &limits).expect("mode").transmission;
            assert!(
                (-1e-9..=bound + 1e-6).contains(&t_mode),
                "mode-space T({e:.4}) = {t_mode:.6} outside [0, {bound}]"
            );
            assert!(
                (t_real - t_mode).abs() <= 5e-3 * (1.0 + t_real.abs()),
                "paths disagree at E = {e:.4}: real {t_real:.9} vs mode {t_mode:.9}"
            );
        }
    }
}

#[test]
fn mode_space_path_keeps_the_current_invariants() {
    let mut rng = Rng::seed_from_u64(SEED + 5);
    let pot = random_layer_potential(&mut rng);
    let (ham, _) = solver_for(&pot);
    let solver = mode_solver_for(&ham);
    let ctx = ExecCtx::serial();
    let grid = EnergyGrid::new(-0.8, 0.8, 41).unwrap();
    let opts = TransportOptions::legacy()
        .with_cache(Arc::new(SurfaceGfCache::new()))
        .with_refine(RefineOptions::default());
    // Zero bias window: exactly zero current, finite filled charge.
    let mu = 0.1;
    let zero = integrate_transport_with(&ctx, &solver, &grid, &opts, mu, mu, 300.0, &pot).unwrap();
    assert_eq!(zero.current_a, 0.0, "mode-space path leaks at zero bias");
    assert!(zero.charge.total().abs() > 0.0);
    // Bias reversal: antisymmetric, and finite bias drives current.
    let (mu1, mu2) = (0.15, -0.15);
    let fwd = integrate_transport_with(&ctx, &solver, &grid, &opts, mu1, mu2, 300.0, &pot).unwrap();
    let rev = integrate_transport_with(&ctx, &solver, &grid, &opts, mu2, mu1, 300.0, &pot).unwrap();
    let (i1, i2) = (fwd.current_a, rev.current_a);
    assert!(
        (i1 + i2).abs() <= 1e-9 * i1.abs().max(i2.abs()),
        "mode-space bias reversal not antisymmetric: {i1:.6e} vs {i2:.6e}"
    );
    assert!(i1 != 0.0, "finite bias should drive current");
}
