//! Property-style transport invariants on seeded random devices, checked
//! against BOTH solver paths — the legacy fresh-Sancho–Rubio route and the
//! cached/adaptive acceleration layer (DESIGN.md §11) — so the fast path
//! can never drift from the physics the slow path pins:
//!
//! * `0 ≤ T(E) ≤` number of propagating lead modes at `E`;
//! * zero bias window (`μ₁ = μ₂`) carries exactly zero current;
//! * swapping the contact Fermi levels reverses the current;
//! * mirroring the device along transport leaves `T(E)` unchanged.

use gnrlab::lattice::{AGnr, DeviceHamiltonian};
use gnrlab::negf::transport::{EnergyGrid, RefineOptions, TransportOptions};
use gnrlab::negf::{
    integrate_transport, integrate_transport_with, Lead, RgfSolver, SurfaceGfCache,
};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::{Rng, Telemetry, TelemetryShard};
use std::sync::Arc;

const SEED: u64 = 20080608;
const N: usize = 7;
const CELLS: usize = 5;

/// A random disordered channel potential, constant within each layer so the
/// device can be exactly mirrored by reversing the array.
fn random_layer_potential(rng: &mut Rng) -> Vec<f64> {
    let m = AGnr::new(N).unwrap().atoms_per_cell();
    let mut pot = Vec::with_capacity(CELLS * m);
    for _ in 0..CELLS {
        let u = rng.uniform_in(-0.15, 0.35);
        pot.extend(std::iter::repeat_n(u, m));
    }
    pot
}

fn solver_for(pot: &[f64]) -> (DeviceHamiltonian, AGnr) {
    let gnr = AGnr::new(N).unwrap();
    (DeviceHamiltonian::new(gnr, CELLS, pot).unwrap(), gnr)
}

/// Number of lead modes propagating at energy `e`: bands whose Bloch
/// dispersion spans `e`.
fn open_modes(gnr: AGnr, e: f64) -> usize {
    let bs = gnr.band_structure(128).unwrap();
    bs.bands()
        .iter()
        .filter(|band| {
            let lo = band.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = band.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            lo <= e && e <= hi
        })
        .count()
}

#[test]
fn transmission_bounded_by_open_modes_on_both_paths() {
    let mut rng = Rng::seed_from_u64(SEED);
    let cache = SurfaceGfCache::new();
    let sink = Telemetry::isolated();
    let mut shard = TelemetryShard::for_sink(&sink);
    for _ in 0..4 {
        let pot = random_layer_potential(&mut rng);
        let (ham, gnr) = solver_for(&pot);
        let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
        for _ in 0..6 {
            let e = rng.uniform_in(-1.0, 1.0);
            let bound = open_modes(gnr, e) as f64;
            let t_legacy = solver.transmission(e).expect("legacy solves");
            let t_cached = solver
                .transmission_cached(e, &cache, &mut shard)
                .expect("cached solves");
            for (label, t) in [("legacy", t_legacy), ("cached", t_cached)] {
                assert!(
                    (-1e-9..=bound + 1e-6).contains(&t),
                    "{label} T({e:.4}) = {t:.6} outside [0, {bound}]"
                );
            }
            // The cached path evaluates at the snapped energy (one key
            // quantum away at most); T may move by the local slope only.
            assert!(
                (t_legacy - t_cached).abs() < 5e-3,
                "paths disagree at E = {e:.4}: {t_legacy:.6} vs {t_cached:.6}"
            );
        }
    }
}

#[test]
fn zero_bias_window_carries_no_current() {
    let mut rng = Rng::seed_from_u64(SEED + 1);
    let pot = random_layer_potential(&mut rng);
    let (ham, _) = solver_for(&pot);
    let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let ctx = ExecCtx::serial();
    let grid = EnergyGrid::new(-0.8, 0.8, 41).unwrap();
    let mu = 0.12;
    let legacy = integrate_transport(&ctx, &solver, &grid, mu, mu, 300.0, &pot).unwrap();
    let opts = TransportOptions::legacy()
        .with_cache(Arc::new(SurfaceGfCache::new()))
        .with_refine(RefineOptions::default());
    let accel = integrate_transport_with(&ctx, &solver, &grid, &opts, mu, mu, 300.0, &pot).unwrap();
    // The integrand carries (f1 - f2) per energy point: identically zero.
    assert_eq!(legacy.current_a, 0.0, "legacy leaks at zero bias");
    assert_eq!(accel.current_a, 0.0, "accelerated path leaks at zero bias");
    // Charge does not vanish: the window still fills states.
    assert!(legacy.charge.total().abs() > 0.0);
}

#[test]
fn bias_reversal_flips_the_current() {
    let mut rng = Rng::seed_from_u64(SEED + 2);
    let pot = random_layer_potential(&mut rng);
    let (ham, _) = solver_for(&pot);
    let solver = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let ctx = ExecCtx::serial();
    let grid = EnergyGrid::new(-0.8, 0.8, 41).unwrap();
    let (mu1, mu2) = (0.15, -0.15);
    for opts in [
        TransportOptions::legacy(),
        TransportOptions::legacy()
            .with_cache(Arc::new(SurfaceGfCache::new()))
            .with_refine(RefineOptions::default()),
    ] {
        let fwd =
            integrate_transport_with(&ctx, &solver, &grid, &opts, mu1, mu2, 300.0, &pot).unwrap();
        let rev =
            integrate_transport_with(&ctx, &solver, &grid, &opts, mu2, mu1, 300.0, &pot).unwrap();
        let (i1, i2) = (fwd.current_a, rev.current_a);
        assert!(
            (i1 + i2).abs() <= 1e-9 * i1.abs().max(i2.abs()),
            "bias reversal not antisymmetric: {i1:.6e} vs {i2:.6e}"
        );
        assert!(i1 != 0.0, "finite bias should drive current");
    }
}

#[test]
fn transmission_invariant_under_device_mirror() {
    let mut rng = Rng::seed_from_u64(SEED + 3);
    let cache = SurfaceGfCache::new();
    let sink = Telemetry::isolated();
    let mut shard = TelemetryShard::for_sink(&sink);
    for _ in 0..3 {
        let pot = random_layer_potential(&mut rng);
        let mirrored: Vec<f64> = pot.iter().rev().copied().collect();
        let (ham_f, _) = solver_for(&pot);
        let (ham_m, _) = solver_for(&mirrored);
        let fwd = RgfSolver::new(&ham_f, Lead::gnr_contact(), Lead::gnr_contact());
        let rev = RgfSolver::new(&ham_m, Lead::gnr_contact(), Lead::gnr_contact());
        for e in [-0.6, -0.25, 0.3, 0.55, 0.8] {
            // Reversing the layer potentials mirrors the device only up to
            // the within-cell atom ordering (the unit cell is not exactly
            // reflection-symmetric), so this is a physics-level check, not
            // a bit pin.
            let tf = fwd.transmission(e).expect("solves");
            let tr = rev.transmission(e).expect("solves");
            assert!(
                (tf - tr).abs() <= 5e-3 * (1.0 + tf.abs()),
                "mirror symmetry broke at E = {e}: {tf:.9} vs {tr:.9}"
            );
            let tfc = fwd
                .transmission_cached(e, &cache, &mut shard)
                .expect("solves");
            let trc = rev
                .transmission_cached(e, &cache, &mut shard)
                .expect("solves");
            assert!(
                (tfc - trc).abs() <= 5e-3 * (1.0 + tfc.abs()),
                "cached mirror symmetry broke at E = {e}: {tfc:.9} vs {trc:.9}"
            );
        }
    }
}
