//! Physics-conformance goldens: the band-structure and transport facts the
//! whole reproduction rests on, pinned to recorded values so any numerical
//! drift (eigensolver, edge-correction, effective-mass stencil) fails
//! loudly rather than silently re-tuning the device physics.
//!
//! Sources for the pins:
//! * three-family A-GNR gap behavior with the Son–Cohen–Louie edge-bond
//!   correction (Son, Cohen, Louie, PRL 97, 216803 (2006)): the 3p+1
//!   family has the largest gap, 3p the middle, and 3p+2 — metallic in
//!   plain pz tight binding — opens a small gap through the edge term;
//! * band-edge effective masses, cross-checked against the Dirac-cone
//!   estimate `m* ≈ E₁/v_F²` with `ħ v_F = 3 t a_cc / 2`;
//! * ballistic on-current ordering versus ribbon width (wider ribbon,
//!   smaller gap and barrier, more drive) through the SBFET surrogate.

use gnrlab::device::sbfet::HBAR_VFERMI_EV_NM;
use gnrlab::device::{DeviceConfig, SbfetModel};
use gnrlab::lattice::bands::BandStructure;
use gnrlab::lattice::AGnr;
use gnrlab::num::consts::{HBAR, M_E, Q_E};

/// k-point counts the goldens were recorded at; the pins are only valid at
/// the same sampling.
const K_GAP: usize = 192;
const K_MASS: usize = 384;

fn bands(n: usize, k_points: usize) -> BandStructure {
    AGnr::new(n)
        .expect("valid index")
        .band_structure(k_points)
        .expect("band solve")
}

/// N = 12, 13, 14 covers one ribbon of each family (3p, 3p+1, 3p+2).
/// Golden gaps recorded from this codebase's pz TB with 12% Son–Cohen–Louie
/// edge-bond contraction at `K_GAP` k-points.
#[test]
fn band_gap_three_family_goldens() {
    let pins = [(12usize, 0.607009), (13, 0.858117), (14, 0.123404)];
    let mut gaps = Vec::new();
    for (n, golden) in pins {
        let g = bands(n, K_GAP).gap();
        assert!(
            (g - golden).abs() < 1e-3,
            "N={n}: gap {g:.6} eV drifted from golden {golden:.6} eV"
        );
        gaps.push(g);
    }
    // Family ordering: 3p+1 > 3p > 3p+2 > 0.
    assert!(
        gaps[1] > gaps[0] && gaps[0] > gaps[2],
        "family ordering broke: {gaps:?}"
    );
    // The 3p+2 gap exists only because of the edge correction — plain pz
    // tight binding gives a metal. Pin that it stays open.
    assert!(
        gaps[2] > 0.05,
        "N=14 edge-correction gap collapsed: {:.4} eV",
        gaps[2]
    );
}

#[test]
fn band_edges_are_particle_hole_symmetric() {
    for n in [12usize, 13, 14] {
        let bs = bands(n, K_GAP);
        let (ec, ev) = (bs.conduction_edge(), bs.valence_edge());
        assert!(
            (ec + ev).abs() < 1e-9,
            "N={n}: edges not symmetric (ec {ec:.6}, ev {ev:.6})"
        );
    }
}

/// Band-edge effective masses recorded at `K_MASS` k-points. The family
/// ordering tracks the gaps: heavier mass with larger gap.
#[test]
fn effective_mass_goldens() {
    let pins = [(12usize, 0.060444), (13, 0.111327), (14, 0.014719)];
    for (n, golden) in pins {
        let m = bands(n, K_MASS).conduction_effective_mass();
        assert!(
            (m - golden).abs() < 1e-4,
            "N={n}: m* {m:.6} m0 drifted from golden {golden:.6} m0"
        );
    }
}

/// Hand-check: linearizing graphene's Dirac cone and quantizing transverse
/// momentum gives `m* ≈ E₁ / v_F²` for the first subband. The tight-binding
/// mass must land within ~30% of that estimate (the cone is only
/// approximately isotropic at the subband k).
#[test]
fn effective_mass_matches_dirac_estimate() {
    let bs = bands(12, K_MASS);
    let e1_ev = bs.conduction_edge();
    let v_f = HBAR_VFERMI_EV_NM * 1e-9 * Q_E / HBAR; // m/s
    let dirac_mass = e1_ev * Q_E / (v_f * v_f) / M_E; // units of m0
    let m = bs.conduction_effective_mass();
    let ratio = m / dirac_mass;
    assert!(
        (0.7..1.3).contains(&ratio),
        "m* {m:.4} m0 vs Dirac estimate {dirac_mass:.4} m0 (ratio {ratio:.3})"
    );
}

/// Ballistic on-current grows with ribbon width within the 3p family:
/// smaller gap means lower mid-gap Schottky barriers, so the same overdrive
/// pushes more current. Checked through the SBFET surrogate that feeds
/// every circuit experiment.
#[test]
fn on_current_increases_with_width() {
    let (vg, vd) = (0.6, 0.4);
    let mut currents = Vec::new();
    for n in [9usize, 12, 15] {
        let cfg = DeviceConfig::test_small(n).expect("valid config");
        let model = SbfetModel::new(&cfg).expect("builds");
        currents.push((n, model.drain_current(vg, vd).expect("evaluates")));
    }
    for pair in currents.windows(2) {
        let ((n0, i0), (n1, i1)) = (pair[0], pair[1]);
        assert!(
            i1 > i0,
            "on-current ordering broke: I(N={n0}) = {i0:.3e} A vs I(N={n1}) = {i1:.3e} A"
        );
    }
}
