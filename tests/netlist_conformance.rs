//! Deck-conformance suite: every circuit builder has a golden SPICE deck
//! under `decks/conformance/`, emitted by `gnr_spice::netlist::emit_deck`.
//! The committed text must match the emitter byte-for-byte, and the
//! reparsed circuit must reproduce the builder's DC and transient
//! solutions *bit-identically* — the netlist front end is pinned as a
//! pure re-encoding of the programmatic API, not an approximation of it.
//!
//! Regenerate the goldens intentionally with `GNR_UPDATE_DECKS=1`.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceTable, Polarity};
use gnrlab::num::budget::ExecLimits;
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::builders::{
    ExtrinsicParasitics, Gate2, GateKind, InverterCell, InverterChain, Latch, RingOscillator,
};
use gnrlab::spice::dc::{set_source_value, set_source_wave, transfer_curve};
use gnrlab::spice::measure::{butterfly_snm, latch_noise_margins};
use gnrlab::spice::netlist::emit_deck;
use gnrlab::spice::{
    dc_operating_point, parse_deck, transient, Circuit, DcOptions, TransientOptions, Waveform,
};

const VDD: f64 = 0.8;

/// Deterministic smooth square-law sample (same family as the parser's
/// `surrogate` model cards, fixed constants so the goldens never move).
fn square_law(beta: f64) -> impl Fn(f64, f64) -> f64 {
    move |vg: f64, vd: f64| {
        let (vth, vdsat, lambda, alpha, gleak) = (0.2, 0.08, 0.15, 0.04, 1e-9);
        let x = (vg - vth) / alpha;
        let vov = if x > 30.0 {
            vg - vth
        } else {
            alpha * x.exp().ln_1p()
        };
        beta * vov * vov * (vd / vdsat).tanh() * (1.0 + lambda * vd) + gleak * vd
    }
}

fn surrogate_cell(beta: f64) -> InverterCell {
    let grid = TableGrid {
        vgs: (-0.3, 0.9),
        vds: (0.0, 0.9),
        points: 9,
    };
    let n = DeviceTable::from_samples(grid, Polarity::NType, square_law(beta), |vg, _| 2e-16 * vg)
        .expect("surrogate n table");
    let p = n.mirrored();
    InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("inverter cell")
}

/// Emits `circuit` as a deck, checks it against the committed golden
/// (or rewrites it under `GNR_UPDATE_DECKS=1`), reparses the committed
/// text, and returns the elaborated circuit.
fn golden_roundtrip(name: &str, circuit: &Circuit, title: &str) -> Circuit {
    let emitted = emit_deck(circuit, title).expect("emit deck");
    let path = format!("{}/decks/conformance/{name}.sp", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("GNR_UPDATE_DECKS").is_ok() {
        std::fs::write(&path, &emitted.text).expect("write golden deck");
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden deck {path}; regenerate with GNR_UPDATE_DECKS=1")
    });
    assert_eq!(
        committed, emitted.text,
        "deck {name} drifted from its builder; regenerate with GNR_UPDATE_DECKS=1 if intended"
    );
    let deck = parse_deck(&committed).expect("parse committed deck");
    let elab = deck
        .elaborate(&emitted.bindings())
        .expect("elaborate committed deck");
    elab.circuit
}

fn dc_solution(circuit: &Circuit) -> Vec<f64> {
    dc_operating_point(circuit, None, DcOptions::default(), &ExecLimits::none())
        .expect("dc operating point")
}

fn assert_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: entry {i} differs ({x:?} vs {y:?})"
        );
    }
}

/// Bit-identical DC and voltage-transfer curve for the single inverter.
#[test]
fn inverter_deck_matches_builder_bitwise() {
    let cell = surrogate_cell(4e-5);
    let chain = gnrlab::spice::measure::single_inverter_circuit(&cell, VDD).expect("inverter");
    let reparsed = golden_roundtrip("inverter", &chain.circuit, "conformance: single inverter");

    assert_bits(
        &dc_solution(&chain.circuit),
        &dc_solution(&reparsed),
        "inverter dc",
    );

    // Full 41-point VTC, both directions through the same warm-started
    // sweep machinery.
    let values: Vec<f64> = (0..41).map(|i| VDD * i as f64 / 40.0).collect();
    let out_builder = chain.output;
    let out_reparsed = reparsed.find_node("out").expect("out node");
    let vtc_a = transfer_curve(
        &chain.circuit,
        chain.input_source,
        &values,
        out_builder,
        DcOptions::default(),
    )
    .expect("builder vtc");
    let vtc_b = transfer_curve(
        &reparsed,
        chain.input_source,
        &values,
        out_reparsed,
        DcOptions::default(),
    )
    .expect("deck vtc");
    for (i, ((xa, ya), (xb, yb))) in vtc_a.iter().zip(&vtc_b).enumerate() {
        assert_eq!(xa.to_bits(), xb.to_bits(), "vtc point {i} input");
        assert_eq!(ya.to_bits(), yb.to_bits(), "vtc point {i} output");
    }
}

/// Bit-identical pulse transient for the FO4 chain, including the
/// emitted `pulse(...)` card round-trip.
#[test]
fn fo4_transient_matches_builder_bitwise() {
    let cell = surrogate_cell(4e-5);
    let mut chain = InverterChain::fo4(&cell, VDD).expect("fo4 chain");
    set_source_wave(
        &mut chain.circuit,
        chain.input_source,
        Waveform::Pulse {
            low: 0.0,
            high: VDD,
            delay: 1e-10,
            rise: 2e-11,
            fall: 2e-11,
            width: 9e-10,
            period: 2e-9,
        },
    )
    .expect("set pulse");
    let reparsed = golden_roundtrip("fo4", &chain.circuit, "conformance: fo4 inverter chain");

    let ctx = ExecCtx::from_env();
    let opts = TransientOptions::new(1.2e-9, 4e-12);
    let (ra, _) = transient(&ctx, &chain.circuit, &opts).expect("builder transient");
    let (rb, _) = transient(&ctx, &reparsed, &opts).expect("deck transient");
    assert_bits(ra.times(), rb.times(), "fo4 time axis");
    for name in ["in", "out", "vdd"] {
        let na = chain.circuit.find_node(name).expect("builder node");
        let nb = reparsed.find_node(name).expect("deck node");
        assert_bits(
            &ra.voltage(&chain.circuit, na),
            &rb.voltage(&reparsed, nb),
            &format!("fo4 v({name})"),
        );
    }
}

/// Bit-identical (metastable) DC solution for the 3-stage ring.
#[test]
fn ring_oscillator_deck_matches_builder_bitwise() {
    let cell = surrogate_cell(4e-5);
    let ro = RingOscillator::with_cells(&[cell], 3, VDD).expect("ring");
    let reparsed = golden_roundtrip("ring3", &ro.circuit, "conformance: 3-stage ring oscillator");
    assert_bits(
        &dc_solution(&ro.circuit),
        &dc_solution(&reparsed),
        "ring dc",
    );
}

/// Bit-identical DC truth tables for the 2-input NAND and NOR.
#[test]
fn gate_decks_match_builders_bitwise() {
    let cell = surrogate_cell(4e-5);
    for (kind, name) in [(GateKind::Nand2, "nand2"), (GateKind::Nor2, "nor2")] {
        let gate = Gate2::new(&cell, kind, VDD).expect("gate");
        let reparsed = golden_roundtrip(name, &gate.circuit, &format!("conformance: {name}"));
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut ca = gate.circuit.clone();
            let mut cb = reparsed.clone();
            for (c, tag) in [(&mut ca, "builder"), (&mut cb, "deck")] {
                set_source_value(c, 0, if a { VDD } else { 0.0 })
                    .unwrap_or_else(|e| panic!("{tag} source a: {e}"));
                set_source_value(c, 1, if b { VDD } else { 0.0 })
                    .unwrap_or_else(|e| panic!("{tag} source b: {e}"));
            }
            assert_bits(
                &dc_solution(&ca),
                &dc_solution(&cb),
                &format!("{name} a={a} b={b}"),
            );
        }
    }
}

/// The latch's butterfly SNM recomputed from its two emitted half-decks
/// matches `latch_noise_margins` bitwise.
#[test]
fn latch_snm_matches_builder_bitwise() {
    let inv_a = surrogate_cell(4e-5);
    let inv_b = surrogate_cell(3.2e-5);
    let latch = Latch::new(inv_a.clone(), inv_b.clone(), VDD);
    let reference = latch_noise_margins(&latch, 31).expect("latch margins");

    let values: Vec<f64> = (0..31).map(|i| VDD * i as f64 / 30.0).collect();
    let mut vtcs = Vec::new();
    for (cell, name) in [(&inv_a, "latch_a"), (&inv_b, "latch_b")] {
        let chain = gnrlab::spice::measure::single_inverter_circuit(cell, VDD).expect("half");
        let reparsed = golden_roundtrip(
            name,
            &chain.circuit,
            &format!("conformance: latch half {name}"),
        );
        let out = reparsed.find_node("out").expect("out node");
        vtcs.push(
            transfer_curve(
                &reparsed,
                chain.input_source,
                &values,
                out,
                DcOptions::default(),
            )
            .expect("half vtc"),
        );
    }
    let margins = butterfly_snm(&vtcs[0], &vtcs[1], VDD);
    assert_eq!(
        margins.upper_v.to_bits(),
        reference.upper_v.to_bits(),
        "upper lobe"
    );
    assert_eq!(
        margins.lower_v.to_bits(),
        reference.lower_v.to_bits(),
        "lower lobe"
    );
    assert_eq!(margins.snm().to_bits(), reference.snm().to_bits(), "snm");
}
