//! Conformance and robustness suite for the KLU-style sparse MNA path
//! (DESIGN.md §12): sparse-vs-dense agreement on DC and transient
//! analyses, seeded-random sparse-vs-dense LU equivalence, structural
//! failure modes returning proper errors, and the structural-zero
//! pattern-stability guarantee that makes symbolic reuse sound.
//!
//! The whole suite is deterministic; `scripts/verify.sh` runs it under
//! `GNR_THREADS=1` and `=4`, pinning that results are thread-count
//! independent.

use gnrlab::num::budget::ExecLimits;
use gnrlab::num::{
    sparse_solve, CsrMatrix, NumError, Refactorization, Rng, SparseLu, TripletBuilder,
};
use gnrlab::spice::circuit::{Circuit, Element, NodeId, Waveform};
use gnrlab::spice::dc::{dc_operating_point, DcOptions};
use gnrlab::spice::transient::{transient, TransientOptions};
use gnrlab::spice::MnaSolverKind;

// ------------------------------------------------ circuit conformance --

/// A k x k resistor mesh driven corner-to-corner: k^2 + 1 unknowns, well
/// above the sparse crossover.
fn mesh(k: usize) -> Circuit {
    let mut c = Circuit::new();
    let nodes: Vec<Vec<NodeId>> = (0..k)
        .map(|i| (0..k).map(|j| c.node(&format!("n{i}_{j}"))).collect())
        .collect();
    for i in 0..k {
        for j in 0..k {
            if i + 1 < k {
                c.add(Element::Resistor {
                    a: nodes[i][j],
                    b: nodes[i + 1][j],
                    ohms: 1e3 + (i * k + j) as f64,
                });
            }
            if j + 1 < k {
                c.add(Element::Resistor {
                    a: nodes[i][j],
                    b: nodes[i][j + 1],
                    ohms: 1.5e3 + (i + j) as f64,
                });
            }
        }
    }
    c.add(Element::VSource {
        p: nodes[0][0],
        n: NodeId::GROUND,
        wave: Waveform::Dc(1.0),
    });
    c.add(Element::Resistor {
        a: nodes[k - 1][k - 1],
        b: NodeId::GROUND,
        ohms: 2e3,
    });
    c
}

fn opts_with(solver: MnaSolverKind) -> DcOptions {
    DcOptions {
        solver,
        ..DcOptions::default()
    }
}

#[test]
fn mesh_dc_sparse_matches_dense_within_1e12() {
    for k in [4usize, 8, 12] {
        let c = mesh(k);
        let xd = dc_operating_point(
            &c,
            None,
            opts_with(MnaSolverKind::Dense),
            &ExecLimits::none(),
        )
        .expect("dense");
        let xs = dc_operating_point(
            &c,
            None,
            opts_with(MnaSolverKind::Sparse),
            &ExecLimits::none(),
        )
        .expect("sparse");
        assert_eq!(xd.len(), xs.len());
        for (i, (a, b)) in xd.iter().zip(&xs).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12,
                "k={k} unknown {i}: dense {a} vs sparse {b}"
            );
        }
    }
}

#[test]
fn auto_solver_is_bit_identical_to_dense_on_small_circuits() {
    // Below the crossover, Auto must take the exact legacy dense path —
    // not merely agree within tolerance.
    let mut c = Circuit::new();
    let vin = c.node("in");
    let mid = c.node("mid");
    c.add(Element::VSource {
        p: vin,
        n: NodeId::GROUND,
        wave: Waveform::Dc(3.0),
    });
    c.add(Element::Resistor {
        a: vin,
        b: mid,
        ohms: 2e3,
    });
    c.add(Element::Resistor {
        a: mid,
        b: NodeId::GROUND,
        ohms: 1e3,
    });
    let auto = dc_operating_point(
        &c,
        None,
        opts_with(MnaSolverKind::Auto),
        &ExecLimits::none(),
    )
    .expect("auto");
    let dense = dc_operating_point(
        &c,
        None,
        opts_with(MnaSolverKind::Dense),
        &ExecLimits::none(),
    )
    .expect("dense");
    assert_eq!(auto, dense, "auto must be bit-identical to dense here");
}

/// RC ladder transient: the same fixed pattern is refactored every Newton
/// iteration of every time step; sparse and dense must agree at every
/// accepted time point.
#[test]
fn transient_rc_ladder_sparse_matches_dense() {
    let build = || {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-11,
                rise: 1e-11,
                fall: 1e-11,
                width: 4e-10,
                period: 1e-9,
            },
        });
        let mut prev = vin;
        for i in 0..12 {
            let node = c.node(&format!("l{i}"));
            c.add(Element::Resistor {
                a: prev,
                b: node,
                ohms: 500.0 + 10.0 * i as f64,
            });
            c.add(Element::Capacitor {
                a: node,
                b: NodeId::GROUND,
                farads: 2e-14,
            });
            prev = node;
        }
        c
    };
    let ctx = gnrlab::num::par::ExecCtx::strict();
    let mut results = Vec::new();
    for solver in [MnaSolverKind::Dense, MnaSolverKind::Sparse] {
        let c = build();
        let mut opts = TransientOptions::new(1e-9, 1e-11);
        opts.newton.solver = solver;
        let (r, _) = transient(&ctx, &c, &opts).expect("simulates");
        results.push(r);
    }
    assert_eq!(results[0].times(), results[1].times());
    assert_eq!(results[0].len(), results[1].len());
    let last = results[0].len() - 1;
    for step in [1usize, last / 2, last] {
        // Compare full solution vectors at representative points.
        let a = &results[0];
        let b = &results[1];
        let c = build();
        for node in 1..c.node_count() {
            let va = a.voltage(&c, NodeId(node))[step];
            let vb = b.voltage(&c, NodeId(node))[step];
            assert!(
                (va - vb).abs() <= 1e-12,
                "step {step} node {node}: dense {va} vs sparse {vb}"
            );
        }
    }
}

// -------------------------------------------- random LU equivalence --

fn random_system(rng: &mut Rng) -> (CsrMatrix, Vec<f64>) {
    let n = 5 + rng.below(60);
    let mut tb = TripletBuilder::new(n, n);
    for i in 0..n {
        // Diagonally dominant keeps conditioning sane so the 1e-10
        // agreement bound is meaningful rather than luck.
        tb.push(i, i, 5.0 + rng.uniform());
        let fan = 1 + rng.below(5);
        for _ in 0..fan {
            let j = rng.below(n);
            if j != i {
                tb.push(i, j, rng.uniform_in(-0.6, 0.6));
            }
        }
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
    (tb.build(), b)
}

#[test]
fn seeded_random_sparse_lu_matches_dense_lu() {
    let mut rng = Rng::seed_from_u64(0x5eed_2026);
    for trial in 0..40 {
        let (a, b) = random_system(&mut rng);
        let x = sparse_solve(&a, &b).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        let xd = a.to_dense().solve(&b).expect("dense solves");
        for (i, (xi, di)) in x.iter().zip(&xd).enumerate() {
            assert!(
                (xi - di).abs() < 1e-10,
                "trial {trial} x[{i}]: sparse {xi} vs dense {di}"
            );
        }
    }
}

#[test]
fn structural_singularity_is_an_error_not_a_panic() {
    // Empty column: no transversal can exist.
    let mut tb = TripletBuilder::new(4, 4);
    for i in 0..4 {
        tb.push(i, 0, 1.0);
        tb.push(i, 1, 1.0);
        tb.push(i, 2, 1.0);
    }
    let a = tb.build();
    assert!(matches!(
        SparseLu::analyze(&a),
        Err(NumError::SingularMatrix { .. })
    ));
}

#[test]
fn zero_pivot_is_an_error_not_a_panic() {
    // Structurally sound but numerically rank-one.
    let mut tb = TripletBuilder::new(3, 3);
    for i in 0..3 {
        for j in 0..3 {
            tb.push(i, j, ((i + 1) * (j + 1)) as f64);
        }
    }
    let a = tb.build();
    let mut lu = SparseLu::analyze(&a).expect("structurally fine");
    assert!(matches!(
        lu.factor(&a),
        Err(NumError::SingularMatrix { .. })
    ));
}

#[test]
fn refactor_after_value_change_is_bit_consistent() {
    // Two independent analyze/factor/refactor chains over the same data
    // must produce bit-identical solutions (thread count cannot matter:
    // verify.sh runs this suite under GNR_THREADS=1 and =4).
    let mut rng = Rng::seed_from_u64(77);
    let (a, b) = random_system(&mut rng);
    let mut a2 = a.clone();
    for (k, v) in a2.values_mut().iter_mut().enumerate() {
        *v += 1e-3 * ((k % 11) as f64 - 5.0);
    }
    let run = || {
        let mut lu = SparseLu::analyze(&a).expect("analyzes");
        lu.factor(&a).expect("factors");
        assert_eq!(
            lu.refactor(&a2).expect("refactors"),
            Refactorization::Reused
        );
        lu.solve(&b).expect("solves")
    };
    let x1 = run();
    let x2 = run();
    assert_eq!(x1, x2, "refactor chain must be bit-deterministic");
}

// --------------------------------------------- pattern stability pin --

#[test]
fn structural_zero_cancellation_keeps_pattern_stable() {
    // Two value-sets over one stencil — the second cancels an entry to
    // exactly 0.0. The CSR patterns must be identical (the satellite-1
    // guarantee that makes symbolic reuse sound).
    let assemble = |w: f64| -> CsrMatrix {
        let mut tb = TripletBuilder::new(3, 3);
        for i in 0..3 {
            tb.push(i, i, 2.0);
        }
        tb.push(0, 1, w);
        tb.push(0, 1, -1.0); // cancels when w == 1.0
        tb.push(2, 0, 0.5);
        tb.build()
    };
    let a = assemble(3.0);
    let b = assemble(1.0);
    assert_eq!(a.nnz(), b.nnz(), "cancellation must not shrink the pattern");
    assert!(a.same_pattern(&b));
    assert_eq!(a.row_ptr(), b.row_ptr());
    assert_eq!(a.col_idx(), b.col_idx());
    // And the cancelled assembly still factors with the shared symbolics.
    let mut lu = SparseLu::analyze(&a).expect("analyzes");
    lu.factor(&a).expect("factors");
    assert_eq!(
        lu.refactor(&b).expect("refactors same pattern"),
        Refactorization::Reused
    );
    let x = lu.solve(&[1.0, 2.0, 3.0]).expect("solves");
    let xd = b.to_dense().solve(&[1.0, 2.0, 3.0]).expect("dense");
    for (xi, di) in x.iter().zip(&xd) {
        assert!((xi - di).abs() < 1e-12);
    }
}

#[test]
fn non_square_symmetry_defect_errors_instead_of_panicking() {
    // Regression: wide matrices used to index out of bounds.
    let mut tb = TripletBuilder::new(2, 4);
    tb.push(0, 0, 1.0);
    tb.push(1, 3, 2.0);
    let wide = tb.build();
    assert!(matches!(
        wide.symmetry_defect(),
        Err(NumError::DimensionMismatch { .. })
    ));
}
