//! Acceptance suite for budgeted execution and checkpoint/resume.
//!
//! Pins the contract from DESIGN.md §13: a seed-20080608 Monte Carlo run
//! that is cancelled (or runs out of budget) mid-flight checkpoints its
//! completed prefix, and the resumed run produces a summary bit-identical
//! to an uninterrupted run — at any pool size, with the §4 pins (530
//! stalled / 0.735 yield) intact. An exhausted budget surfaces partial
//! statistics plus a typed stop, never a panic; a corrupted checkpoint is
//! detected, discarded, and the run restarts clean.
//!
//! The fault injector and the checkpoint files are process-global /
//! on-disk shared state, so every test serializes through [`suite_lock`].

use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{
    characterize_stage_universe, monte_carlo_from_universe, monte_carlo_from_universe_resumable,
    MonteCarloResult, StageUniverse, MC_CHECKPOINT_CHUNK,
};
use gnrlab::num::budget::{Budget, CancelToken, ExecLimits};
use gnrlab::num::fault::{self, FaultPlan};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::{telemetry, NumError};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

const MC_SEED: u64 = 20080608;
const MC_SAMPLES: usize = 2000;

fn suite_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// The one-time Fast-fidelity stage universe shared by every test (the
/// characterization is the expensive step; the sampling runs are cheap).
fn universe() -> &'static StageUniverse {
    static UNIVERSE: OnceLock<StageUniverse> = OnceLock::new();
    UNIVERSE.get_or_init(|| {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        characterize_stage_universe(&ExecCtx::serial(), &mut lib, 0.4, 15)
            .expect("universe characterizes")
    })
}

fn checkpoint_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gnr-budget-checkpoint-{}-{name}.json",
        std::process::id()
    ))
}

/// A budget that allows exactly `n` budget checks before tripping.
fn check_capped(n: u64) -> ExecLimits {
    ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(n))
}

fn assert_bit_identical(a: &MonteCarloResult, b: &MonteCarloResult, what: &str) {
    assert_eq!(a.frequency_hz.len(), b.frequency_hz.len(), "{what}: count");
    assert_eq!(a.stalled_samples, b.stalled_samples, "{what}: stalls");
    for (x, y) in a.frequency_hz.iter().zip(&b.frequency_hz) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: frequency");
    }
    for (x, y) in a.dynamic_w.iter().zip(&b.dynamic_w) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: dynamic power");
    }
    for (x, y) in a.static_w.iter().zip(&b.static_w) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: static power");
    }
}

/// The headline acceptance test: interrupt the pinned §4 Monte Carlo run
/// mid-flight, checkpoint, resume on 1- and 4-thread pools, and demand the
/// resumed summary is byte-identical to the uninterrupted run — pins and
/// all.
#[test]
fn cancelled_mc_resumes_bit_identically_on_serial_and_parallel_pools() {
    let _g = suite_lock();
    fault::disarm();
    let baseline = monte_carlo_from_universe(&ExecCtx::serial(), universe(), MC_SAMPLES, MC_SEED);
    assert_eq!(baseline.frequency_hz.len(), 1470, "functional pin");
    assert_eq!(baseline.stalled_samples, 530, "stalled pin");
    assert!(
        (baseline.functional_yield() - 0.735).abs() < 1e-12,
        "yield pin"
    );

    for threads in [1usize, 4] {
        let path = checkpoint_path(&format!("resume-{threads}"));
        let _ = std::fs::remove_file(&path);
        // Three budget checks pass, the fourth trips: three chunks (768
        // samples) land in the checkpoint.
        let ctx = ExecCtx::with_threads(threads).with_limits(check_capped(3));
        let partial =
            monte_carlo_from_universe_resumable(&ctx, universe(), MC_SAMPLES, MC_SEED, Some(&path))
                .expect("interrupted run still returns partial statistics");
        assert!(!partial.is_complete());
        assert_eq!(partial.completed_samples, 3 * MC_CHECKPOINT_CHUNK);
        assert!(
            matches!(partial.interrupted, Some(NumError::BudgetExhausted { .. })),
            "got {:?}",
            partial.interrupted
        );
        assert!(path.exists(), "interrupted run must leave a checkpoint");

        // Resume without limits: the run completes, removes the file, and
        // the merged summary matches the uninterrupted baseline bit for
        // bit — including the fault-log pins.
        let ctx = ExecCtx::with_threads(threads);
        let resumed =
            monte_carlo_from_universe_resumable(&ctx, universe(), MC_SAMPLES, MC_SEED, Some(&path))
                .expect("resume completes");
        assert!(resumed.is_complete());
        assert_eq!(resumed.completed_samples, MC_SAMPLES);
        assert!(!path.exists(), "finished run must remove its checkpoint");
        assert_bit_identical(
            &baseline,
            &resumed.result,
            &format!("{threads}-thread resume"),
        );
        assert_eq!(resumed.result.frequency_hz.len(), 1470);
        assert_eq!(resumed.result.stalled_samples, 530);
        assert!((resumed.result.functional_yield() - 0.735).abs() < 1e-12);
    }
}

/// Budget exhaustion without a checkpoint path still degrades gracefully:
/// the partial population is a strict bit-prefix of the full run, and the
/// typed stop is reported rather than thrown.
#[test]
fn exhausted_budget_reports_partial_statistics() {
    let _g = suite_lock();
    fault::disarm();
    let baseline = monte_carlo_from_universe(&ExecCtx::serial(), universe(), MC_SAMPLES, MC_SEED);
    let ctx = ExecCtx::serial().with_limits(check_capped(2));
    let partial = monte_carlo_from_universe_resumable(&ctx, universe(), MC_SAMPLES, MC_SEED, None)
        .expect("partial statistics");
    assert_eq!(partial.completed_samples, 2 * MC_CHECKPOINT_CHUNK);
    assert_eq!(partial.requested_samples, MC_SAMPLES);
    let err = partial.interrupted.expect("typed stop");
    assert!(
        matches!(err, NumError::BudgetExhausted { ref site } if site == "mc.chunk"),
        "got {err:?}"
    );
    // Every sample that was composed carries the same bits as in the full
    // run: kept-vs-stalled partitioning is per-sample, so the partial
    // population is a prefix of the baseline's.
    let r = &partial.result;
    assert_eq!(
        r.frequency_hz.len() + r.stalled_samples,
        partial.completed_samples
    );
    for (x, y) in r.frequency_hz.iter().zip(&baseline.frequency_hz) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// A cancel token trips the very first budget probe: zero samples, typed
/// `Cancelled`, no checkpoint file left behind.
#[test]
fn cancel_token_stops_before_the_first_chunk() {
    let _g = suite_lock();
    fault::disarm();
    let path = checkpoint_path("cancelled");
    let _ = std::fs::remove_file(&path);
    let token = CancelToken::new();
    token.cancel();
    let ctx = ExecCtx::serial().with_limits(ExecLimits::none().with_cancel(token));
    let outcome =
        monte_carlo_from_universe_resumable(&ctx, universe(), MC_SAMPLES, MC_SEED, Some(&path))
            .expect("cancelled run still returns");
    assert_eq!(outcome.completed_samples, 0);
    assert!(
        matches!(outcome.interrupted, Some(NumError::Cancelled { .. })),
        "got {:?}",
        outcome.interrupted
    );
    assert!(!path.exists(), "no chunk completed, no checkpoint written");
}

/// A corrupted checkpoint (injected via the `checkpoint.corrupt` fault
/// site) is detected, discarded — counted — and the run restarts from
/// scratch to the same bit-identical summary.
#[test]
fn corrupt_checkpoint_is_discarded_and_run_restarts_clean() {
    let _g = suite_lock();
    fault::disarm();
    let baseline = monte_carlo_from_universe(&ExecCtx::serial(), universe(), MC_SAMPLES, MC_SEED);
    let path = checkpoint_path("corrupt");
    let _ = std::fs::remove_file(&path);
    // Leave a genuine partial checkpoint on disk...
    let ctx = ExecCtx::serial().with_limits(check_capped(1));
    let partial =
        monte_carlo_from_universe_resumable(&ctx, universe(), MC_SAMPLES, MC_SEED, Some(&path))
            .expect("partial run");
    assert_eq!(partial.completed_samples, MC_CHECKPOINT_CHUNK);
    assert!(path.exists());
    // ...then resume with the corrupt-read fault armed: the load must
    // discard (and delete) the file instead of trusting it.
    fault::arm(FaultPlan::seeded(1).with_site("checkpoint.corrupt", 1.0));
    telemetry::reset();
    telemetry::arm();
    let resumed = monte_carlo_from_universe_resumable(
        &ExecCtx::serial(),
        universe(),
        MC_SAMPLES,
        MC_SEED,
        Some(&path),
    );
    let snap = telemetry::snapshot();
    let injected = fault::injection_count("checkpoint.corrupt");
    telemetry::disarm();
    fault::disarm();
    let resumed = resumed.expect("clean restart completes");
    assert!(resumed.is_complete());
    assert_eq!(injected, 1, "corrupt-read fault must fire exactly once");
    assert_eq!(
        snap.counter("checkpoint.discarded"),
        Some(1),
        "discard must be counted"
    );
    assert!(
        snap.counter("checkpoint.writes").unwrap_or(0) > 0,
        "restarted run re-checkpoints its chunks"
    );
    assert!(!path.exists(), "completed restart removes its checkpoint");
    assert_bit_identical(&baseline, &resumed.result, "post-discard restart");
}
