//! Acceptance suite for the mode-space NEGF path (DESIGN.md §15): the
//! transform's algebraic contracts (orthonormal basis, flat-band spectrum
//! preservation), the separability-monitor/fault fallback contract
//! (bit-identical to the uncached real-space solve), and build
//! determinism (table JSON byte-identical at any pool size).
//!
//! The fault injector is process-global, so every test serializes
//! through [`suite_lock`].

use gnrlab::device::table::TableGrid;
use gnrlab::device::{ballistic_negf_table, DeviceConfig, NegfTableOptions, Polarity, SbfetModel};
use gnrlab::lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian};
use gnrlab::negf::mode_space::FALLBACK_SITE;
use gnrlab::negf::transport::SpectralSolver;
use gnrlab::negf::{Lead, ModeBasis, ModeSpaceOptions, ModeSpaceSolver, RgfSolver};
use gnrlab::num::budget::ExecLimits;
use gnrlab::num::fault::{self, FaultPlan};
use gnrlab::num::par::ExecCtx;
use std::sync::{Mutex, MutexGuard, OnceLock};

const N: usize = 9;
const CELLS: usize = 5;
const WINDOW: (f64, f64) = (-0.8, 0.8);

fn suite_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn basis() -> ModeBasis {
    let (h00, h01) = unit_cell_hamiltonian(AGnr::new(N).unwrap());
    ModeBasis::build(&h00, &h01, WINDOW.0, WINDOW.1, &ModeSpaceOptions::default()).unwrap()
}

fn assert_slices_bit_identical(
    a: &gnrlab::negf::rgf::SpectralSlice,
    b: &gnrlab::negf::rgf::SpectralSlice,
    what: &str,
) {
    assert_eq!(
        a.transmission.to_bits(),
        b.transmission.to_bits(),
        "{what}: transmission"
    );
    assert_eq!(a.a1_diag.len(), b.a1_diag.len(), "{what}: atom count");
    for (i, (x, y)) in a.a1_diag.iter().zip(&b.a1_diag).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: a1[{i}]");
    }
    for (i, (x, y)) in a.a2_diag.iter().zip(&b.a2_diag).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: a2[{i}]");
    }
}

/// The basis columns are orthonormal (`VᵀV = I`) and the window actually
/// truncates: `1 ≤ k < m`, with the dropped count visible through `dim`.
#[test]
fn mode_basis_is_orthonormal_and_truncates() {
    let _g = suite_lock();
    fault::disarm();
    let b = basis();
    let (k, m) = (b.modes(), b.dim());
    assert!(k >= 1 && k < m, "window must truncate: k = {k}, m = {m}");
    let gram = b.basis().adjoint().matmul(b.basis());
    for i in 0..k {
        for j in 0..k {
            let want = if i == j { 1.0 } else { 0.0 };
            let g = gram.get(i, j);
            assert!(
                (g.re - want).abs() < 1e-10 && g.im.abs() < 1e-12,
                "VᵀV[{i}][{j}] = {g}"
            );
        }
    }
}

/// At the flat band the device blocks equal the bare lead cell, mode
/// decoupling is exact, and the reduced solve must reproduce the
/// real-space transmission throughout the selection window — the
/// spectrum-preservation contract of the transform.
#[test]
fn flat_band_reduced_solve_matches_real_space_spectrum() {
    let _g = suite_lock();
    fault::disarm();
    let gnr = AGnr::new(N).unwrap();
    let ham = DeviceHamiltonian::flat_band(gnr, CELLS).unwrap();
    let full = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let solver = ModeSpaceSolver::new(
        &ham,
        Lead::gnr_contact(),
        Lead::gnr_contact(),
        &basis(),
        &ModeSpaceOptions::default(),
    )
    .unwrap();
    assert!(!solver.degraded(), "flat band must not trip the monitor");
    assert!(
        solver.separability_defect_ev() < 1e-12,
        "flat-band defect = {}",
        solver.separability_defect_ev()
    );
    let limits = ExecLimits::none();
    for e in [-0.7, -0.45, -0.2, 0.25, 0.5, 0.75] {
        let t_full = full.spectral_slice(e, &limits).unwrap().transmission;
        let t_mode = solver.spectral_slice(e, &limits).unwrap().transmission;
        assert!(
            (t_full - t_mode).abs() < 1e-8 * (1.0 + t_full.abs()),
            "T({e}): real-space {t_full:.12} vs mode-space {t_mode:.12}"
        );
    }
    // Mid-gap transport is evanescent: the dropped modes carry part of the
    // decaying tail, so equality there is only up to the (negligible)
    // tunneling floor — well below the 1e-6 A current conformance.
    let t_gap = solver.spectral_slice(0.0, &limits).unwrap().transmission;
    assert!(
        t_gap.abs() < 1e-5,
        "mid-gap T = {t_gap:.3e} must be negligible"
    );
}

/// Forced fallback (fault site armed at p = 1.0) must reproduce the
/// uncached real-space solve bit for bit — the fallback is a fresh full
/// solve, never a cache entry or a re-expanded reduced solve.
#[test]
fn forced_fallback_is_bit_identical_to_real_space() {
    let _g = suite_lock();
    let gnr = AGnr::new(N).unwrap();
    let ham = DeviceHamiltonian::flat_band(gnr, CELLS).unwrap();
    let full = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let solver = ModeSpaceSolver::new(
        &ham,
        Lead::gnr_contact(),
        Lead::gnr_contact(),
        &basis(),
        &ModeSpaceOptions::default(),
    )
    .unwrap();
    let limits = ExecLimits::none();
    fault::arm(FaultPlan::seeded(0x5eed).with_site(FALLBACK_SITE, 1.0));
    let outcome = std::panic::catch_unwind(|| {
        for e in [-0.5, 0.1, 0.6] {
            let reference = full.spectral_slice(e, &limits).unwrap();
            let fallback = solver.spectral_slice(e, &limits).unwrap();
            assert_slices_bit_identical(&reference, &fallback, &format!("E = {e}"));
        }
        fault::injection_count(FALLBACK_SITE)
    });
    fault::disarm();
    let injected = outcome.expect("forced fallback must not panic");
    assert_eq!(injected, 3, "every energy point probes the site once");
}

/// A potential that varies *within* a layer couples kept modes to dropped
/// modes; with a zero tolerance the separability monitor must degrade the
/// solver, and every energy point then takes the real-space path without
/// any fault armed — again bit for bit.
#[test]
fn separability_monitor_degrades_on_intra_layer_potential() {
    let _g = suite_lock();
    fault::disarm();
    let gnr = AGnr::new(N).unwrap();
    let m = gnr.atoms_per_cell();
    // Per-atom sawtooth: layer-uniform shifts project to zero defect, so
    // the variation must live inside the cell to trip the monitor.
    let pot: Vec<f64> = (0..CELLS * m).map(|i| 0.004 * (i % m) as f64).collect();
    let ham = DeviceHamiltonian::new(gnr, CELLS, &pot).unwrap();
    let full = RgfSolver::new(&ham, Lead::gnr_contact(), Lead::gnr_contact());
    let strict = ModeSpaceOptions::default().with_coupling_tol_ev(0.0);
    let solver = ModeSpaceSolver::new(
        &ham,
        Lead::gnr_contact(),
        Lead::gnr_contact(),
        &basis(),
        &strict,
    )
    .unwrap();
    assert!(solver.degraded(), "zero tolerance must degrade");
    assert!(solver.separability_defect_ev() > 0.0);
    let limits = ExecLimits::none();
    for e in [-0.4, 0.3] {
        let reference = full.spectral_slice(e, &limits).unwrap();
        let degraded = solver.spectral_slice(e, &limits).unwrap();
        assert_slices_bit_identical(&reference, &degraded, &format!("degraded E = {e}"));
    }
    // The default tolerance accepts the same device (the defect is small),
    // so the monitor is a real threshold, not a constant verdict.
    let relaxed = ModeSpaceSolver::new(
        &ham,
        Lead::gnr_contact(),
        Lead::gnr_contact(),
        &basis(),
        &ModeSpaceOptions::default(),
    )
    .unwrap();
    assert!(
        !relaxed.degraded(),
        "defect {} must pass the default tolerance",
        relaxed.separability_defect_ev()
    );
}

/// The mode-space table build is bit-deterministic across pool sizes:
/// identical canonical JSON from 1-, 2-, and 4-thread contexts.
#[test]
fn mode_space_table_json_is_byte_identical_across_pool_sizes() {
    let _g = suite_lock();
    fault::disarm();
    let mut cfg = DeviceConfig::test_small(N).unwrap();
    cfg.channel_cells = 6;
    let model = SbfetModel::new(&cfg).unwrap();
    let grid = TableGrid {
        vgs: (0.0, 0.5),
        vds: (0.05, 0.35),
        points: 3,
    };
    let build = |threads: usize| {
        let ctx = ExecCtx::with_threads(threads);
        ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            grid,
            1,
            &NegfTableOptions::mode_space(),
        )
        .unwrap()
        .to_json()
        .unwrap()
    };
    let serial = build(1);
    assert!(serial.contains("negf-mode-space"), "provenance recorded");
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            build(threads),
            "{threads}-thread build diverged from serial"
        );
    }
}
