//! Telemetry determinism suite.
//!
//! Pins the three contracts of `gnr_num::telemetry`:
//!
//! - counter and histogram values from a seed-20080608 Monte Carlo run
//!   (plus a parallel SCF solve) are bit-identical across pool sizes
//!   (`GNR_THREADS=1` vs `=4` spelled as `ExecCtx::with_threads`);
//! - physics results are bit-identical with telemetry armed vs disarmed
//!   (recording must observe, never perturb);
//! - `TelemetrySnapshot` round-trips through `gnr_num::json`.
//!
//! The global sink is process-wide, so every test that arms it serializes
//! through [`telemetry_lock`] and disarms before releasing.

use gnrlab::device::scf::ScfOptions;
use gnrlab::device::{DeviceConfig, ScfSolver};
use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{characterize_stage_universe, monte_carlo_from_universe};
use gnrlab::explore::monte_carlo::{MonteCarloResult, StageUniverse};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::telemetry::{self, MetricValue, TelemetrySnapshot};
use gnrlab::num::Json;
use std::sync::{Mutex, MutexGuard, OnceLock};

const MC_SEED: u64 = 20080608;
const MC_SAMPLES: usize = 500;

/// The global telemetry sink is process-wide: tests that arm it must not
/// overlap. Poisoned locks are recovered.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Disarms and clears on drop so a panicking assertion cannot leak an
/// armed global sink into the next test.
struct Armed;

impl Armed {
    fn arm() -> Self {
        telemetry::reset();
        telemetry::arm();
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        telemetry::disarm();
        telemetry::reset();
    }
}

/// The paper's stage universe, characterized once (telemetry disarmed) and
/// shared across tests: characterization is the expensive step, sampling
/// from it is microseconds.
fn universe() -> &'static StageUniverse {
    static UNIVERSE: OnceLock<StageUniverse> = OnceLock::new();
    UNIVERSE.get_or_init(|| {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        characterize_stage_universe(&ExecCtx::serial(), &mut lib, 0.4, 15)
            .expect("universe characterizes")
    })
}

fn scf_solver() -> ScfSolver {
    let mut cfg = DeviceConfig::test_small(9).expect("valid test config");
    cfg.channel_cells = 12;
    ScfSolver::new(&cfg, ScfOptions::fast())
}

/// Deterministic projection of a snapshot: counters and histogram bins.
/// Timers are wall-clock and excluded from the bit-identity contract.
fn deterministic_metrics(snap: &TelemetrySnapshot) -> Vec<(String, Vec<u64>)> {
    snap.metrics
        .iter()
        .filter_map(|(name, value)| match value {
            MetricValue::Counter(c) => Some((name.clone(), vec![*c])),
            MetricValue::Histogram(h) => {
                let mut v = h.bins.clone();
                v.push(h.count);
                Some((name.clone(), v))
            }
            MetricValue::Gauge(_) | MetricValue::Timer(_) => None,
        })
        .collect()
}

/// One full instrumented workload against the global sink: a parallel SCF
/// solve (NEGF transport fans energy points across the pool, recording
/// through worker shards and the global free functions) plus the pinned
/// seed-20080608 Monte Carlo sampling run.
fn run_workload(threads: usize) -> (MonteCarloResult, Vec<(String, Vec<u64>)>) {
    // Force the shared one-time characterization before arming so its
    // metrics never leak into the workload snapshot.
    universe();
    let ctx = ExecCtx::with_threads(threads);
    let _armed = Armed::arm();
    let solver = scf_solver();
    solver.solve(&ctx, 0.0, 0.1).expect("scf converges");
    let mc = monte_carlo_from_universe(&ctx, universe(), MC_SAMPLES, MC_SEED);
    let metrics = deterministic_metrics(&telemetry::snapshot());
    (mc, metrics)
}

#[test]
fn counters_bit_identical_across_pool_sizes() {
    let _g = telemetry_lock();
    let (mc1, metrics1) = run_workload(1);
    let (mc4, metrics4) = run_workload(4);
    assert!(!metrics1.is_empty(), "workload must record metrics");
    assert_eq!(
        metrics1, metrics4,
        "counters and histograms must be bit-identical for 1 vs 4 threads"
    );
    // The instrumented hot loops all showed up.
    let counter = |name: &str| {
        metrics1
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .1[0]
    };
    assert!(counter("scf.iterations") > 0);
    assert!(counter("negf.rgf.sweeps") > 0);
    assert!(counter("negf.energy_points") > 0);
    assert!(counter("poisson.iterations") > 0);
    assert_eq!(counter("mc.samples"), MC_SAMPLES as u64);
    assert_eq!(counter("mc.stalled_rings"), mc1.stalled_samples as u64);
    // The physics agrees too, of course.
    assert_eq!(mc1.stalled_samples, mc4.stalled_samples);
    for (a, b) in mc1.frequency_hz.iter().zip(&mc4.frequency_hz) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn results_bit_identical_armed_vs_disarmed() {
    let _g = telemetry_lock();
    let ctx = ExecCtx::serial();
    telemetry::disarm();
    telemetry::reset();
    let plain = monte_carlo_from_universe(&ctx, universe(), MC_SAMPLES, MC_SEED);
    assert!(
        telemetry::snapshot().is_empty(),
        "disarmed run records nothing"
    );
    let armed_result = {
        let _armed = Armed::arm();
        let r = monte_carlo_from_universe(&ctx, universe(), MC_SAMPLES, MC_SEED);
        assert!(!telemetry::snapshot().is_empty(), "armed run records");
        r
    };
    assert_eq!(plain.stalled_samples, armed_result.stalled_samples);
    assert_eq!(plain.frequency_hz.len(), armed_result.frequency_hz.len());
    for (a, b) in plain.frequency_hz.iter().zip(&armed_result.frequency_hz) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in plain.dynamic_w.iter().zip(&armed_result.dynamic_w) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in plain.static_w.iter().zip(&armed_result.static_w) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn snapshot_round_trips_through_json() {
    let _g = telemetry_lock();
    let snap = {
        let _armed = Armed::arm();
        let ctx = ExecCtx::with_threads(2);
        let solver = scf_solver();
        solver.solve(&ctx, 0.0, 0.1).expect("scf converges");
        telemetry::snapshot()
    };
    assert!(snap.counter("scf.iterations").unwrap_or(0) > 0);
    let text = snap.to_json().dump();
    let back =
        TelemetrySnapshot::from_json(&Json::parse(&text).expect("dump parses")).expect("schema ok");
    assert_eq!(snap, back, "snapshot must round-trip bit-exactly");
}
