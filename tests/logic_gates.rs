//! Static logic gates on GNRFET devices: truth tables and stack effects,
//! extending the paper's circuit set beyond inverter/RO/latch.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::builders::{ExtrinsicParasitics, Gate2, GateKind, InverterCell};
use std::sync::OnceLock;

fn cell() -> &'static InverterCell {
    static CELL: OnceLock<InverterCell> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid");
        let model = SbfetModel::new(&cfg).expect("builds");
        let vmin = model.minimum_leakage_vg(0.4).expect("minimum");
        let grid = TableGrid {
            vgs: (-0.35, 1.0),
            vds: (0.0, 0.85),
            points: 21,
        };
        let n = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, grid, 4)
            .expect("table")
            .with_vg_shift(-vmin);
        let p = n.mirrored();
        InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("cell")
    })
}

const VDD: f64 = 0.4;

#[test]
fn nand2_truth_table() {
    let gate = Gate2::new(cell(), GateKind::Nand2, VDD).unwrap();
    let expect_high = |v: f64, label: &str| {
        assert!(v > 0.8 * VDD, "{label}: expected high, got {v:.3} V");
    };
    let expect_low = |v: f64, label: &str| {
        assert!(v < 0.2 * VDD, "{label}: expected low, got {v:.3} V");
    };
    expect_high(gate.dc_output(false, false, VDD).unwrap(), "00");
    expect_high(gate.dc_output(false, true, VDD).unwrap(), "01");
    expect_high(gate.dc_output(true, false, VDD).unwrap(), "10");
    expect_low(gate.dc_output(true, true, VDD).unwrap(), "11");
}

#[test]
fn nor2_truth_table() {
    let gate = Gate2::new(cell(), GateKind::Nor2, VDD).unwrap();
    let v00 = gate.dc_output(false, false, VDD).unwrap();
    assert!(v00 > 0.8 * VDD, "00 -> high, got {v00:.3}");
    for (a, b) in [(false, true), (true, false), (true, true)] {
        let v = gate.dc_output(a, b, VDD).unwrap();
        assert!(v < 0.2 * VDD, "{a}{b} -> low, got {v:.3}");
    }
}

#[test]
fn series_stack_weakens_the_low_drive() {
    // The NAND's series n-stack must pull the "11" output less hard than a
    // single inverter pull-down: its V_OL is equal-or-worse (ratioed
    // against the same leakage), a classic stack effect.
    let nand = Gate2::new(cell(), GateKind::Nand2, VDD).unwrap();
    let v_nand = nand.dc_output(true, true, VDD).unwrap();
    let inv_vtc = gnrlab::spice::measure::inverter_vtc(cell(), VDD, 3).unwrap();
    let v_inv = inv_vtc.last().unwrap().1;
    assert!(
        v_nand >= v_inv - 1e-6,
        "stack effect: nand V_OL {v_nand:.4} vs inverter V_OL {v_inv:.4}"
    );
}

#[test]
fn ambipolar_leakage_differs_by_input_vector() {
    // With ambipolar SBFETs the off-state leakage depends on which input
    // combination holds the gate off — the vector dependence that makes
    // GNRFET standby power management harder than CMOS (paper §5 theme).
    let gate = Gate2::new(cell(), GateKind::Nand2, VDD).unwrap();
    let mut leaks = Vec::new();
    for (a, b) in [(false, false), (false, true), (true, false)] {
        let mut circuit = gate.circuit.clone();
        gnrlab::spice::dc::set_source_value(&mut circuit, 0, if a { VDD } else { 0.0 }).unwrap();
        gnrlab::spice::dc::set_source_value(&mut circuit, 1, if b { VDD } else { 0.0 }).unwrap();
        let x = gnrlab::spice::dc::dc_operating_point(
            &circuit,
            None,
            gnrlab::spice::dc::DcOptions::default(),
            &gnrlab::num::budget::ExecLimits::none(),
        )
        .unwrap();
        leaks.push(circuit.source_current(&x, 2).abs() * VDD);
    }
    let lo = leaks.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = leaks.iter().cloned().fold(0.0f64, f64::max);
    assert!(hi > 1.2 * lo, "vector dependence: {leaks:?}");
    assert!(lo > 0.0, "ambipolar devices always leak");
}
