//! Acceptance suite for the content-addressed device-table store
//! (DESIGN.md §14): a warm hit is byte-identical to the cold build's
//! canonical JSON, perturbing any keyed field is a miss, a corrupted
//! on-disk entry is evicted and rebuilt clean (counters pinned), and the
//! hit/miss counters — and the cached bytes themselves — are independent
//! of the pool size.
//!
//! The fault injector and the telemetry registry are process-global, so
//! every test serializes through [`suite_lock`].

use gnrlab::cmos::{CmosNode, CmosTransistor};
use gnrlab::device::store::FAULT_SITE;
use gnrlab::device::{Polarity, TableStore};
use gnrlab::explore::devices::{ArrayScenario, DeviceLibrary, DeviceVariant, Fidelity};
use gnrlab::num::fault::{self, FaultPlan};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::telemetry;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn suite_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn cache_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gnr-table-cache-{}-{name}", std::process::id()))
}

/// The `tbl-*.json` entries under `dir`, sorted by name.
fn entries(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("tbl-") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

fn counter(snap: &gnrlab::num::telemetry::TelemetrySnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

/// The headline byte-identity contract: the on-disk entry IS the cold
/// build's canonical JSON, and a warm hit from a fresh handle serves
/// exactly those bytes — counted as one hit, zero misses, zero rewrites.
#[test]
fn warm_hit_is_byte_identical_to_the_cold_build() {
    let _g = suite_lock();
    fault::disarm();
    let dir = cache_dir("byte-identical");
    let _ = std::fs::remove_dir_all(&dir);

    telemetry::reset();
    telemetry::arm();
    let mut cold_lib = DeviceLibrary::with_disk_cache(Fidelity::Fast, &dir);
    let cold = cold_lib
        .ntype_table(&ExecCtx::serial(), DeviceVariant::nominal())
        .expect("cold build");
    let cold_snap = telemetry::snapshot();
    let files = entries(&dir);
    assert_eq!(files.len(), 1, "one request, one entry");
    let on_disk = std::fs::read_to_string(&files[0]).expect("entry readable");
    assert_eq!(
        on_disk,
        cold.to_json().expect("canonical json"),
        "the stored entry must be the cold build's canonical JSON"
    );
    assert_eq!(counter(&cold_snap, "table_cache.misses"), 1);
    assert_eq!(counter(&cold_snap, "table_cache.writes"), 1);
    assert_eq!(counter(&cold_snap, "table_cache.hits"), 0);

    telemetry::reset();
    telemetry::arm();
    let mut warm_lib = DeviceLibrary::with_disk_cache(Fidelity::Fast, &dir);
    let warm = warm_lib
        .ntype_table(&ExecCtx::serial(), DeviceVariant::nominal())
        .expect("warm hit");
    let warm_snap = telemetry::snapshot();
    telemetry::disarm();
    assert_eq!(
        warm.to_json().expect("canonical json"),
        on_disk,
        "a warm hit must round-trip to bytes identical to the cold build"
    );
    assert_eq!(counter(&warm_snap, "table_cache.hits"), 1);
    assert_eq!(counter(&warm_snap, "table_cache.misses"), 0);
    assert_eq!(
        counter(&warm_snap, "table_cache.writes"),
        0,
        "hits never rewrite"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every keyed field is load-bearing: single-field perturbations of the
/// same request land in distinct entries (misses), and only the verbatim
/// replay is a hit.
#[test]
fn perturbing_any_keyed_field_is_a_miss() {
    let _g = suite_lock();
    fault::disarm();
    let dir = cache_dir("perturb");
    let _ = std::fs::remove_dir_all(&dir);
    let store = TableStore::on_disk(&dir);

    let base = CmosTransistor::nominal(CmosNode::N22);
    let mut cards = vec![base];
    for field in 0..8usize {
        let mut c = base;
        match field {
            0 => c.vth0 += 1e-3,
            1 => c.alpha += 1e-3,
            2 => c.k *= 1.0 + 1e-3,
            3 => c.n_sub += 1e-3,
            4 => c.dibl += 1e-3,
            5 => c.k_sat += 1e-3,
            6 => c.c_gate *= 1.0 + 1e-3,
            _ => c.temperature_k += 1.0,
        }
        cards.push(c);
    }

    telemetry::reset();
    telemetry::arm();
    for card in &cards {
        card.to_table_cached(&store, Polarity::NType, 0.8)
            .expect("builds");
    }
    // Polarity and bias range are keyed too...
    base.to_table_cached(&store, Polarity::PType, 0.8)
        .expect("builds");
    base.to_table_cached(&store, Polarity::NType, 0.9)
        .expect("builds");
    // ...and only the verbatim replay hits.
    base.to_table_cached(&store, Polarity::NType, 0.8)
        .expect("hits");
    let snap = telemetry::snapshot();
    telemetry::disarm();

    assert_eq!(
        counter(&snap, "table_cache.misses"),
        11,
        "9 cards + polarity + vmax"
    );
    assert_eq!(counter(&snap, "table_cache.hits"), 1, "only the replay");
    assert_eq!(entries(&dir).len(), 11, "one entry per distinct key");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted entry (injected via the `table_cache.corrupt` fault site)
/// is evicted — counted — and rebuilt to bytes identical to the original;
/// the rebuilt entry then serves clean hits.
#[test]
fn corrupt_entry_is_evicted_and_rebuilt_clean() {
    let _g = suite_lock();
    fault::disarm();
    let dir = cache_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let base = CmosTransistor::nominal(CmosNode::N32);

    let cold = TableStore::on_disk(&dir);
    base.to_table_cached(&cold, Polarity::NType, 0.8)
        .expect("cold build");
    let files = entries(&dir);
    assert_eq!(files.len(), 1);
    let original = std::fs::read_to_string(&files[0]).expect("entry");

    // A fresh handle forces the disk path; the armed site corrupts the
    // read, which must evict and rebuild rather than serve a bad table.
    fault::arm(FaultPlan::seeded(7).with_site(FAULT_SITE, 1.0));
    telemetry::reset();
    telemetry::arm();
    let rebuilt = TableStore::on_disk(&dir);
    let table = base.to_table_cached(&rebuilt, Polarity::NType, 0.8);
    let injected = fault::injection_count(FAULT_SITE);
    let snap = telemetry::snapshot();
    telemetry::disarm();
    fault::disarm();

    let table = table.expect("corrupt entry must rebuild cleanly");
    assert_eq!(injected, 1, "the corrupt-read fault fires exactly once");
    assert_eq!(counter(&snap, "table_cache.evictions"), 1);
    assert_eq!(counter(&snap, "table_cache.misses"), 1);
    assert_eq!(counter(&snap, "table_cache.writes"), 1);
    assert_eq!(counter(&snap, "table_cache.hits"), 0);
    assert_eq!(
        std::fs::read_to_string(&files[0]).expect("rewritten"),
        original,
        "the rebuilt entry must be byte-identical to the original"
    );
    assert_eq!(table.to_json().expect("canonical json"), original);

    // With the injector disarmed the next fresh handle is a plain hit.
    telemetry::reset();
    telemetry::arm();
    let again = TableStore::on_disk(&dir);
    base.to_table_cached(&again, Polarity::NType, 0.8)
        .expect("clean hit");
    let snap = telemetry::snapshot();
    telemetry::disarm();
    assert_eq!(counter(&snap, "table_cache.hits"), 1);
    assert_eq!(counter(&snap, "table_cache.evictions"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hit/miss counters — and the cached bytes — must not depend on the
/// pool size: the store is consulted per request, not per worker, and the
/// tables themselves are bit-deterministic.
#[test]
fn counters_and_bytes_are_pool_size_invariant() {
    let _g = suite_lock();
    fault::disarm();
    let variants = [
        DeviceVariant::nominal(),
        DeviceVariant::width(9, ArrayScenario::OneOfFour),
        DeviceVariant::charge(1.0, ArrayScenario::AllFour),
    ];
    let mut witness: Option<String> = None;
    for threads in [1usize, 4] {
        let store = Arc::new(TableStore::in_memory());
        let ctx = ExecCtx::with_threads(threads);
        telemetry::reset();
        telemetry::arm();
        // First library builds every variant (all misses)...
        let mut builder = DeviceLibrary::with_store(Fidelity::Fast, Arc::clone(&store));
        for v in variants {
            builder.ntype_table(&ctx, v).expect("builds");
        }
        // ...a second library on the same store replays them (all hits).
        let mut reader = DeviceLibrary::with_store(Fidelity::Fast, Arc::clone(&store));
        for v in variants {
            reader.ntype_table(&ctx, v).expect("hits");
        }
        let json = reader
            .ntype_table(&ctx, DeviceVariant::nominal())
            .expect("memoized")
            .to_json()
            .expect("canonical json");
        let snap = telemetry::snapshot();
        telemetry::disarm();
        assert_eq!(
            (
                counter(&snap, "table_cache.misses"),
                counter(&snap, "table_cache.hits"),
            ),
            (3, 3),
            "{threads}-thread counters"
        );
        match &witness {
            None => witness = Some(json),
            Some(w) => assert_eq!(w, &json, "cached bytes must be pool-size invariant"),
        }
    }
}
