//! Integration of the CMOS baseline with the GNRFET flow: the same
//! benchmark circuits must run on both device families and reproduce the
//! paper's Table 1 orderings.

use gnrlab::cmos::{CmosNode, CmosTransistor};
use gnrlab::device::Polarity;
use gnrlab::explore::comparison::{cmos_cell, cmos_row};
use gnrlab::explore::contours::design_space_map;
use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::measure::{butterfly_snm, fo4_metrics_for_cell, inverter_vtc};

#[test]
fn cmos_inverter_through_the_gnrfet_flow() {
    let cell = cmos_cell(CmosNode::N22, 0.8).unwrap();
    let m = fo4_metrics_for_cell(&cell, 0.8).unwrap();
    // FO4 delay of a 22nm-class inverter: single-digit picoseconds.
    assert!(
        m.delay_s > 0.5e-12 && m.delay_s < 30e-12,
        "delay {:.3e}",
        m.delay_s
    );
    let vtc = inverter_vtc(&cell, 0.8, 33).unwrap();
    let snm = butterfly_snm(&vtc, &vtc, 0.8).snm();
    // Paper Table 1: CMOS SNM ~0.3 V at 0.8 V supply.
    assert!(snm > 0.2, "CMOS SNM {snm}");
}

#[test]
fn gnrfet_has_large_edp_advantage() {
    // The paper's headline: 40-168x EDP advantage at comparable operating
    // points. At reduced fidelity we require at least an order of
    // magnitude in the same direction.
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let map = design_space_map(
        &ExecCtx::serial(),
        &mut lib,
        &[0.35, 0.45],
        &[0.08, 0.14],
        15,
    )
    .unwrap();
    let gnr_best = map
        .feasible()
        .map(|p| p.edp_js)
        .fold(f64::INFINITY, f64::min);
    let cmos = cmos_row(CmosNode::N32, 0.6, 15).unwrap();
    let advantage = cmos.edp_js / gnr_best;
    assert!(
        advantage > 10.0,
        "EDP advantage = {advantage:.1}x (gnr {gnr_best:.3e}, cmos {:.3e})",
        cmos.edp_js
    );
}

#[test]
fn cmos_snm_exceeds_gnrfet_snm() {
    // Paper: "GNRFETs have lower noise margins in comparison to scaled
    // CMOS" — at the same relative supply point.
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let map = design_space_map(&ExecCtx::serial(), &mut lib, &[0.4], &[0.1, 0.14], 15).unwrap();
    let gnr_best_snm = map.feasible().map(|p| p.snm_v).fold(0.0, f64::max);
    let cell = cmos_cell(CmosNode::N22, 0.4).unwrap();
    let vtc = inverter_vtc(&cell, 0.4, 33).unwrap();
    let cmos_snm = butterfly_snm(&vtc, &vtc, 0.4).snm();
    assert!(
        cmos_snm > gnr_best_snm,
        "cmos {cmos_snm:.3} vs gnrfet {gnr_best_snm:.3}"
    );
}

#[test]
fn cmos_table_polarity_pair_is_complementary() {
    let nmos = CmosTransistor::nominal(CmosNode::N45);
    let n = nmos.to_table(Polarity::NType, 0.8).unwrap();
    let p = nmos.to_table(Polarity::PType, 0.8).unwrap();
    // Pull-down conducts for positive bias, pull-up for negative.
    assert!(n.current(0.8, 0.4) > 1e-6);
    assert!(p.current(-0.8, -0.4) < -1e-6);
    assert!(n.current(0.8, 0.4) + p.current(-0.8, -0.4) < 1e-12);
}
