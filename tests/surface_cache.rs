//! Surface-GF cache determinism contract (DESIGN.md §11): the accelerated
//! bias-sweep table build must be bit-identical — table values AND cache
//! telemetry — across pool sizes, and a poisoned/evicted cache entry must
//! fall back to a fresh Sancho–Rubio solve that reproduces the cached
//! value exactly.
//!
//! The fault injector and its per-site RNG stream are process-wide, so
//! every test here serializes through [`fault_lock`] (arming in one test
//! must not leak probes into another's build).

use gnrlab::device::negf_table::{ballistic_negf_table, NegfTableOptions};
use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, Polarity, SbfetModel};
use gnrlab::num::fault::{self, FaultPlan};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::Telemetry;
use std::sync::{Mutex, MutexGuard, OnceLock};

const CACHE_SITE: &str = "negf.surface_cache";

fn fault_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Disarms on drop so a panicking assertion cannot leak an armed plan.
struct Armed;

impl Armed {
    fn arm(plan: FaultPlan) -> Self {
        fault::arm(plan);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn small_model() -> SbfetModel {
    let mut cfg = DeviceConfig::test_small(7).expect("valid");
    cfg.channel_cells = 4;
    SbfetModel::new(&cfg).expect("builds")
}

fn small_grid() -> TableGrid {
    TableGrid {
        vgs: (0.0, 0.5),
        vds: (0.05, 0.35),
        points: 3,
    }
}

/// The counters whose values the determinism contract covers.
const PINNED_COUNTERS: &[&str] = &[
    "negf.surface_cache.miss",
    "negf.surface_cache.hit",
    "negf.surface_cache.fallback",
    "negf.transport.refined_points",
    "negf.transport.refine_rounds",
    "device.negf_table.bias_points",
];

/// One accelerated build on an isolated telemetry sink; returns the table
/// JSON and the pinned counter values.
fn build(threads: usize) -> (String, Vec<(String, Option<u64>)>) {
    let model = small_model();
    let ctx = ExecCtx::with_threads(threads).with_telemetry(Telemetry::isolated());
    let table = ballistic_negf_table(
        &ctx,
        &model,
        Polarity::NType,
        small_grid(),
        2,
        &NegfTableOptions::accelerated(),
    )
    .expect("table builds");
    let snap = ctx.telemetry().snapshot();
    let counters = PINNED_COUNTERS
        .iter()
        .map(|&name| (name.to_string(), snap.counter(name)))
        .collect();
    (table.to_json().expect("serialises"), counters)
}

/// Cache hit/miss/refinement counters — not just the physics — are
/// bit-identical across 1-, 2-, and 4-thread pools: the serial pre-indexing
/// fixes the miss set, so the pool only changes who computes each entry.
#[test]
fn counters_and_table_bit_identical_across_pools() {
    let _guard = fault_lock();
    let (json1, counters1) = build(1);
    assert!(
        counters1.iter().any(|(_, v)| v.unwrap_or(0) > 0),
        "no cache telemetry recorded: {counters1:?}"
    );
    let miss = counters1
        .iter()
        .find(|(n, _)| n.ends_with(".miss"))
        .and_then(|(_, v)| *v)
        .unwrap_or(0);
    assert!(miss > 0, "priming recorded no misses");
    for threads in [2usize, 4] {
        let (json, counters) = build(threads);
        assert_eq!(json1, json, "{threads}-thread table JSON differs");
        assert_eq!(
            counters1, counters,
            "{threads}-thread cache counters differ"
        );
    }
}

/// A poisoned/evicted cache entry (injected via the fault site probed on
/// every lookup) silently falls back to a fresh Sancho–Rubio solve at the
/// same snapped energy — bit-identical table, nonzero fallback counter.
#[test]
fn evicted_entries_fall_back_bit_identically() {
    let _guard = fault_lock();
    let (clean_json, _) = build(4);
    let armed = Armed::arm(FaultPlan::seeded(20080608).with_site(CACHE_SITE, 0.25));
    let (faulted_json, counters) = build(4);
    let probes = fault::probe_count(CACHE_SITE);
    let injected = fault::injection_count(CACHE_SITE);
    drop(armed);
    assert!(probes > 0, "cache lookups never probed the fault site");
    assert!(
        injected > 0,
        "plan at p=0.25 injected nothing over {probes} probes"
    );
    let fallback = counters
        .iter()
        .find(|(n, _)| n.ends_with(".fallback"))
        .and_then(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(
        fallback as usize, injected,
        "every injected eviction must surface as a fallback"
    );
    assert_eq!(
        clean_json, faulted_json,
        "fallback recompute drifted from the cached value"
    );
}
