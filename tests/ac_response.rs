//! Frequency-domain characterization of the GNRFET inverter: small-signal
//! gain and bandwidth from AC analysis, cross-checked against the DC
//! transfer curve's slope.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::num::par::ExecCtx;
use gnrlab::spice::ac::ac_analysis;
use gnrlab::spice::builders::{ExtrinsicParasitics, InverterCell};
use gnrlab::spice::circuit::{Circuit, Element, NodeId, Waveform};
use gnrlab::spice::dc::{transfer_curve, DcOptions};
use std::sync::OnceLock;

const VDD: f64 = 0.4;

struct Bench {
    circuit: Circuit,
    input: NodeId,
    output: NodeId,
}

fn bench() -> &'static Bench {
    static BENCH: OnceLock<Bench> = OnceLock::new();
    BENCH.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid");
        let model = SbfetModel::new(&cfg).expect("builds");
        let vmin = model.minimum_leakage_vg(VDD).expect("minimum");
        let grid = TableGrid {
            vgs: (-0.35, 1.0),
            vds: (0.0, 0.85),
            points: 21,
        };
        let n = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, grid, 4)
            .expect("table")
            .with_vg_shift(-vmin);
        let p = n.mirrored();
        let cell = InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("cell");
        let mut circuit = Circuit::new();
        let input = circuit.node("in");
        let output = circuit.node("out");
        let vdd_node = circuit.node("vdd");
        // Bias the input at the inverter's switching threshold so the
        // linearization sits in the high-gain region.
        circuit.add(Element::VSource {
            p: input,
            n: NodeId::GROUND,
            wave: Waveform::Dc(VDD / 2.0),
        });
        circuit.add(Element::VSource {
            p: vdd_node,
            n: NodeId::GROUND,
            wave: Waveform::Dc(VDD),
        });
        cell.instantiate(&mut circuit, input, output, vdd_node);
        Bench {
            circuit,
            input,
            output,
        }
    })
}

#[test]
fn low_frequency_gain_matches_vtc_slope() {
    let b = bench();
    // AC gain at 1 MHz (far below any device pole).
    let sweep = ac_analysis(&b.circuit, 0, &[1e6], DcOptions::default()).unwrap();
    let ac_gain = sweep.points[0].voltage(&b.circuit, b.output).norm();
    // DC slope of the transfer curve around VDD/2.
    let dv = 0.004;
    let vals = [VDD / 2.0 - dv, VDD / 2.0 + dv];
    let vtc = transfer_curve(&b.circuit, 0, &vals, b.output, DcOptions::default()).unwrap();
    let dc_gain = ((vtc[1].1 - vtc[0].1) / (2.0 * dv)).abs();
    assert!(
        ac_gain > 1.0,
        "regenerative gain required, got {ac_gain:.2}"
    );
    assert!(
        (ac_gain - dc_gain).abs() < 0.25 * dc_gain.max(1.0),
        "ac {ac_gain:.2} vs dc slope {dc_gain:.2}"
    );
}

#[test]
fn gain_rolls_off_with_ghz_bandwidth() {
    let b = bench();
    let freqs: Vec<f64> = (0..13).map(|k| 1e7 * 10f64.powf(k as f64 / 2.0)).collect();
    let sweep = ac_analysis(&b.circuit, 0, &freqs, DcOptions::default()).unwrap();
    let gain = sweep.gain(&b.circuit, b.input, b.output);
    // Monotone roll-off at high frequency.
    let g_low = gain[0].1;
    let g_high = gain.last().unwrap().1;
    assert!(g_high < 0.5 * g_low, "roll-off: {g_low:.2} -> {g_high:.3}");
    // Bandwidth of a ps-class device is in the GHz..THz decade.
    let bw = sweep
        .bandwidth_3db(&b.circuit, b.input, b.output)
        .expect("sweep crosses -3 dB");
    assert!(
        (1e8..1e14).contains(&bw),
        "bandwidth {bw:.3e} Hz out of plausible range"
    );
}
