//! Fault-injection suite for the convergence safety net.
//!
//! Uses the deterministic injector (`gnr_num::fault`) to force each
//! failure mode the recovery subsystem covers — SCF divergence, SPICE
//! Newton divergence (transient and DC), and linear-solver failure — and
//! asserts the escalation ladders recover or degrade with the correct
//! report. Also runs a 200-sample Monte Carlo under injected
//! characterization faults to completion, with every fault logged by
//! sample id and stage, and checks the disarmed paths are bit-identical
//! to the plain entry points.
//!
//! The injector is process-global, so every test that arms it serializes
//! through [`injector_lock`] and disarms before releasing.

use gnrlab::device::scf::ScfOptions;
use gnrlab::device::{DeviceConfig, ScfSolver};
use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{
    characterize_stage_universe, monte_carlo_from_universe, ring_oscillator_monte_carlo,
};
use gnrlab::num::budget::{Budget, ExecLimits};
use gnrlab::num::fault::{self, FaultPlan};
use gnrlab::num::par::ExecCtx;
use gnrlab::num::recover::solve_linear_robust;
use gnrlab::num::solver::IterControl;
use gnrlab::num::telemetry;
use gnrlab::num::NumError;
use gnrlab::num::TripletBuilder;
use gnrlab::spice::dc::{dc_operating_point, DcOptions};
use gnrlab::spice::transient::{transient, TransientOptions, TransientRecovery};
use gnrlab::spice::{Circuit, Element, NodeId, SpiceError, Waveform};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fault injector is process-global: tests that arm it must not
/// overlap. Poisoned locks are recovered (a failed test must not cascade).
fn injector_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Disarms on drop so a panicking assertion cannot leak an armed plan
/// into the next test.
struct ArmedPlan;

impl ArmedPlan {
    fn arm(plan: FaultPlan) -> Self {
        fault::arm(plan);
        ArmedPlan
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn scf_solver() -> ScfSolver {
    let mut cfg = DeviceConfig::test_small(9).expect("valid test config");
    cfg.channel_cells = 12;
    ScfSolver::new(&cfg, ScfOptions::fast())
}

fn rc_circuit() -> (Circuit, NodeId) {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.add(Element::VSource {
        p: vin,
        n: NodeId::GROUND,
        wave: Waveform::Dc(1.0),
    });
    c.add(Element::Resistor {
        a: vin,
        b: out,
        ohms: 1e3,
    });
    c.add(Element::Capacitor {
        a: out,
        b: NodeId::GROUND,
        farads: 1e-12,
    });
    (c, out)
}

// ---------------------------------------------------------------- SCF --

#[test]
fn sustained_scf_faults_exhaust_the_ladder_cleanly() {
    let _g = injector_lock();
    // p = 1.0 suppresses every rung: the solve must fail with a divergence
    // error (no panic, no bogus result) after probing all four rungs.
    let _armed = ArmedPlan::arm(FaultPlan::seeded(11).with_site("scf", 1.0));
    let solver = scf_solver();
    let err = solver.solve(&ExecCtx::serial(), 0.0, 0.1).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("did not converge"),
        "expected divergence error, got: {msg}"
    );
    assert_eq!(fault::injection_count("scf"), 4, "all four rungs probed");
}

#[test]
fn intermittent_scf_fault_recovers_with_correct_report() {
    let _g = injector_lock();
    // Seed chosen so the site stream fails the nominal attempt and passes
    // a later one (verified by the probe/injection counters below).
    let seed = (0..u64::MAX)
        .find(|&s| {
            let _armed = ArmedPlan::arm(FaultPlan::seeded(s).with_site("probe", 0.6));
            fault::should_fail("probe") && !fault::should_fail("probe")
        })
        .expect("some seed fails then passes");
    let _armed = ArmedPlan::arm(FaultPlan::seeded(seed).with_site("scf", 0.6));
    let solver = scf_solver();
    let (result, report) = solver
        .solve(&ExecCtx::serial(), 0.0, 0.1)
        .expect("ladder recovers");
    assert!(report.converged());
    assert!(!report.nominal(), "nominal rung was suppressed");
    assert!(report.attempts.len() >= 2);
    assert_eq!(
        report.attempts[0].error.as_deref(),
        Some("injected fault: scf attempt suppressed")
    );
    assert!(result.current_a.is_finite());
    assert!(fault::injection_count("scf") >= 1);
}

#[test]
fn scf_recovery_disarmed_is_bit_identical_to_plain_solve() {
    let _g = injector_lock();
    fault::disarm();
    let solver = scf_solver();
    let (plain, _) = solver
        .solve(&ExecCtx::strict(), 0.5, 0.1)
        .expect("plain solve");
    let (laddered, report) = solver
        .solve(&ExecCtx::serial(), 0.5, 0.1)
        .expect("laddered solve");
    assert!(report.nominal());
    assert_eq!(plain.current_a.to_bits(), laddered.current_a.to_bits());
    assert_eq!(plain.charge_c.to_bits(), laddered.charge_c.to_bits());
    assert_eq!(plain.layer_potential_ev, laddered.layer_potential_ev);
}

// ---------------------------------------------------- SPICE transient --

#[test]
fn injected_newton_fault_triggers_dt_halving() {
    let _g = injector_lock();
    // Kill exactly the first transient attempt: probability 1.0 would kill
    // every rung, so find a seed whose "newton" stream fails once then
    // passes.
    let seed = (0..u64::MAX)
        .find(|&s| {
            let _armed = ArmedPlan::arm(FaultPlan::seeded(s).with_site("newton", 0.6));
            fault::should_fail("newton") && !fault::should_fail("newton")
        })
        .expect("some seed fails then passes");
    let _armed = ArmedPlan::arm(FaultPlan::seeded(seed).with_site("newton", 0.6));
    let (c, out) = rc_circuit();
    let opts = TransientOptions::new(2e-9, 2e-11);
    let (result, report) = transient(&ExecCtx::serial(), &c, &opts).expect("recovers");
    assert!(report.converged());
    assert_eq!(report.policy_used.as_deref(), Some("dt/2"));
    assert_eq!(
        report.attempts[0].error.as_deref(),
        Some("injected fault: transient attempt suppressed")
    );
    // The rescued run is exactly a plain transient at the halved step.
    fault::disarm();
    let (halved, _) = transient(&ExecCtx::strict(), &c, &TransientOptions::new(2e-9, 1e-11))
        .expect("plain halved run");
    let v = result.voltage(&c, out);
    assert_eq!(v.len(), halved.voltage(&c, out).len());
    assert!(
        v.len() > 150,
        "halved dt must roughly double the 101 points"
    );
    assert!((v.last().copied().unwrap() - 1.0).abs() < 0.01);
}

#[test]
fn dt_floor_skips_rungs_and_source_ramp_rescues() {
    let _g = injector_lock();
    // Suppress every transient attempt except the final source-ramp rung:
    // 1 nominal + 3 halvings = 4 failures, then pass.
    let seed = (0..u64::MAX)
        .find(|&s| {
            let _armed = ArmedPlan::arm(FaultPlan::seeded(s).with_site("newton", 0.7));
            let first_four = (0..4).all(|_| fault::should_fail("newton"));
            first_four && !fault::should_fail("newton")
        })
        .expect("some seed fails 4x then passes");
    let _armed = ArmedPlan::arm(FaultPlan::seeded(seed).with_site("newton", 0.7));
    let (c, out) = rc_circuit();
    let mut opts = TransientOptions::new(2e-9, 2e-11);
    opts.recovery = TransientRecovery {
        max_dt_halvings: 3,
        dt_floor: 0.0,
        source_ramp: true,
    };
    let (result, report) = transient(&ExecCtx::serial(), &c, &opts).expect("source ramp rescues");
    assert!(report.converged());
    assert_eq!(report.policy_used.as_deref(), Some("source-ramp"));
    assert_eq!(report.attempts.len(), 5);
    let v = result.voltage(&c, out);
    // The ramped DC start imposes the operating point, so the output is
    // already settled at t = 0.
    assert!((v[0] - 1.0).abs() < 1e-6);
}

#[test]
fn dt_floor_is_respected() {
    let _g = injector_lock();
    let _armed = ArmedPlan::arm(FaultPlan::seeded(3).with_site("newton", 1.0));
    let (c, _) = rc_circuit();
    let mut opts = TransientOptions::new(2e-9, 2e-11);
    opts.recovery = TransientRecovery {
        max_dt_halvings: 3,
        dt_floor: 1.5e-11, // dt/2 = 1e-11 is already below the floor
        source_ramp: false,
    };
    let err = transient(&ExecCtx::serial(), &c, &opts).unwrap_err();
    assert!(
        err.to_string().contains("did not converge"),
        "expected Newton divergence, got: {err}"
    );
    // Only the nominal rung consumed an injection; the floored rungs were
    // rejected before probing the injector.
    assert_eq!(fault::injection_count("newton"), 1);
}

#[test]
fn transient_recovery_disarmed_matches_plain_transient() {
    let _g = injector_lock();
    fault::disarm();
    let (c, out) = rc_circuit();
    let opts = TransientOptions::new(2e-9, 2e-11);
    let (plain, _) = transient(&ExecCtx::strict(), &c, &opts).expect("plain");
    let (laddered, report) = transient(&ExecCtx::serial(), &c, &opts).expect("laddered");
    assert!(report.nominal());
    let vp = plain.voltage(&c, out);
    let vl = laddered.voltage(&c, out);
    assert_eq!(vp.len(), vl.len());
    for (a, b) in vp.iter().zip(&vl) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

// ----------------------------------------------------------- SPICE DC --

#[test]
fn injected_dc_fault_falls_back_to_source_stepping() {
    let _g = injector_lock();
    let _armed = ArmedPlan::arm(FaultPlan::seeded(5).with_site("newton-dc", 1.0));
    let (c, out) = rc_circuit();
    // The primary gmin ladder and mid-rail seeds are suppressed; source
    // stepping must still find the operating point.
    let x = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none())
        .expect("source stepping rescues");
    assert!((c.voltage(&x, out) - 1.0).abs() < 1e-6);
    assert_eq!(fault::injection_count("newton-dc"), 1);
}

#[test]
fn dc_disarmed_is_bit_identical() {
    let _g = injector_lock();
    fault::disarm();
    let (c, _) = rc_circuit();
    let a = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).expect("a");
    let b = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).expect("b");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// Disarms the global telemetry sink on drop so a failed assertion cannot
/// leak an armed sink into the next test.
struct ArmedTelemetry;

impl ArmedTelemetry {
    fn arm() -> Self {
        telemetry::reset();
        telemetry::arm();
        ArmedTelemetry
    }
}

impl Drop for ArmedTelemetry {
    fn drop(&mut self) {
        telemetry::disarm();
    }
}

#[test]
fn double_dc_failure_surfaces_rescue_chain_failed_with_both_errors() {
    let _g = injector_lock();
    // Kill both the primary path ("newton-dc" suppresses the gmin ladder
    // and mid-rail seeds) and the last-resort source stepping: the rescue
    // chain runs dry and must report both failures, hiding neither.
    let _armed = ArmedPlan::arm(
        FaultPlan::seeded(7)
            .with_site("newton-dc", 1.0)
            .with_site("dc.source_stepping", 1.0),
    );
    let _t = ArmedTelemetry::arm();
    let (c, _) = rc_circuit();
    let err = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap_err();
    let snap = telemetry::snapshot();
    match &err {
        SpiceError::RescueChainFailed {
            analysis,
            attempted,
            primary,
            last,
        } => {
            assert_eq!(*analysis, "dc");
            assert_eq!(
                *attempted,
                &["gmin-ladder", "mid-rail-seeds", "source-stepping"]
            );
            assert!(
                matches!(**primary, SpiceError::NewtonDiverged { analysis: "dc", .. }),
                "primary: {primary:?}"
            );
            assert!(
                matches!(
                    **last,
                    SpiceError::NewtonDiverged {
                        analysis: "dc-source-stepping",
                        ..
                    }
                ),
                "last: {last:?}"
            );
        }
        other => panic!("expected RescueChainFailed, got {other:?}"),
    }
    // The display keeps both embedded failures visible.
    let msg = err.to_string();
    assert!(msg.contains("primary failure"), "msg: {msg}");
    assert!(msg.contains("dc-source-stepping"), "msg: {msg}");
    assert_eq!(fault::injection_count("newton-dc"), 1);
    assert_eq!(fault::injection_count("dc.source_stepping"), 1);
    assert_eq!(
        snap.counter("spice.dc.source_stepping_failures"),
        Some(1),
        "double failure must count a stepping failure"
    );
}

// ------------------------------------------------------ netlist decks --

/// The committed SRAM zoo deck, parsed and elaborated into a circuit.
/// The deck path and the programmatic builders share the same solver
/// stack, so the recovery contracts below must hold identically.
fn sram_deck_circuit() -> Circuit {
    gnrlab::spice::parse_deck(include_str!("../decks/zoo/sram6t.sp"))
        .expect("parse sram deck")
        .elaborate(&gnrlab::spice::ModelBindings::new())
        .expect("elaborate sram deck")
        .circuit
}

#[test]
fn parser_built_sram_stops_cleanly_on_exhausted_budget() {
    let _g = injector_lock();
    fault::disarm();
    let c = sram_deck_circuit();
    // A zero check cap trips on the first budget probe inside the linear
    // solve: the stop must surface as the typed budget error, unwrapped
    // and unrescued (the rescue chain must not retry past a budget stop).
    let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(0));
    let err = dc_operating_point(&c, None, DcOptions::default(), &limits).unwrap_err();
    assert!(
        matches!(err, SpiceError::Linear(NumError::BudgetExhausted { .. })),
        "expected budget stop, got: {err:?}"
    );
    // The same deck with an open budget solves fine — the stop above was
    // the budget, not the circuit.
    dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none())
        .expect("open budget solves the deck");
}

#[test]
fn parser_built_sram_reports_rescue_chain_failure_with_typed_errors() {
    let _g = injector_lock();
    let _t = ArmedTelemetry::arm();
    // Kill the primary DC path and the last-resort source stepping: the
    // deck-elaborated circuit must surface the same structured
    // RescueChainFailed report as a builder circuit would.
    let _armed = ArmedPlan::arm(
        FaultPlan::seeded(13)
            .with_site("newton-dc", 1.0)
            .with_site("dc.source_stepping", 1.0),
    );
    let c = sram_deck_circuit();
    let err = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap_err();
    match &err {
        SpiceError::RescueChainFailed {
            analysis,
            attempted,
            primary,
            last,
        } => {
            assert_eq!(*analysis, "dc");
            assert_eq!(
                *attempted,
                &["gmin-ladder", "mid-rail-seeds", "source-stepping"]
            );
            assert!(
                matches!(**primary, SpiceError::NewtonDiverged { analysis: "dc", .. }),
                "primary: {primary:?}"
            );
            assert!(
                matches!(
                    **last,
                    SpiceError::NewtonDiverged {
                        analysis: "dc-source-stepping",
                        ..
                    }
                ),
                "last: {last:?}"
            );
        }
        other => panic!("expected RescueChainFailed, got {other:?}"),
    }
    assert_eq!(fault::injection_count("newton-dc"), 1);
    assert_eq!(fault::injection_count("dc.source_stepping"), 1);
    assert_eq!(
        telemetry::snapshot().counter("spice.dc.source_stepping_failures"),
        Some(1)
    );
}

// ------------------------------------------------------ linear solver --

#[test]
fn injected_linear_fault_falls_through_to_dense_lu() {
    let _g = injector_lock();
    // Kill the CG and BiCGSTAB rungs; dense LU (third probe) survives.
    let seed = (0..u64::MAX)
        .find(|&s| {
            let _armed = ArmedPlan::arm(FaultPlan::seeded(s).with_site("linear", 0.7));
            fault::should_fail("linear")
                && fault::should_fail("linear")
                && !fault::should_fail("linear")
        })
        .expect("some seed fails 2x then passes");
    let _armed = ArmedPlan::arm(FaultPlan::seeded(seed).with_site("linear", 0.7));
    let n = 24;
    let mut tb = TripletBuilder::new(n, n);
    for i in 0..n {
        tb.push(i, i, 2.0);
        if i > 0 {
            tb.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            tb.push(i, i + 1, -1.0);
        }
    }
    let a = tb.build();
    let b = vec![1.0; n];
    let (result, report) = solve_linear_robust(
        &a,
        &b,
        &vec![0.0; n],
        IterControl::default(),
        true,
        &ExecLimits::none(),
    );
    let (x, _) = result.expect("sparse LU rescues");
    assert!(report.converged());
    assert_eq!(report.policy_used.as_deref(), Some("sparse-lu"));
    assert_eq!(report.attempts.len(), 3);
    let r = a.matvec(&x);
    for (ri, bi) in r.iter().zip(&b) {
        assert!((ri - bi).abs() < 1e-9);
    }
}

// ------------------------------------------------------- Monte Carlo --

#[test]
fn monte_carlo_200_samples_completes_under_injection_and_logs_every_fault() {
    let _g = injector_lock();
    let _armed = ArmedPlan::arm(FaultPlan::seeded(20080608).with_site("characterize", 0.15));
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let ctx = ExecCtx::serial();
    let mc =
        ring_oscillator_monte_carlo(&ctx, &mut lib, 0.4, 15, 200, 20080608).expect("completes");
    let log = ctx.faults().take();
    let injected = fault::injection_count("characterize");
    assert!(injected > 0, "p = 0.15 over 81 cells must fire");
    // Every injected characterization fault is logged with its cell id and
    // the "characterize" stage.
    let char_events: Vec<_> = log.in_stage("characterize").collect();
    assert_eq!(char_events.len(), injected);
    for e in &char_events {
        assert!(e.sample < 81, "cell id {} out of range", e.sample);
        assert!(e.error.contains("injected fault"));
    }
    // The run completed: every one of the 200 samples is accounted for,
    // and every stalled ring carries a logged fault with its sample id.
    assert_eq!(mc.frequency_hz.len() + mc.stalled_samples, 200);
    let ring_events: Vec<_> = log.in_stage("ring").collect();
    assert_eq!(ring_events.len(), mc.stalled_samples);
    for e in &ring_events {
        assert!(e.sample < 200);
    }
    // Dead cells can only lower the functional yield, never crash the run.
    assert!(mc.functional_yield() <= 1.0);
}

#[test]
fn monte_carlo_disarmed_logged_run_is_bit_identical_to_plain() {
    let _g = injector_lock();
    fault::disarm();
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let plain_ctx = ExecCtx::serial();
    let universe =
        characterize_stage_universe(&plain_ctx, &mut lib, 0.4, 15).expect("characterizes");
    let plain = monte_carlo_from_universe(&plain_ctx, &universe, 200, 20080608);
    let logged_ctx = ExecCtx::serial();
    let logged = monte_carlo_from_universe(&logged_ctx, &universe, 200, 20080608);
    let log = logged_ctx.faults().take();
    assert_eq!(plain.frequency_hz.len(), logged.frequency_hz.len());
    for (a, b) in plain.frequency_hz.iter().zip(&logged.frequency_hz) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in plain.dynamic_w.iter().zip(&logged.dynamic_w) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in plain.static_w.iter().zip(&logged.static_w) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(plain.stalled_samples, logged.stalled_samples);
    // The log mirrors the stalled count exactly, one event per stall.
    assert_eq!(log.len(), logged.stalled_samples);
    assert!(log.events().iter().all(|e| e.stage == "ring"));
}
