//! Acceptance suite for the characterization service (DESIGN.md §14):
//! typed jobs over the exploration engines, streaming Monte Carlo
//! delivery in fixed chunks, interrupt/resume by seed range reproducing
//! the §4 pins bit-identically at any pool size, and FIFO queue
//! semantics under a tripped budget.
//!
//! The telemetry registry is process-global, so every test serializes
//! through [`suite_lock`].

use gnrlab::explore::devices::{DeviceLibrary, Fidelity};
use gnrlab::explore::monte_carlo::{McRunOutcome, MonteCarloResult, MC_CHECKPOINT_CHUNK};
use gnrlab::explore::service::{service_with_limits, CharacterizationService, JobRequest};
use gnrlab::num::budget::{Budget, CancelToken, ExecLimits};
use gnrlab::num::fault;
use gnrlab::num::par::ExecCtx;
use gnrlab::num::telemetry;
use gnrlab::num::NumError;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

const MC_SEED: u64 = 20080608;
const MC_SAMPLES: usize = 2000;

fn suite_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn checkpoint_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gnr-service-jobs-{}-{name}.json",
        std::process::id()
    ))
}

fn assert_pins(result: &MonteCarloResult, what: &str) {
    assert_eq!(result.frequency_hz.len(), 1470, "{what}: functional pin");
    assert_eq!(result.stalled_samples, 530, "{what}: stalled pin");
    assert!(
        (result.functional_yield() - 0.735).abs() < 1e-12,
        "{what}: yield pin"
    );
}

fn assert_bit_identical(a: &MonteCarloResult, b: &MonteCarloResult, what: &str) {
    assert_eq!(a.frequency_hz.len(), b.frequency_hz.len(), "{what}: count");
    assert_eq!(a.stalled_samples, b.stalled_samples, "{what}: stalls");
    for (x, y) in a.frequency_hz.iter().zip(&b.frequency_hz) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: frequency");
    }
    for (x, y) in a.dynamic_w.iter().zip(&b.dynamic_w) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: dynamic power");
    }
    for (x, y) in a.static_w.iter().zip(&b.static_w) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: static power");
    }
}

/// One recorded streaming run: `(start, len, restored)` per chunk.
type ChunkLog = Arc<Mutex<Vec<(usize, usize, bool)>>>;

fn record(chunks: &ChunkLog) -> impl FnMut(&gnrlab::explore::monte_carlo::McChunk) + '_ {
    let chunks = Arc::clone(chunks);
    move |c| {
        chunks
            .lock()
            .expect("sink lock")
            .push((c.start, c.totals.len(), c.restored));
    }
}

/// The headline acceptance test, per pool size: a streaming sweep job is
/// cancelled from its own sink after three chunks, checkpoints, and the
/// SAME service (fresh limits, warm universe memo) resumes it by seed
/// range — the restored prefix arrives first as one chunk, the computed
/// chunks land on fixed boundaries, and the merged population carries
/// the §4 pins bit-identically to the uninterrupted baseline.
#[test]
fn cancelled_streaming_sweep_resumes_bit_identically_on_serial_and_parallel_pools() {
    let _g = suite_lock();
    fault::disarm();
    // One table store shared by both pool sizes: the device tables are
    // bit-deterministic, so the 4-thread service may replay the tables
    // the 1-thread service built.
    let store = Arc::new(gnrlab::device::TableStore::in_memory());
    let mut baseline: Option<McRunOutcome> = None;
    for threads in [1usize, 4] {
        let lib = DeviceLibrary::with_store(Fidelity::Fast, Arc::clone(&store));
        let mut service =
            CharacterizationService::with_library(ExecCtx::with_threads(threads), lib);

        // Uninterrupted baseline (also warms the universe memo).
        telemetry::reset();
        telemetry::arm();
        let full = service
            .submit(JobRequest::mc_sweep(0.4, 15, MC_SAMPLES, MC_SEED))
            .expect("baseline sweep");
        telemetry::disarm();
        assert!(
            full.telemetry.counter("mc.samples").is_some(),
            "responses embed the job's telemetry"
        );
        let full = full.mc().expect("sweep payload").clone();
        assert!(full.is_complete());
        assert_pins(&full.result, &format!("{threads}-thread baseline"));
        if let Some(first) = &baseline {
            assert_bit_identical(
                &first.result,
                &full.result,
                &format!("{threads}-thread vs 1-thread baseline"),
            );
        } else {
            baseline = Some(full.clone());
        }

        // A streaming Characterize request falls through to submit() and
        // emits nothing; the memoized universe is returned by pointer.
        let chunks = Arc::new(Mutex::new(Vec::new()));
        let a = service
            .submit_streaming(JobRequest::characterize(0.4, 15), &mut record(&chunks))
            .expect("characterize");
        let b = service
            .submit(JobRequest::characterize(0.4, 15))
            .expect("characterize again");
        assert!(chunks.lock().expect("sink lock").is_empty());
        assert!(
            std::ptr::eq(
                a.universe().expect("universe payload"),
                b.universe().expect("universe payload")
            ),
            "repeated characterization must be served from the memo"
        );

        // Interrupt: the sink cancels its own job after three chunks.
        let path = checkpoint_path(&format!("resume-{threads}"));
        let _ = std::fs::remove_file(&path);
        let token = CancelToken::new();
        service.set_limits(ExecLimits::none().with_cancel(token.clone()));
        let request = JobRequest::mc_sweep(0.4, 15, MC_SAMPLES, MC_SEED).with_checkpoint(&path);
        chunks.lock().expect("sink lock").clear();
        let partial = {
            let mut sink = record(&chunks);
            let mut seen = 0usize;
            service
                .submit_streaming(request.clone(), &mut |c| {
                    sink(c);
                    seen += 1;
                    if seen == 3 {
                        token.cancel();
                    }
                })
                .expect("interrupted sweep still returns partial statistics")
        };
        let partial = partial.mc().expect("sweep payload");
        assert!(!partial.is_complete());
        assert_eq!(partial.completed_samples, 3 * MC_CHECKPOINT_CHUNK);
        assert!(
            matches!(partial.interrupted, Some(NumError::Cancelled { .. })),
            "got {:?}",
            partial.interrupted
        );
        assert!(path.exists(), "interrupted sweep must leave a checkpoint");
        assert_eq!(
            *chunks.lock().expect("sink lock"),
            (0..3)
                .map(|i| (i * MC_CHECKPOINT_CHUNK, MC_CHECKPOINT_CHUNK, false))
                .collect::<Vec<_>>(),
            "computed chunks land on fixed boundaries"
        );

        // Resume on the same service: fresh limits, warm memo. The
        // restored prefix must arrive first as a single chunk, then the
        // remaining fixed-size chunks (short tail last).
        service.set_limits(ExecLimits::none().with_budget(Budget::unlimited()));
        chunks.lock().expect("sink lock").clear();
        let resumed = service
            .submit_streaming(request, &mut record(&chunks))
            .expect("resume completes");
        let resumed = resumed.mc().expect("sweep payload");
        assert!(resumed.is_complete());
        assert_eq!(resumed.completed_samples, MC_SAMPLES);
        assert!(!path.exists(), "finished sweep must remove its checkpoint");
        let seen = chunks.lock().expect("sink lock").clone();
        assert_eq!(
            seen[0],
            (0, 3 * MC_CHECKPOINT_CHUNK, true),
            "restored prefix first"
        );
        let mut expected_start = 3 * MC_CHECKPOINT_CHUNK;
        for &(start, len, restored) in &seen[1..] {
            assert!(!restored);
            assert_eq!(start, expected_start, "chunks arrive in sample order");
            assert_eq!(len, MC_CHECKPOINT_CHUNK.min(MC_SAMPLES - start));
            expected_start += len;
        }
        assert_eq!(
            expected_start, MC_SAMPLES,
            "every sample delivered exactly once"
        );
        assert_bit_identical(
            &baseline.as_ref().expect("baseline").result,
            &resumed.result,
            &format!("{threads}-thread resume"),
        );
        assert_pins(&resumed.result, &format!("{threads}-thread resume"));
    }
}

/// NEGF table jobs flow through the content-addressed store: the first
/// submission builds (one store miss), the repeat is served warm with the
/// identical bytes, and the cached table records which solver path built
/// it — the two RGF paths never alias each other's entries.
#[test]
fn negf_table_jobs_record_solver_path_and_hit_the_store() {
    use gnrlab::device::table::TableGrid;
    use gnrlab::device::NegfTableOptions;
    let _g = suite_lock();
    fault::disarm();
    let lib = DeviceLibrary::new(Fidelity::Fast);
    let mut service = CharacterizationService::with_library(ExecCtx::serial(), lib);
    let grid = TableGrid {
        vgs: (0.0, 0.5),
        vds: (0.05, 0.35),
        points: 3,
    };
    let request = || JobRequest::negf_table(7, grid, 1, NegfTableOptions::mode_space());

    // The embedded telemetry accumulates from `arm`, so re-arming between
    // submissions isolates each job's store traffic.
    telemetry::reset();
    telemetry::arm();
    let first = service.submit(request()).expect("cold build");
    telemetry::reset();
    let second = service.submit(request()).expect("warm hit");
    telemetry::reset();
    let real = service
        .submit(JobRequest::negf_table(
            7,
            grid,
            1,
            NegfTableOptions::accelerated(),
        ))
        .expect("real-space build");
    telemetry::disarm();

    let t1 = first.table().expect("table payload");
    let t2 = second.table().expect("table payload");
    assert_eq!(t1.solver_path(), "negf-mode-space", "provenance recorded");
    assert_eq!(
        t1.to_json().expect("serializes"),
        t2.to_json().expect("serializes"),
        "warm hit must serve the cold build's bytes"
    );
    assert_eq!(
        first.telemetry.counter("table_cache.misses"),
        Some(1),
        "cold submission builds exactly once"
    );
    assert!(
        second.telemetry.counter("table_cache.hits") >= Some(1),
        "repeat submission must be served from the store"
    );
    assert_eq!(
        second.telemetry.counter("table_cache.misses").unwrap_or(0),
        0,
        "repeat submission must not rebuild"
    );
    // The mode-space entry must not be served for the real-space request.
    let t3 = real.table().expect("table payload");
    assert_eq!(t3.solver_path(), "negf-real-space");
    assert_eq!(
        real.telemetry.counter("table_cache.misses"),
        Some(1),
        "a different solver path is a different key"
    );
}

/// A tripped budget drains the queue FIFO as typed errors without
/// touching the solvers; fresh limits restore admission.
#[test]
fn tripped_budget_drains_the_queue_as_typed_errors() {
    let _g = suite_lock();
    fault::disarm();
    let mut service = service_with_limits(
        Fidelity::Fast,
        ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(0)),
    );
    service.enqueue(JobRequest::characterize(0.4, 15));
    service.enqueue(JobRequest::mc_sweep(0.4, 15, MC_SAMPLES, MC_SEED));
    service.enqueue(JobRequest::edp_contour(vec![0.4], vec![0.0], 15));
    assert_eq!(service.queued(), 3);
    let results = service.run_queued();
    assert_eq!(results.len(), 3, "one result per admitted job, in order");
    assert_eq!(service.queued(), 0, "the queue drains even on errors");
    for (i, r) in results.iter().enumerate() {
        assert!(
            r.as_ref().is_err_and(|e| e.to_string().contains("budget")),
            "job {i}: expected a typed budget stop, got {r:?}"
        );
    }
}
