//! Cross-validation of the two device paths: the rigorous NEGF⇄Poisson
//! self-consistent solver against the semi-analytic SBFET surrogate, on
//! the same (reduced) geometry. The surrogate feeds every circuit-level
//! experiment, so its qualitative agreement with the full solver is the
//! load-bearing assumption of the reproduction (DESIGN.md §2).
//!
//! Every NEGF-side comparison is parameterized over the energy-grid
//! variant — the legacy dense uniform grid and the adaptive
//! coarse-plus-refinement grid (DESIGN.md §11) — instead of a hard-coded
//! point count, so the surrogate agreement is pinned for whichever grid a
//! caller picks.

use gnrlab::device::table::TableGrid;
use gnrlab::device::{
    ballistic_negf_table, DeviceConfig, NegfTableOptions, Polarity, SbfetModel, ScfOptions,
    ScfSolver,
};
use gnrlab::num::par::ExecCtx;

fn small_device() -> DeviceConfig {
    let mut cfg = DeviceConfig::test_small(9).expect("valid index");
    cfg.channel_cells = 14;
    cfg
}

/// The energy-grid variants every NEGF comparison runs under.
fn grid_variants() -> [(&'static str, ScfOptions); 2] {
    [
        ("uniform", ScfOptions::fast()),
        ("adaptive", ScfOptions::fast_adaptive()),
    ]
}

fn scf_solvers(cfg: &DeviceConfig) -> [(&'static str, ScfSolver); 2] {
    grid_variants().map(|(label, opts)| (label, ScfSolver::new(cfg, opts)))
}

#[test]
fn gate_modulation_direction_agrees() {
    let cfg = small_device();
    let surrogate = SbfetModel::new(&cfg).unwrap();
    let vd = 0.3;
    let sur_off = surrogate.drain_current(vd / 2.0, vd).unwrap();
    let sur_on = surrogate.drain_current(0.55, vd).unwrap();
    assert!(sur_on > sur_off, "surrogate gate control");
    for (grid, scf) in scf_solvers(&cfg) {
        let negf_off = scf.solve(&ExecCtx::strict(), vd / 2.0, vd).unwrap().0;
        let negf_on = scf.solve(&ExecCtx::strict(), 0.55, vd).unwrap().0;
        assert!(
            negf_on.current_a > negf_off.current_a,
            "negf gate control broke on the {grid} grid"
        );
    }
}

#[test]
fn on_current_magnitudes_within_order() {
    let cfg = small_device();
    let surrogate = SbfetModel::new(&cfg).unwrap();
    let (vg, vd) = (0.55, 0.3);
    let sur = surrogate.drain_current(vg, vd).unwrap();
    for (grid, scf) in scf_solvers(&cfg) {
        let negf = scf.solve(&ExecCtx::strict(), vg, vd).unwrap().0.current_a;
        let ratio = sur / negf;
        assert!(
            (0.1..10.0).contains(&ratio),
            "on-current surrogate/negf = {ratio:.2} on the {grid} grid \
             (negf {negf:.3e}, surrogate {sur:.3e})"
        );
    }
}

#[test]
fn barrier_profiles_agree_qualitatively() {
    // Both paths must show the SBFET shape: high pinned barriers at the
    // contacts, gate-depressed channel in between.
    let cfg = small_device();
    let surrogate = SbfetModel::new(&cfg).unwrap();
    let (vg, vd) = (0.5, 0.2);
    let sur_profile = surrogate.potential_profile(vg, vd);
    let mid_sur = sur_profile[sur_profile.len() / 2];
    let edge_sur = sur_profile[0].max(*sur_profile.last().unwrap());
    assert!(
        edge_sur > mid_sur + 0.1,
        "surrogate barriers: edge {edge_sur:.3} vs mid {mid_sur:.3}"
    );
    for (grid, scf) in scf_solvers(&cfg) {
        let negf = scf.solve(&ExecCtx::strict(), vg, vd).unwrap().0;
        let negf_profile = &negf.layer_potential_ev;
        let mid_negf = negf_profile[negf_profile.len() / 2];
        let edge_negf = negf_profile[0].max(*negf_profile.last().unwrap());
        assert!(
            edge_negf > mid_negf + 0.1,
            "negf barriers on the {grid} grid: edge {edge_negf:.3} vs mid {mid_negf:.3}"
        );
        // Mid-channel potentials agree within 0.15 eV (same electrostatics).
        assert!(
            (mid_negf - mid_sur).abs() < 0.15,
            "mid-channel on the {grid} grid: negf {mid_negf:.3} vs surrogate {mid_sur:.3}"
        );
    }
}

/// The third solver path: a ballistic table built through the reduced
/// mode-space transform must conform to the real-space build within the
/// 1e-6 A acceptance bound at every bias node, with both tables carrying
/// their provenance (DESIGN.md §15).
#[test]
fn mode_space_table_conforms_to_real_space_within_1e6_a() {
    let mut cfg = DeviceConfig::test_small(9).expect("valid index");
    cfg.channel_cells = 6;
    let model = SbfetModel::new(&cfg).unwrap();
    let grid = TableGrid {
        vgs: (0.0, 0.6),
        vds: (0.05, 0.35),
        points: 3,
    };
    let ctx = ExecCtx::serial();
    let real = ballistic_negf_table(
        &ctx,
        &model,
        Polarity::NType,
        grid,
        1,
        &NegfTableOptions::accelerated(),
    )
    .unwrap();
    let mode = ballistic_negf_table(
        &ctx,
        &model,
        Polarity::NType,
        grid,
        1,
        &NegfTableOptions::mode_space(),
    )
    .unwrap();
    assert_eq!(real.solver_path(), "negf-real-space");
    assert_eq!(mode.solver_path(), "negf-mode-space");
    let (vgs, vds): (Vec<f64>, Vec<f64>) = {
        let (a, b) = real.bias_nodes();
        (a.collect(), b.collect())
    };
    for &vg in &vgs {
        for &vd in &vds {
            let (ir, im) = (real.current(vg, vd), mode.current(vg, vd));
            assert!(
                (ir - im).abs() < 1e-6,
                "I({vg}, {vd}): real-space {ir:.6e} vs mode-space {im:.6e}"
            );
        }
    }
}

#[test]
fn charge_sign_agrees_in_accumulation() {
    let cfg = small_device();
    let surrogate = SbfetModel::new(&cfg).unwrap();
    // Strong n-accumulation: both paths report net negative channel charge.
    let sur = surrogate.channel_charge(0.6, 0.1).unwrap();
    assert!(sur < 0.0, "surrogate charge {sur:.3e}");
    for (grid, scf) in scf_solvers(&cfg) {
        let negf = scf.solve(&ExecCtx::strict(), 0.6, 0.1).unwrap().0;
        assert!(
            negf.charge_c < 0.0,
            "negf charge on the {grid} grid: {:.3e}",
            negf.charge_c
        );
    }
}
