//! Property-based tests of the numerical substrate.

use gnr_num::quad::{gauss_legendre_16, trapezoid};
use gnr_num::{c64, CMatrix, CsrMatrix, Grid1, LinearTable, Matrix, TripletBuilder};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Complex multiplication is commutative and associative, and
    /// conjugation distributes over products.
    #[test]
    fn complex_field_properties(
        ar in finite_f64(-1e3..1e3), ai in finite_f64(-1e3..1e3),
        br in finite_f64(-1e3..1e3), bi in finite_f64(-1e3..1e3),
        cr in finite_f64(-1e3..1e3), ci in finite_f64(-1e3..1e3),
    ) {
        let (a, b, c) = (c64(ar, ai), c64(br, bi), c64(cr, ci));
        prop_assert!((a * b - b * a).norm() < 1e-6);
        prop_assert!(((a * b) * c - a * (b * c)).norm() < 1e-3 * (1.0 + (a*b*c).norm()));
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-6);
        // |ab| = |a||b| within rounding.
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-6 * (1.0 + a.norm() * b.norm()));
    }

    /// LU solve inverts matvec for diagonally dominant real systems.
    #[test]
    fn lu_solve_roundtrip(
        vals in prop::collection::vec(finite_f64(-1.0..1.0), 16),
        rhs in prop::collection::vec(finite_f64(-10.0..10.0), 4),
    ) {
        let a = Matrix::from_fn(4, 4, |i, j| {
            let v = vals[i * 4 + j];
            if i == j { v + 8.0 } else { v }
        });
        let x = a.solve(&rhs).expect("diagonally dominant");
        let back = a.matvec(&x);
        for (bi, ri) in back.iter().zip(&rhs) {
            prop_assert!((bi - ri).abs() < 1e-8, "{bi} vs {ri}");
        }
    }

    /// Complex LU inverse satisfies A * A^-1 = I for shifted random matrices.
    #[test]
    fn cmatrix_inverse_roundtrip(
        re in prop::collection::vec(finite_f64(-1.0..1.0), 9),
        im in prop::collection::vec(finite_f64(-1.0..1.0), 9),
    ) {
        let a = CMatrix::from_fn(3, 3, |i, j| {
            let z = c64(re[i * 3 + j], im[i * 3 + j]);
            if i == j { z + c64(6.0, 0.0) } else { z }
        });
        let inv = a.inverse().expect("dominant");
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { c64(1.0, 0.0) } else { c64(0.0, 0.0) };
                prop_assert!((id.get(i, j) - expect).norm() < 1e-9);
            }
        }
    }

    /// Hermitian eigenvalues are real-sorted and reconstruct the trace.
    #[test]
    fn herm_eigen_trace_preserved(
        re in prop::collection::vec(finite_f64(-2.0..2.0), 16),
        im in prop::collection::vec(finite_f64(-2.0..2.0), 16),
    ) {
        // Build H = A + A^dagger: Hermitian by construction.
        let a = CMatrix::from_fn(4, 4, |i, j| c64(re[i * 4 + j], im[i * 4 + j]));
        let h = &a + &a.adjoint();
        let (evals, _) = h.herm_eigen().expect("hermitian");
        prop_assert!(evals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        let trace: f64 = evals.iter().sum();
        prop_assert!((trace - h.trace().re).abs() < 1e-8 * (1.0 + trace.abs()));
    }

    /// Sparse matvec agrees with an equivalent dense matvec.
    #[test]
    fn sparse_matches_dense(
        entries in prop::collection::vec((0usize..6, 0usize..6, finite_f64(-5.0..5.0)), 1..20),
        x in prop::collection::vec(finite_f64(-3.0..3.0), 6),
    ) {
        let mut tb = TripletBuilder::new(6, 6);
        let mut dense = Matrix::zeros(6, 6);
        for &(r, c, v) in &entries {
            tb.push(r, c, v);
            dense.add_to(r, c, v);
        }
        let sparse: CsrMatrix = tb.build();
        let ys = sparse.matvec(&x);
        let yd = dense.matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Linear interpolation reproduces its nodes exactly and stays within
    /// the node hull between them.
    #[test]
    fn interp_reproduces_nodes(
        values in prop::collection::vec(finite_f64(-10.0..10.0), 5),
        t in finite_f64(0.0..1.0),
    ) {
        let grid = Grid1::new(0.0, 1.0, 5).expect("valid");
        let table = LinearTable::new(grid, values.clone()).expect("sized");
        for (i, &v) in values.iter().enumerate() {
            prop_assert!((table.eval(grid.point(i)) - v).abs() < 1e-12);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let y = table.eval(t);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    /// Quadrature rules integrate affine functions exactly.
    #[test]
    fn quadrature_exact_for_affine(
        a in finite_f64(-5.0..5.0),
        b in finite_f64(-5.0..5.0),
        lo in finite_f64(-3.0..0.0),
        hi in finite_f64(0.1..3.0),
    ) {
        let f = |x: f64| a * x + b;
        let exact = a * (hi * hi - lo * lo) / 2.0 + b * (hi - lo);
        prop_assert!((trapezoid(f, lo, hi, 7) - exact).abs() < 1e-9 * (1.0 + exact.abs()));
        prop_assert!((gauss_legendre_16(f, lo, hi) - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// The Fermi function is bounded, monotone, and complementary:
    /// f(E, mu) + f(2mu - E, mu) = 1.
    #[test]
    fn fermi_bounds_and_symmetry(
        e in finite_f64(-2.0..2.0),
        mu in finite_f64(-1.0..1.0),
    ) {
        use gnr_num::fermi::fermi;
        let f = fermi(e, mu, 300.0);
        prop_assert!((0.0..=1.0).contains(&f));
        let g = fermi(2.0 * mu - e, mu, 300.0);
        prop_assert!((f + g - 1.0).abs() < 1e-12);
    }
}
