//! Property-based tests of the numerical substrate, driven by the
//! in-house seeded RNG (deterministic across runs — no external crates).

use gnr_num::quad::{gauss_legendre_16, trapezoid};
use gnr_num::rng::Rng;
use gnr_num::{c64, CMatrix, CsrMatrix, Grid1, LinearTable, Matrix, TripletBuilder};

/// Complex multiplication is commutative and associative, and
/// conjugation distributes over products.
#[test]
fn complex_field_properties() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d01);
    for _ in 0..64 {
        let mut z = || c64(rng.uniform_in(-1e3, 1e3), rng.uniform_in(-1e3, 1e3));
        let (a, b, c) = (z(), z(), z());
        assert!((a * b - b * a).norm() < 1e-6);
        assert!(((a * b) * c - a * (b * c)).norm() < 1e-3 * (1.0 + (a * b * c).norm()));
        assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-6);
        // |ab| = |a||b| within rounding.
        assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-6 * (1.0 + a.norm() * b.norm()));
    }
}

/// LU solve inverts matvec for diagonally dominant real systems.
#[test]
fn lu_solve_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d02);
    for _ in 0..64 {
        let vals: Vec<f64> = (0..16).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let rhs: Vec<f64> = (0..4).map(|_| rng.uniform_in(-10.0, 10.0)).collect();
        let a = Matrix::from_fn(4, 4, |i, j| {
            let v = vals[i * 4 + j];
            if i == j {
                v + 8.0
            } else {
                v
            }
        });
        let x = a.solve(&rhs).expect("diagonally dominant");
        let back = a.matvec(&x);
        for (bi, ri) in back.iter().zip(&rhs) {
            assert!((bi - ri).abs() < 1e-8, "{bi} vs {ri}");
        }
    }
}

/// Complex LU inverse satisfies A * A^-1 = I for shifted random matrices.
#[test]
fn cmatrix_inverse_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d03);
    for _ in 0..64 {
        let re: Vec<f64> = (0..9).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let im: Vec<f64> = (0..9).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let a = CMatrix::from_fn(3, 3, |i, j| {
            let z = c64(re[i * 3 + j], im[i * 3 + j]);
            if i == j {
                z + c64(6.0, 0.0)
            } else {
                z
            }
        });
        let inv = a.inverse().expect("dominant");
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { c64(1.0, 0.0) } else { c64(0.0, 0.0) };
                assert!((id.get(i, j) - expect).norm() < 1e-9);
            }
        }
    }
}

/// Hermitian eigenvalues are real-sorted and reconstruct the trace.
#[test]
fn herm_eigen_trace_preserved() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d04);
    for _ in 0..64 {
        let re: Vec<f64> = (0..16).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let im: Vec<f64> = (0..16).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        // Build H = A + A^dagger: Hermitian by construction.
        let a = CMatrix::from_fn(4, 4, |i, j| c64(re[i * 4 + j], im[i * 4 + j]));
        let h = &a + &a.adjoint();
        let (evals, _) = h.herm_eigen().expect("hermitian");
        assert!(evals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        let trace: f64 = evals.iter().sum();
        assert!((trace - h.trace().re).abs() < 1e-8 * (1.0 + trace.abs()));
    }
}

/// Sparse matvec agrees with an equivalent dense matvec.
#[test]
fn sparse_matches_dense() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d05);
    for _ in 0..64 {
        let n_entries = 1 + rng.below(19);
        let mut tb = TripletBuilder::new(6, 6);
        let mut dense = Matrix::zeros(6, 6);
        for _ in 0..n_entries {
            let (r, c) = (rng.below(6), rng.below(6));
            let v = rng.uniform_in(-5.0, 5.0);
            tb.push(r, c, v);
            dense.add_to(r, c, v);
        }
        let x: Vec<f64> = (0..6).map(|_| rng.uniform_in(-3.0, 3.0)).collect();
        let sparse: CsrMatrix = tb.build();
        let ys = sparse.matvec(&x);
        let yd = dense.matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

/// Linear interpolation reproduces its nodes exactly and stays within
/// the node hull between them.
#[test]
fn interp_reproduces_nodes() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d06);
    for _ in 0..64 {
        let values: Vec<f64> = (0..5).map(|_| rng.uniform_in(-10.0, 10.0)).collect();
        let t = rng.uniform();
        let grid = Grid1::new(0.0, 1.0, 5).expect("valid");
        let table = LinearTable::new(grid, values.clone()).expect("sized");
        for (i, &v) in values.iter().enumerate() {
            assert!((table.eval(grid.point(i)) - v).abs() < 1e-12);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let y = table.eval(t);
        assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }
}

/// Quadrature rules integrate affine functions exactly.
#[test]
fn quadrature_exact_for_affine() {
    let mut rng = Rng::seed_from_u64(0x4e55_4d07);
    for _ in 0..64 {
        let a = rng.uniform_in(-5.0, 5.0);
        let b = rng.uniform_in(-5.0, 5.0);
        let lo = rng.uniform_in(-3.0, 0.0);
        let hi = rng.uniform_in(0.1, 3.0);
        let f = |x: f64| a * x + b;
        let exact = a * (hi * hi - lo * lo) / 2.0 + b * (hi - lo);
        assert!((trapezoid(f, lo, hi, 7) - exact).abs() < 1e-9 * (1.0 + exact.abs()));
        assert!((gauss_legendre_16(f, lo, hi) - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }
}

/// The Fermi function is bounded, monotone, and complementary:
/// f(E, mu) + f(2mu - E, mu) = 1.
#[test]
fn fermi_bounds_and_symmetry() {
    use gnr_num::fermi::fermi;
    let mut rng = Rng::seed_from_u64(0x4e55_4d08);
    for _ in 0..64 {
        let e = rng.uniform_in(-2.0, 2.0);
        let mu = rng.uniform_in(-1.0, 1.0);
        let f = fermi(e, mu, 300.0);
        assert!((0.0..=1.0).contains(&f));
        let g = fermi(2.0 * mu - e, mu, 300.0);
        assert!((f + g - 1.0).abs() < 1e-12);
    }
}
