//! Reproducibility and distribution tests for `gnr_num::rng`.
//!
//! The golden values pin the exact output stream of the xoshiro256++
//! generator for fixed seeds: any change to the seeding or scrambler is a
//! breaking change to every recorded Monte Carlo artifact and must show up
//! here. The expected constants were computed by an independent (Python)
//! implementation of the reference algorithm.

use gnr_num::rng::Rng;

/// Golden first-10 raw outputs for seed 42 (independently computed).
#[test]
fn golden_u64_stream_seed_42() {
    let expected: [u64; 10] = [
        15021278609987233951,
        5881210131331364753,
        18149643915985481100,
        12933668939759105464,
        14637574242682825331,
        10848501901068131965,
        2312344417745909078,
        11162538943635311430,
        3831705504650218695,
        17217215411128672468,
    ];
    let mut rng = Rng::seed_from_u64(42);
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "output {i} diverged");
    }
}

/// Golden first outputs for seed 0 — the all-zero seed must still produce
/// a healthy stream (SplitMix64 expansion guarantees nonzero state).
#[test]
fn golden_u64_stream_seed_0() {
    let expected: [u64; 4] = [
        5987356902031041503,
        7051070477665621255,
        6633766593972829180,
        211316841551650330,
    ];
    let mut rng = Rng::seed_from_u64(0);
    for &want in &expected {
        assert_eq!(rng.next_u64(), want);
    }
}

/// Golden uniform doubles for seed 42 (bit-exact).
#[test]
fn golden_uniform_stream_seed_42() {
    let expected = [
        0.8143051451229099,
        0.3188210400616611,
        0.9838941681774888,
        0.7011355981347556,
        0.793504489691729,
    ];
    let mut rng = Rng::seed_from_u64(42);
    for &want in &expected {
        assert_eq!(rng.uniform().to_bits(), f64::to_bits(want));
    }
}

/// Two generators with the same seed produce identical streams across all
/// sampling methods; different seeds diverge immediately.
#[test]
fn determinism_across_instances() {
    let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
    let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        assert_eq!(a.normal(1.0, 2.0).to_bits(), b.normal(1.0, 2.0).to_bits());
        assert_eq!(a.below(17), b.below(17));
    }
    let mut c = Rng::seed_from_u64(0xDEAD_BEF0);
    assert_ne!(Rng::seed_from_u64(0xDEAD_BEEF).next_u64(), c.next_u64());
}

/// Uniform moments: mean 1/2, variance 1/12, full-range coverage.
#[test]
fn uniform_moments() {
    let mut rng = Rng::seed_from_u64(99);
    let n = 200_000;
    let (mut sum, mut sumsq) = (0.0, 0.0);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for _ in 0..n {
        let u = rng.uniform();
        assert!((0.0..1.0).contains(&u));
        sum += u;
        sumsq += u * u;
        lo = lo.min(u);
        hi = hi.max(u);
    }
    let mean = sum / n as f64;
    let var = sumsq / n as f64 - mean * mean;
    assert!((mean - 0.5).abs() < 2e-3, "mean {mean}");
    assert!((var - 1.0 / 12.0).abs() < 2e-3, "var {var}");
    assert!(lo < 1e-4 && hi > 1.0 - 1e-4, "range [{lo}, {hi}]");
}

/// Gaussian moments: mean, variance, and near-symmetric tails at the
/// paper's ±1σ discretization points (15.87% per tail).
#[test]
fn gaussian_moments_and_tails() {
    let mut rng = Rng::seed_from_u64(7);
    let n = 200_000;
    let (mut sum, mut sumsq) = (0.0, 0.0);
    let (mut below, mut above) = (0usize, 0usize);
    for _ in 0..n {
        let z = rng.normal(0.0, 1.0);
        sum += z;
        sumsq += z * z;
        if z < -1.0 {
            below += 1;
        }
        if z > 1.0 {
            above += 1;
        }
    }
    let mean = sum / n as f64;
    let var = sumsq / n as f64 - mean * mean;
    assert!(mean.abs() < 1e-2, "mean {mean}");
    assert!((var - 1.0).abs() < 2e-2, "var {var}");
    let (f_lo, f_hi) = (below as f64 / n as f64, above as f64 / n as f64);
    assert!((f_lo - 0.1587).abs() < 5e-3, "lower tail {f_lo}");
    assert!((f_hi - 0.1587).abs() < 5e-3, "upper tail {f_hi}");

    // Scaled Gaussian: mean/sd pass through.
    let mut rng = Rng::seed_from_u64(8);
    let (mut sum, mut sumsq) = (0.0, 0.0);
    for _ in 0..n {
        let z = rng.normal(3.0, 0.5);
        sum += z;
        sumsq += z * z;
    }
    let mean = sum / n as f64;
    let var = sumsq / n as f64 - mean * mean;
    assert!((mean - 3.0).abs() < 5e-3, "mean {mean}");
    assert!((var - 0.25).abs() < 5e-3, "var {var}");
}

/// `below(n)` is unbiased: chi-square over 8 buckets stays far below the
/// rejection threshold for a healthy generator.
#[test]
fn below_is_uniform_chi_square() {
    let mut rng = Rng::seed_from_u64(31);
    let n = 80_000usize;
    let k = 8usize;
    let mut counts = vec![0usize; k];
    for _ in 0..n {
        counts[rng.below(k)] += 1;
    }
    let expect = n as f64 / k as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect).powi(2) / expect)
        .sum();
    // 7 degrees of freedom; 0.999 quantile is ~24.3.
    assert!(chi2 < 24.3, "chi2 = {chi2}, counts {counts:?}");
}

/// Shuffle is uniform over permutations of a 3-element slice (chi-square
/// over the 6 outcomes).
#[test]
fn shuffle_uniform_over_permutations() {
    let mut rng = Rng::seed_from_u64(5);
    let n = 60_000;
    let mut counts = std::collections::HashMap::new();
    for _ in 0..n {
        let mut xs = [0u8, 1, 2];
        rng.shuffle(&mut xs);
        *counts.entry(xs).or_insert(0usize) += 1;
    }
    assert_eq!(counts.len(), 6, "all 6 permutations reachable");
    let expect = n as f64 / 6.0;
    let chi2: f64 = counts
        .values()
        .map(|&c| (c as f64 - expect).powi(2) / expect)
        .sum();
    // 5 degrees of freedom; 0.999 quantile is ~20.5.
    assert!(chi2 < 20.5, "chi2 = {chi2}");
}
