//! Crash-consistent checkpoint files for long-running drivers
//! (Monte Carlo sweeps, stage-universe characterization).
//!
//! # Format: `gnr-checkpoint/v1`
//!
//! A checkpoint is a single JSON document (via [`crate::json`]):
//!
//! ```text
//! { "format":  "gnr-checkpoint/v1",
//!   "kind":    "monte-carlo",            // driver-chosen record kind
//!   "key":     "a1b2c3d4e5f60718",       // FNV-64 over inputs + options
//!   "seed":    20080608,                 // RNG seed of the run
//!   "total":   2000,                     // work items in the full run
//!   "records": [["3fe0000000000000", …], …],
//!   "checksum":"0123456789abcdef" }      // FNV-64 over the records
//! ```
//!
//! `records[i]` is the completed result for work item `i`; completion is
//! always a **prefix** (items `0..records.len()`), which is what lets a
//! resumed run skip exactly the finished prefix and replay the pre-draw
//! RNG pattern for the rest. Every `f64` is stored as the hex of its IEEE
//! bit pattern — *not* a JSON number — because the JSON layer serializes
//! non-finite values as `null` and record payloads legitimately contain
//! NaN (dead characterization cells, stalled-ring accumulators), and
//! because bit-pattern round-tripping is what the resume bit-identity
//! contract is stated in.
//!
//! # Crash consistency
//!
//! [`save`] writes to a sibling `*.tmp` file, syncs it, then `rename`s it
//! over the target: a crash mid-write leaves either the previous complete
//! checkpoint or a stray temp file, never a torn target. [`load`] treats
//! *anything* unexpected — unreadable file, bad JSON, wrong schema/kind,
//! key/seed/total mismatch, bad checksum, or an injected
//! `checkpoint.corrupt` fault — as a discard: the file is deleted and the
//! caller restarts from scratch. A missing file is simply a fresh start.
//!
//! Telemetry: `checkpoint.writes`, `checkpoint.resumes`,
//! `checkpoint.discarded`.

use crate::error::{NumError, NumResult};
use crate::json::Json;
use crate::{fault, telemetry};
use std::io::Write;
use std::path::Path;

/// Schema tag embedded in every checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = "gnr-checkpoint/v1";

/// Fault site probed on every load; arming it makes a present checkpoint
/// read as corrupt (detected, discarded, clean restart).
pub const FAULT_SITE: &str = "checkpoint.corrupt";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over 8-byte words, used both for checkpoint
/// checksums and for the caller-built identity `key` (inputs + options).
#[derive(Clone, Copy, Debug)]
pub struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher(FNV_OFFSET)
    }
}

impl KeyHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        KeyHasher::default()
    }

    /// Mixes in a `u64`, byte by byte (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes in an `f64` by bit pattern (NaN-safe, `-0.0` ≠ `0.0`).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes in a string (length-prefixed so concatenations differ).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// In-memory checkpoint: identity fields plus the completed-prefix
/// records (row `i` is work item `i`).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Driver-chosen record kind (e.g. `"monte-carlo"`).
    pub kind: String,
    /// FNV-64 identity of the run's inputs and options ([`KeyHasher`]).
    pub key: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Total work items in the full run.
    pub total: usize,
    /// Completed results, one row per finished work item, prefix order.
    pub records: Vec<Vec<f64>>,
}

/// Result of [`load`]: start fresh, resume from a valid prefix, or start
/// fresh after discarding a stale/corrupt file.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadOutcome {
    /// No checkpoint file exists.
    Fresh,
    /// A valid matching checkpoint was found.
    Resume(Checkpoint),
    /// A file existed but was corrupt or belongs to a different run; it
    /// has been deleted. The payload is the human-readable reason.
    Discarded(String),
}

fn records_checksum(records: &[Vec<f64>]) -> u64 {
    let mut h = KeyHasher::new();
    for row in records {
        h.write_u64(row.len() as u64);
        for &v in row {
            h.write_f64(v);
        }
    }
    h.finish()
}

fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex64(s: &str) -> NumResult<u64> {
    u64::from_str_radix(s, 16)
        .map_err(|_| NumError::invalid(format!("checkpoint: bad hex word {s:?}")))
}

impl Checkpoint {
    /// Serializes to the `gnr-checkpoint/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let records = self
            .records
            .iter()
            .map(|row| Json::Arr(row.iter().map(|&v| Json::Str(hex64(v.to_bits()))).collect()))
            .collect();
        Json::Obj(vec![
            ("format".to_string(), Json::from(CHECKPOINT_SCHEMA)),
            ("kind".to_string(), Json::from(self.kind.as_str())),
            ("key".to_string(), Json::Str(hex64(self.key))),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("total".to_string(), Json::Num(self.total as f64)),
            ("records".to_string(), Json::Arr(records)),
            (
                "checksum".to_string(),
                Json::Str(hex64(records_checksum(&self.records))),
            ),
        ])
    }

    /// Parses and validates a `gnr-checkpoint/v1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on schema, field, or checksum
    /// problems; [`load`] maps these to a discard.
    pub fn from_json(doc: &Json) -> NumResult<Self> {
        let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
        if format != CHECKPOINT_SCHEMA {
            return Err(NumError::invalid(format!(
                "checkpoint: unsupported format {format:?}"
            )));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| NumError::invalid("checkpoint: missing kind"))?
            .to_string();
        let key = parse_hex64(
            doc.get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| NumError::invalid("checkpoint: missing key"))?,
        )?;
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .filter(|s| *s >= 0.0 && s.fract() == 0.0)
            .map(|s| s as u64)
            .ok_or_else(|| NumError::invalid("checkpoint: bad seed"))?;
        let total = doc
            .get("total")
            .and_then(Json::as_usize)
            .ok_or_else(|| NumError::invalid("checkpoint: bad total"))?;
        let rows = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| NumError::invalid("checkpoint: missing records"))?;
        let mut records = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| NumError::invalid("checkpoint: record row is not an array"))?;
            let mut out = Vec::with_capacity(cells.len());
            for cell in cells {
                let hex = cell
                    .as_str()
                    .ok_or_else(|| NumError::invalid("checkpoint: record cell is not hex"))?;
                out.push(f64::from_bits(parse_hex64(hex)?));
            }
            records.push(out);
        }
        let checksum = parse_hex64(
            doc.get("checksum")
                .and_then(Json::as_str)
                .ok_or_else(|| NumError::invalid("checkpoint: missing checksum"))?,
        )?;
        if checksum != records_checksum(&records) {
            return Err(NumError::invalid("checkpoint: checksum mismatch"));
        }
        if records.len() > total {
            return Err(NumError::invalid("checkpoint: more records than total"));
        }
        Ok(Checkpoint {
            kind,
            key,
            seed,
            total,
            records,
        })
    }
}

/// Atomically writes `cp` to `path`: temp file in the same directory,
/// sync, rename. Counts `checkpoint.writes`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] wrapping the underlying I/O error.
pub fn save(path: &Path, cp: &Checkpoint) -> NumResult<()> {
    let io_err = |what: &str, e: std::io::Error| {
        NumError::invalid(format!("checkpoint {what} {}: {e}", path.display()))
    };
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        f.write_all(cp.to_json().dump().as_bytes())
            .map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
    telemetry::counter_inc("checkpoint.writes");
    Ok(())
}

/// Loads the checkpoint at `path` for a run identified by
/// `(kind, key, seed, total)`.
///
/// A missing file is [`LoadOutcome::Fresh`]. An unreadable, corrupt
/// (including an armed `checkpoint.corrupt` fault), or mismatched file is
/// deleted and reported as [`LoadOutcome::Discarded`] — the caller then
/// runs from scratch, so a bad checkpoint can never poison a run.
pub fn load(path: &Path, kind: &str, key: u64, seed: u64, total: usize) -> LoadOutcome {
    if !path.exists() {
        return LoadOutcome::Fresh;
    }
    let discard = |reason: String| {
        let _ = std::fs::remove_file(path);
        telemetry::counter_inc("checkpoint.discarded");
        LoadOutcome::Discarded(reason)
    };
    if fault::should_fail(FAULT_SITE) {
        return discard("injected fault: checkpoint read as corrupt".to_string());
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return discard(format!("unreadable: {e}")),
    };
    let cp = match Json::parse(&text).and_then(|doc| Checkpoint::from_json(&doc)) {
        Ok(cp) => cp,
        Err(e) => return discard(e.to_string()),
    };
    if cp.kind != kind || cp.key != key || cp.seed != seed || cp.total != total {
        return discard(format!(
            "identity mismatch: file is ({}, {}, seed {}, total {}), run is ({kind}, {}, seed {seed}, total {total})",
            cp.kind,
            hex64(cp.key),
            cp.seed,
            cp.total,
            hex64(key),
        ));
    }
    telemetry::counter_inc("checkpoint.resumes");
    LoadOutcome::Resume(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::{Mutex as TestMutex, OnceLock};

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "gnr-checkpoint-test-{}-{name}.json",
            std::process::id()
        ));
        p
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            kind: "monte-carlo".to_string(),
            key: 0xdead_beef_cafe_f00d,
            seed: 20080608,
            total: 8,
            records: vec![
                vec![1.0, -0.0, f64::NAN],
                vec![f64::INFINITY, 2.5e-300],
                vec![],
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_exact_including_non_finite() {
        let cp = sample();
        let text = cp.to_json().dump();
        let back = Checkpoint::from_json(&Json::parse(&text).expect("parses")).expect("valid");
        assert_eq!(back.kind, cp.kind);
        assert_eq!(back.key, cp.key);
        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.total, cp.total);
        assert_eq!(back.records.len(), cp.records.len());
        for (a, b) in back.records.iter().zip(&cp.records) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact incl. NaN/-0.0");
            }
        }
    }

    #[test]
    fn save_load_resume_and_fresh() {
        let path = tmp_path("save-load");
        let _ = std::fs::remove_file(&path);
        let cp = sample();
        assert_eq!(
            load(&path, &cp.kind, cp.key, cp.seed, cp.total),
            LoadOutcome::Fresh
        );
        save(&path, &cp).expect("saves");
        match load(&path, &cp.kind, cp.key, cp.seed, cp.total) {
            LoadOutcome::Resume(back) => {
                assert_eq!(back.records.len(), 3);
                assert!(back.records[0][2].is_nan());
            }
            other => panic!("expected resume, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn mismatched_identity_is_discarded_and_deleted() {
        let path = tmp_path("mismatch");
        let cp = sample();
        save(&path, &cp).expect("saves");
        match load(&path, &cp.kind, cp.key ^ 1, cp.seed, cp.total) {
            LoadOutcome::Discarded(reason) => assert!(reason.contains("identity mismatch")),
            other => panic!("expected discard, got {other:?}"),
        }
        assert!(!path.exists(), "discard deletes the file");
        assert_eq!(
            load(&path, &cp.kind, cp.key, cp.seed, cp.total),
            LoadOutcome::Fresh
        );
    }

    #[test]
    fn tampered_payload_fails_the_checksum() {
        let path = tmp_path("tamper");
        let cp = sample();
        save(&path, &cp).expect("saves");
        let text = std::fs::read_to_string(&path).expect("readable");
        // Flip one record bit: 1.0 = 3ff0… → 3ff1…
        let tampered = text.replacen("3ff0000000000000", "3ff1000000000000", 1);
        assert_ne!(text, tampered, "tamper target present");
        std::fs::write(&path, tampered).expect("writable");
        match load(&path, &cp.kind, cp.key, cp.seed, cp.total) {
            LoadOutcome::Discarded(reason) => assert!(reason.contains("checksum")),
            other => panic!("expected discard, got {other:?}"),
        }
        assert!(!path.exists());
    }

    #[test]
    fn injected_corruption_discards_a_valid_file() {
        let _g = lock();
        let path = tmp_path("injected");
        let cp = sample();
        save(&path, &cp).expect("saves");
        fault::arm(FaultPlan::seeded(1).with_site(FAULT_SITE, 1.0));
        let outcome = load(&path, &cp.kind, cp.key, cp.seed, cp.total);
        fault::disarm();
        match outcome {
            LoadOutcome::Discarded(reason) => assert!(reason.contains("injected fault")),
            other => panic!("expected discard, got {other:?}"),
        }
        assert!(!path.exists());
    }

    #[test]
    fn key_hasher_distinguishes_field_order_and_nan() {
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix separates fields");
        let mut n1 = KeyHasher::new();
        n1.write_f64(f64::NAN);
        let mut n2 = KeyHasher::new();
        n2.write_f64(f64::NAN);
        assert_eq!(n1.finish(), n2.finish(), "NaN hashes by bit pattern");
    }
}
