//! Interpolation on uniform grids.
//!
//! The circuit simulator evaluates device current and charge from tabulated
//! `(V_G, V_D)` data thousands of times per Newton iteration, so these tables
//! are built for fast repeated lookup: uniform grids with O(1) cell location,
//! bilinear value interpolation, and centred finite-difference partial
//! derivatives (needed for conductances and capacitances).

use crate::error::{NumError, NumResult};

/// A uniform 1D grid `x_i = start + i * step`, `i = 0..n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid1 {
    start: f64,
    step: f64,
    n: usize,
}

impl Grid1 {
    /// Creates a grid of `n ≥ 2` points spanning `[start, stop]` inclusive.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if `n < 2` or `stop <= start`.
    pub fn new(start: f64, stop: f64, n: usize) -> NumResult<Self> {
        if n < 2 {
            return Err(NumError::invalid("grid needs at least 2 points"));
        }
        if stop.is_nan() || start.is_nan() || stop <= start {
            return Err(NumError::invalid("grid stop must exceed start"));
        }
        Ok(Grid1 {
            start,
            step: (stop - start) / (n - 1) as f64,
            n,
        })
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false`: a valid grid always has ≥ 2 points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First grid point.
    #[inline]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Last grid point.
    #[inline]
    pub fn stop(&self) -> f64 {
        self.start + self.step * (self.n - 1) as f64
    }

    /// Grid spacing.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Coordinate of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point(&self, i: usize) -> f64 {
        assert!(i < self.n);
        self.start + self.step * i as f64
    }

    /// All grid points as a vector.
    pub fn points(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.point(i)).collect()
    }

    /// Locates `x`: returns `(cell_index, fractional_offset)` with the cell
    /// clamped into range so out-of-range queries extrapolate linearly from
    /// the boundary cell.
    #[inline]
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let t = (x - self.start) / self.step;
        let max_cell = self.n - 2;
        let cell = (t.floor().max(0.0) as usize).min(max_cell);
        (cell, t - cell as f64)
    }
}

/// Piecewise-linear interpolant over a [`Grid1`].
///
/// # Example
///
/// ```
/// use gnr_num::{Grid1, LinearTable};
///
/// # fn main() -> Result<(), gnr_num::NumError> {
/// let grid = Grid1::new(0.0, 1.0, 11)?;
/// let table = LinearTable::from_fn(grid, |x| x * x);
/// // Piecewise-linear: exact at nodes, close between them.
/// assert!((table.eval(0.5) - 0.25).abs() < 1e-12);
/// assert!((table.eval(0.55) - 0.3025).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearTable {
    grid: Grid1,
    values: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from precomputed node values.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `values.len() != grid.len()`.
    pub fn new(grid: Grid1, values: Vec<f64>) -> NumResult<Self> {
        if values.len() != grid.len() {
            return Err(NumError::dims(format!(
                "table has {} values for {} grid points",
                values.len(),
                grid.len()
            )));
        }
        Ok(LinearTable { grid, values })
    }

    /// Builds a table by sampling `f` at every node.
    pub fn from_fn(grid: Grid1, mut f: impl FnMut(f64) -> f64) -> Self {
        let values = (0..grid.len()).map(|i| f(grid.point(i))).collect();
        LinearTable { grid, values }
    }

    /// The underlying grid.
    pub fn grid(&self) -> Grid1 {
        self.grid
    }

    /// Node values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Interpolated value at `x` (linear extrapolation outside the grid).
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = self.grid.locate(x);
        self.values[i] * (1.0 - t) + self.values[i + 1] * t
    }

    /// Derivative of the interpolant at `x` (slope of the containing cell).
    pub fn deriv(&self, x: f64) -> f64 {
        let (i, _) = self.grid.locate(x);
        (self.values[i + 1] - self.values[i]) / self.grid.step()
    }
}

/// A uniform 2D grid: outer (row) axis × inner (column) axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid2 {
    /// Row axis (first index).
    pub x: Grid1,
    /// Column axis (second index).
    pub y: Grid1,
}

impl Grid2 {
    /// Creates a 2D grid from two 1D axes.
    pub fn new(x: Grid1, y: Grid1) -> Self {
        Grid2 { x, y }
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.x.len() * self.y.len()
    }

    /// `false`: component grids are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Bilinear interpolant over a [`Grid2`]; row-major node storage.
///
/// Used for the `I_D(V_G, V_D)` and `Q(V_G, V_D)` device lookup tables that
/// the paper's circuit simulator is built on.
#[derive(Clone, Debug, PartialEq)]
pub struct BilinearTable {
    grid: Grid2,
    values: Vec<f64>,
}

impl BilinearTable {
    /// Builds a table from row-major node values.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] on a size mismatch.
    pub fn new(grid: Grid2, values: Vec<f64>) -> NumResult<Self> {
        if values.len() != grid.len() {
            return Err(NumError::dims(format!(
                "table has {} values for {} grid nodes",
                values.len(),
                grid.len()
            )));
        }
        Ok(BilinearTable { grid, values })
    }

    /// Builds a table by sampling `f(x, y)` at every node.
    pub fn from_fn(grid: Grid2, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut values = Vec::with_capacity(grid.len());
        for i in 0..grid.x.len() {
            for j in 0..grid.y.len() {
                values.push(f(grid.x.point(i), grid.y.point(j)));
            }
        }
        BilinearTable { grid, values }
    }

    /// The underlying grid.
    pub fn grid(&self) -> Grid2 {
        self.grid
    }

    /// Node value at integer indices `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn node(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.grid.x.len() && j < self.grid.y.len());
        self.values[i * self.grid.y.len() + j]
    }

    /// Interpolated value at `(x, y)`; bilinear inside the grid, linear
    /// extrapolation from the boundary cell outside it.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (i, s) = self.grid.x.locate(x);
        let (j, t) = self.grid.y.locate(y);
        let ny = self.grid.y.len();
        let v00 = self.values[i * ny + j];
        let v01 = self.values[i * ny + j + 1];
        let v10 = self.values[(i + 1) * ny + j];
        let v11 = self.values[(i + 1) * ny + j + 1];
        v00 * (1.0 - s) * (1.0 - t) + v10 * s * (1.0 - t) + v01 * (1.0 - s) * t + v11 * s * t
    }

    /// Partial derivative `∂f/∂x` of the bilinear surface at `(x, y)`.
    pub fn deriv_x(&self, x: f64, y: f64) -> f64 {
        let (i, _) = self.grid.x.locate(x);
        let (j, t) = self.grid.y.locate(y);
        let ny = self.grid.y.len();
        let d0 = self.values[(i + 1) * ny + j] - self.values[i * ny + j];
        let d1 = self.values[(i + 1) * ny + j + 1] - self.values[i * ny + j + 1];
        (d0 * (1.0 - t) + d1 * t) / self.grid.x.step()
    }

    /// Partial derivative `∂f/∂y` of the bilinear surface at `(x, y)`.
    pub fn deriv_y(&self, x: f64, y: f64) -> f64 {
        let (i, s) = self.grid.x.locate(x);
        let (j, _) = self.grid.y.locate(y);
        let ny = self.grid.y.len();
        let d0 = self.values[i * ny + j + 1] - self.values[i * ny + j];
        let d1 = self.values[(i + 1) * ny + j + 1] - self.values[(i + 1) * ny + j];
        (d0 * (1.0 - s) + d1 * s) / self.grid.y.step()
    }

    /// Applies `f` to every stored node value, returning a new table
    /// (used e.g. to scale a single-ribbon table to a 4-ribbon array).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> BilinearTable {
        BilinearTable {
            grid: self.grid,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Pointwise combination of two tables defined on the same grid.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if the grids differ.
    pub fn zip_with(
        &self,
        other: &BilinearTable,
        f: impl Fn(f64, f64) -> f64,
    ) -> NumResult<BilinearTable> {
        if self.grid != other.grid {
            return Err(NumError::dims("tables defined on different grids"));
        }
        Ok(BilinearTable {
            grid: self.grid,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_construction_and_points() {
        let g = Grid1::new(0.0, 1.0, 5).unwrap();
        assert_eq!(g.step(), 0.25);
        assert_eq!(g.points(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(g.stop(), 1.0);
    }

    #[test]
    fn grid_rejects_degenerate() {
        assert!(Grid1::new(0.0, 1.0, 1).is_err());
        assert!(Grid1::new(1.0, 1.0, 5).is_err());
        assert!(Grid1::new(2.0, 1.0, 5).is_err());
    }

    #[test]
    fn locate_clamps_out_of_range() {
        let g = Grid1::new(0.0, 1.0, 5).unwrap();
        let (cell, t) = g.locate(-0.5);
        assert_eq!(cell, 0);
        assert!(t < 0.0);
        let (cell, t) = g.locate(2.0);
        assert_eq!(cell, 3);
        assert!(t > 1.0);
    }

    #[test]
    fn linear_table_exact_on_linear_function() {
        let g = Grid1::new(-1.0, 1.0, 9).unwrap();
        let t = LinearTable::from_fn(g, |x| 3.0 * x - 0.5);
        for &x in &[-1.0, -0.333, 0.0, 0.77, 1.0, 1.5, -2.0] {
            assert!((t.eval(x) - (3.0 * x - 0.5)).abs() < 1e-12, "x={x}");
            assert!((t.deriv(x) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_table_reproduces_nodes() {
        let g = Grid1::new(0.0, 2.0, 6).unwrap();
        let t = LinearTable::from_fn(g, |x| (x * 2.3).sin());
        for i in 0..g.len() {
            assert!((t.eval(g.point(i)) - (g.point(i) * 2.3).sin()).abs() < 1e-14);
        }
    }

    #[test]
    fn bilinear_exact_on_bilinear_function() {
        let gx = Grid1::new(0.0, 1.0, 4).unwrap();
        let gy = Grid1::new(-1.0, 1.0, 5).unwrap();
        let f = |x: f64, y: f64| 2.0 + 3.0 * x - y + 0.5 * x * y;
        let t = BilinearTable::from_fn(Grid2::new(gx, gy), f);
        for &(x, y) in &[(0.1, 0.2), (0.77, -0.9), (0.5, 0.0), (1.2, 1.5)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-12, "({x},{y})");
        }
    }

    #[test]
    fn bilinear_partial_derivatives() {
        let gx = Grid1::new(0.0, 1.0, 11).unwrap();
        let gy = Grid1::new(0.0, 1.0, 11).unwrap();
        let f = |x: f64, y: f64| 4.0 * x - 2.0 * y + x * y;
        let t = BilinearTable::from_fn(Grid2::new(gx, gy), f);
        // df/dx = 4 + y, df/dy = -2 + x: exact for bilinear functions.
        assert!((t.deriv_x(0.35, 0.6) - 4.6).abs() < 1e-12);
        assert!((t.deriv_y(0.35, 0.6) + 1.65).abs() < 1e-12);
    }

    #[test]
    fn map_and_zip() {
        let g = Grid2::new(
            Grid1::new(0.0, 1.0, 3).unwrap(),
            Grid1::new(0.0, 1.0, 3).unwrap(),
        );
        let a = BilinearTable::from_fn(g, |x, y| x + y);
        let b = a.map(|v| 4.0 * v);
        assert!((b.eval(0.5, 0.5) - 4.0).abs() < 1e-12);
        let c = a.zip_with(&b, |p, q| q - p).unwrap();
        assert!((c.eval(0.25, 0.25) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zip_rejects_mismatched_grids() {
        let g1 = Grid2::new(
            Grid1::new(0.0, 1.0, 3).unwrap(),
            Grid1::new(0.0, 1.0, 3).unwrap(),
        );
        let g2 = Grid2::new(
            Grid1::new(0.0, 1.0, 4).unwrap(),
            Grid1::new(0.0, 1.0, 3).unwrap(),
        );
        let a = BilinearTable::from_fn(g1, |x, _| x);
        let b = BilinearTable::from_fn(g2, |x, _| x);
        assert!(a.zip_with(&b, |p, _| p).is_err());
    }
}
