//! Iterative Krylov solvers for sparse symmetric/nonsymmetric systems.
//!
//! Conjugate gradients with Jacobi (diagonal) preconditioning covers the
//! symmetric positive-definite Poisson systems; BiCGSTAB is provided as a
//! fallback for mildly nonsymmetric operators (e.g. upwinded stencils).

use crate::error::{NumError, NumResult};
use crate::sparse::CsrMatrix;

/// Convergence control for the iterative solvers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterControl {
    /// Relative residual target `‖r‖/‖b‖`.
    pub rel_tol: f64,
    /// Absolute residual floor (guards `b = 0`).
    pub abs_tol: f64,
    /// Maximum iterations.
    pub max_iter: usize,
}

impl Default for IterControl {
    fn default() -> Self {
        IterControl {
            rel_tol: 1e-10,
            abs_tol: 1e-14,
            max_iter: 10_000,
        }
    }
}

/// Outcome statistics of a converged solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final residual norm `‖b - A x‖`.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A x = b` for symmetric positive-definite `A` using
/// Jacobi-preconditioned conjugate gradients. `x0` seeds the iteration.
///
/// # Errors
///
/// [`NumError::DimensionMismatch`] for shape errors,
/// [`NumError::NoConvergence`] if the iteration budget is exhausted, and
/// [`NumError::InvalidInput`] if a diagonal entry is zero (Jacobi
/// preconditioner undefined).
pub fn cg_solve(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    ctrl: IterControl,
) -> NumResult<(Vec<f64>, SolveStats)> {
    let n = a.rows();
    if a.cols() != n || b.len() != n || x0.len() != n {
        return Err(NumError::dims(format!(
            "cg: matrix {}x{}, b {}, x0 {}",
            a.rows(),
            a.cols(),
            b.len(),
            x0.len()
        )));
    }
    let diag = a.diagonal()?;
    if diag.contains(&0.0) {
        return Err(NumError::invalid(
            "zero diagonal entry; jacobi preconditioner undefined",
        ));
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let b_norm = norm(b).max(ctrl.abs_tol);
    let target = (ctrl.rel_tol * b_norm).max(ctrl.abs_tol);

    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..ctrl.max_iter {
        let r_norm = norm(&r);
        if r_norm <= target {
            return Ok((
                x,
                SolveStats {
                    iterations: it,
                    residual: r_norm,
                },
            ));
        }
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumError::invalid(
                "matrix not positive definite along search direction",
            ));
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(NumError::NoConvergence {
        iterations: ctrl.max_iter,
        residual: norm(&r),
    })
}

/// Solves `A x = b` for general (possibly nonsymmetric) `A` using
/// Jacobi-preconditioned BiCGSTAB.
///
/// # Errors
///
/// Same failure modes as [`cg_solve`], plus breakdown of the BiCGSTAB
/// recurrence reported as [`NumError::NoConvergence`].
pub fn bicgstab_solve(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    ctrl: IterControl,
) -> NumResult<(Vec<f64>, SolveStats)> {
    let n = a.rows();
    if a.cols() != n || b.len() != n || x0.len() != n {
        return Err(NumError::dims("bicgstab: incompatible shapes"));
    }
    let diag = a.diagonal()?;
    if diag.contains(&0.0) {
        return Err(NumError::invalid(
            "zero diagonal entry; jacobi preconditioner undefined",
        ));
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let mut x = x0.to_vec();
    let mut tmp = vec![0.0; n];
    a.matvec_into(&x, &mut tmp);
    let mut r: Vec<f64> = b.iter().zip(&tmp).map(|(bi, ti)| bi - ti).collect();
    let r_hat = r.clone();
    let b_norm = norm(b).max(ctrl.abs_tol);
    let target = (ctrl.rel_tol * b_norm).max(ctrl.abs_tol);

    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];

    for it in 0..ctrl.max_iter {
        let r_norm = norm(&r);
        if r_norm <= target {
            return Ok((
                x,
                SolveStats {
                    iterations: it,
                    residual: r_norm,
                },
            ));
        }
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return Err(NumError::NoConvergence {
                iterations: it,
                residual: r_norm,
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        for i in 0..n {
            phat[i] = p[i] * inv_diag[i];
        }
        a.matvec_into(&phat, &mut v);
        alpha = rho / dot(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) <= target {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            a.matvec_into(&x, &mut tmp);
            let res: Vec<f64> = b.iter().zip(&tmp).map(|(bi, ti)| bi - ti).collect();
            return Ok((
                x,
                SolveStats {
                    iterations: it + 1,
                    residual: norm(&res),
                },
            ));
        }
        for i in 0..n {
            shat[i] = s[i] * inv_diag[i];
        }
        a.matvec_into(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 {
            return Err(NumError::NoConvergence {
                iterations: it,
                residual: norm(&s),
            });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega.abs() < 1e-300 {
            return Err(NumError::NoConvergence {
                iterations: it,
                residual: norm(&r),
            });
        }
    }
    Err(NumError::NoConvergence {
        iterations: ctrl.max_iter,
        residual: norm(&r),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// 1D Laplacian with Dirichlet boundaries: classic SPD test system.
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian_1d(n);
        // Constant forcing: solution is a parabola, u_i = i(n-i+... check via residual.
        let b = vec![1.0; n];
        let (x, stats) = cg_solve(&a, &b, &vec![0.0; n], IterControl::default()).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-7);
        }
        assert!(stats.iterations <= n + 1, "CG must converge in <= n iters");
    }

    #[test]
    fn cg_exact_on_identity() {
        let mut tb = TripletBuilder::new(4, 4);
        for i in 0..4 {
            tb.push(i, i, 1.0);
        }
        let a = tb.build();
        let b = vec![3.0, -1.0, 2.0, 0.5];
        let (x, stats) = cg_solve(&a, &b, &[0.0; 4], IterControl::default()).unwrap();
        assert_eq!(x, b);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn cg_warm_start_converges_immediately() {
        let n = 20;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let (x, _) = cg_solve(&a, &b, &vec![0.0; n], IterControl::default()).unwrap();
        let (_, stats) = cg_solve(&a, &b, &x, IterControl::default()).unwrap();
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn cg_rejects_zero_diagonal() {
        let mut tb = TripletBuilder::new(2, 2);
        tb.push(0, 1, 1.0);
        tb.push(1, 0, 1.0);
        let a = tb.build();
        assert!(cg_solve(&a, &[1.0, 1.0], &[0.0, 0.0], IterControl::default()).is_err());
    }

    #[test]
    fn cg_budget_exhaustion_reports_no_convergence() {
        let n = 100;
        let a = laplacian_1d(n);
        let ctrl = IterControl {
            max_iter: 2,
            ..IterControl::default()
        };
        let err = cg_solve(&a, &vec![1.0; n], &vec![0.0; n], ctrl).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { iterations: 2, .. }));
    }

    #[test]
    fn cg_zero_diagonal_is_invalid_input() {
        let mut tb = TripletBuilder::new(3, 3);
        tb.push(0, 0, 1.0);
        tb.push(1, 2, 1.0);
        tb.push(2, 1, 1.0);
        let a = tb.build();
        let err = cg_solve(&a, &[1.0; 3], &[0.0; 3], IterControl::default()).unwrap_err();
        assert!(matches!(err, NumError::InvalidInput { .. }), "{err:?}");
    }

    #[test]
    fn cg_indefinite_matrix_reports_invalid_input() {
        // Indefinite diagonal: the CG search direction hits p'Ap < 0.
        let mut tb = TripletBuilder::new(2, 2);
        tb.push(0, 0, 1.0);
        tb.push(1, 1, -1.0);
        let a = tb.build();
        let err = cg_solve(&a, &[0.0, 1.0], &[0.0, 0.0], IterControl::default()).unwrap_err();
        assert!(matches!(err, NumError::InvalidInput { .. }), "{err:?}");
    }

    #[test]
    fn bicgstab_budget_exhaustion_reports_no_convergence() {
        let n = 100;
        let a = laplacian_1d(n);
        let ctrl = IterControl {
            max_iter: 2,
            ..IterControl::default()
        };
        let err = bicgstab_solve(&a, &vec![1.0; n], &vec![0.0; n], ctrl).unwrap_err();
        match err {
            NumError::NoConvergence {
                iterations,
                residual,
            } => {
                assert!(iterations <= 2);
                assert!(residual > 0.0);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn bicgstab_zero_diagonal_is_invalid_input() {
        let mut tb = TripletBuilder::new(2, 2);
        tb.push(0, 1, 1.0);
        tb.push(1, 0, 1.0);
        let a = tb.build();
        let err = bicgstab_solve(&a, &[1.0, 1.0], &[0.0, 0.0], IterControl::default()).unwrap_err();
        assert!(matches!(err, NumError::InvalidInput { .. }), "{err:?}");
    }

    #[test]
    fn bicgstab_singular_system_breaks_down() {
        // Rank-1 matrix with b outside its range: the recurrence cannot
        // make progress and must report NoConvergence, never loop forever
        // or return a bogus solution.
        let mut tb = TripletBuilder::new(2, 2);
        tb.push(0, 0, 1.0);
        tb.push(0, 1, 1.0);
        tb.push(1, 0, 1.0);
        tb.push(1, 1, 1.0);
        let a = tb.build();
        let ctrl = IterControl {
            max_iter: 50,
            ..IterControl::default()
        };
        let err = bicgstab_solve(&a, &[1.0, -1.0], &[0.0, 0.0], ctrl).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }), "{err:?}");
    }

    #[test]
    fn bicgstab_breakdown_on_orthogonal_shadow_residual() {
        // rho = <r_hat, r> hits exactly zero -> immediate breakdown report.
        // Construct it by seeding x0 so the initial residual is the zero
        // vector's complement... simplest robust trigger: b in the range
        // but r_hat orthogonal to r after one step on a singular system.
        let mut tb = TripletBuilder::new(2, 2);
        tb.push(0, 0, 1.0);
        tb.push(0, 1, 1.0);
        tb.push(1, 0, 1.0);
        tb.push(1, 1, 1.0);
        let a = tb.build();
        let ctrl = IterControl {
            max_iter: 3,
            ..IterControl::default()
        };
        // Consistent singular system: converges (minimum-norm-ish) or
        // breaks down, but must never panic or return Ok with a residual
        // above target.
        match bicgstab_solve(&a, &[2.0, 2.0], &[0.0, 0.0], ctrl) {
            Ok((x, stats)) => {
                let r = a.matvec(&x);
                assert!((r[0] - 2.0).abs() < 1e-8 && (r[1] - 2.0).abs() < 1e-8);
                assert!(stats.residual <= 2e-10 * (8.0f64).sqrt());
            }
            Err(err) => assert!(matches!(err, NumError::NoConvergence { .. }), "{err:?}"),
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Upwind-like nonsymmetric operator.
        let n = 30;
        let mut tb = TripletBuilder::new(n, n);
        for i in 0..n {
            tb.push(i, i, 3.0);
            if i > 0 {
                tb.push(i, i - 1, -2.0);
            }
            if i + 1 < n {
                tb.push(i, i + 1, -0.5);
            }
        }
        let a = tb.build();
        let b = vec![1.0; n];
        let (x, _) = bicgstab_solve(&a, &b, &vec![0.0; n], IterControl::default()).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn bicgstab_matches_cg_on_spd() {
        let n = 25;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let (x1, _) = cg_solve(&a, &b, &vec![0.0; n], IterControl::default()).unwrap();
        let (x2, _) = bicgstab_solve(&a, &b, &vec![0.0; n], IterControl::default()).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-6);
        }
    }
}
