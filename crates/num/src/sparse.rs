//! Sparse matrices in compressed-sparse-row (CSR) form.
//!
//! Built for the 3D Poisson discretization in `gnr-poisson`: assembled once
//! from (row, col, value) triplets, then used for repeated matrix–vector
//! products inside Krylov solvers.

use crate::error::{NumError, NumResult};

/// Accumulating builder that collects `(row, col, value)` triplets and
/// compresses them into a [`CsrMatrix`]. Duplicate coordinates are summed,
/// which makes finite-volume stencil assembly natural.
///
/// # Example
///
/// ```
/// use gnr_num::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 2.0);
/// b.push(0, 0, 1.0); // accumulates: entry becomes 3.0
/// b.push(1, 1, 5.0);
/// let m = b.build();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 5.0]);
/// ```
#[derive(Clone, Debug)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of bounds");
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-compression) triplets collected so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no triplets were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into CSR form, summing duplicates and
    /// dropping exact zeros produced by cancellation.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut it = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// An immutable sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// The stored entries of one row as `(col, value)` pairs.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer (hot path of the
    /// Krylov solvers; avoids re-allocating every iteration).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the matrix shape.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length must equal cols");
        assert_eq!(y.len(), self.rows, "y length must equal rows");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Extracts the diagonal; absent entries are zero.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] for non-square matrices.
    pub fn diagonal(&self) -> NumResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(NumError::dims("diagonal requires a square matrix"));
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Densifies the matrix (for the direct-LU fallback on small systems;
    /// O(rows·cols) memory, so keep it off large grids).
    pub fn to_dense(&self) -> crate::dense::Matrix {
        let mut m = crate::dense::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Symmetry defect `max |A_ij - A_ji|` over stored entries; useful to
    /// validate finite-volume assembly before handing the matrix to CG.
    pub fn symmetry_defect(&self) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut b = TripletBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 4.0);
        }
        for i in 0..2 {
            b.push(i, i + 1, -1.0);
            b.push(i + 1, i, -1.0);
        }
        b.build()
    }

    #[test]
    fn build_and_lookup() {
        let m = sample();
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn duplicates_accumulate_and_zeros_drop() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 0, 5.0);
        b.push(1, 0, -5.0); // cancels to zero -> dropped
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn row_iteration_in_column_order() {
        let m = sample();
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 4.0), (2, -1.0)]);
    }

    #[test]
    fn diagonal_and_symmetry() {
        let m = sample();
        assert_eq!(m.diagonal().unwrap(), vec![4.0, 4.0, 4.0]);
        assert_eq!(m.symmetry_defect(), 0.0);
    }

    #[test]
    fn asymmetry_detected() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 2.0);
        b.push(1, 0, -2.0);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let m = b.build();
        assert_eq!(m.symmetry_defect(), 4.0);
    }

    #[test]
    fn empty_builder() {
        let b = TripletBuilder::new(3, 3);
        assert!(b.is_empty());
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }
}
