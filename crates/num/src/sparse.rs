//! Sparse matrices in compressed-sparse-row (CSR) form.
//!
//! Built for the 3D Poisson discretization in `gnr-poisson`: assembled once
//! from (row, col, value) triplets, then used for repeated matrix–vector
//! products inside Krylov solvers.

use crate::error::{NumError, NumResult};

/// Accumulating builder that collects `(row, col, value)` triplets and
/// compresses them into a [`CsrMatrix`]. Duplicate coordinates are summed,
/// which makes finite-volume stencil assembly natural.
///
/// # Example
///
/// ```
/// use gnr_num::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 2.0);
/// b.push(0, 0, 1.0); // accumulates: entry becomes 3.0
/// b.push(1, 1, 5.0);
/// let m = b.build();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 5.0]);
/// ```
#[derive(Clone, Debug)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of bounds");
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-compression) triplets collected so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no triplets were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into CSR form, summing duplicates.
    ///
    /// Entries whose duplicates cancel to exactly `0.0` are *kept* as
    /// explicit structural zeros: the resulting sparsity pattern depends
    /// only on the coordinates pushed, never on the values. Two assemblies
    /// of the same stencil therefore always agree in `row_ptr`/`col_idx`,
    /// which is the invariant the symbolic-reuse sparse LU
    /// ([`crate::sparse_lu`]) relies on.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut it = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// An immutable sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// The stored entries of one row as `(col, value)` pairs.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer (hot path of the
    /// Krylov solvers; avoids re-allocating every iteration).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the matrix shape.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length must equal cols");
        assert_eq!(y.len(), self.rows, "y length must equal rows");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Extracts the diagonal; absent entries are zero.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] for non-square matrices.
    pub fn diagonal(&self) -> NumResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(NumError::dims("diagonal requires a square matrix"));
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Densifies the matrix (for the direct-LU fallback on small systems;
    /// O(rows·cols) memory, so keep it off large grids).
    pub fn to_dense(&self) -> crate::dense::Matrix {
        let mut m = crate::dense::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Symmetry defect `max |A_ij - A_ji|` over stored entries; useful to
    /// validate finite-volume assembly before handing the matrix to CG.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] for non-square matrices
    /// (symmetry is undefined there, and transposed lookups would index
    /// out of bounds).
    pub fn symmetry_defect(&self) -> NumResult<f64> {
        if self.rows != self.cols {
            return Err(NumError::dims(format!(
                "symmetry_defect requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        Ok(worst)
    }

    /// Builds a matrix directly from CSR parts (the inverse of
    /// [`CsrMatrix::into_parts`]); used by fixed-pattern assemblers that
    /// overwrite `values` in place between factorizations.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when the parts are inconsistent
    /// (pointer length, monotonicity, column bounds, value count, or
    /// unsorted/duplicate columns within a row).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> NumResult<Self> {
        if row_ptr.len() != rows + 1 || row_ptr[0] != 0 || row_ptr[rows] != col_idx.len() {
            return Err(NumError::invalid("csr row_ptr is inconsistent"));
        }
        if values.len() != col_idx.len() {
            return Err(NumError::invalid("csr values length != col_idx length"));
        }
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi || hi > col_idx.len() {
                return Err(NumError::invalid("csr row_ptr is not monotone"));
            }
            for k in lo..hi {
                if col_idx[k] >= cols {
                    return Err(NumError::invalid("csr column index out of bounds"));
                }
                if k > lo && col_idx[k] <= col_idx[k - 1] {
                    return Err(NumError::invalid("csr columns must be strictly increasing"));
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Row pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices of the stored entries, row-major.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, aligned with [`CsrMatrix::col_idx`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values. The sparsity pattern itself is
    /// immutable; this is the fixed-pattern restamping hook used by the
    /// MNA assembler between Newton iterations.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `true` when `other` has the identical sparsity pattern (shape,
    /// `row_ptr`, and `col_idx`); values are ignored.
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut b = TripletBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 4.0);
        }
        for i in 0..2 {
            b.push(i, i + 1, -1.0);
            b.push(i + 1, i, -1.0);
        }
        b.build()
    }

    #[test]
    fn build_and_lookup() {
        let m = sample();
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn duplicates_accumulate_and_cancellation_keeps_structure() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 0, 5.0);
        b.push(1, 0, -5.0); // cancels to zero -> kept as a structural zero
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.nnz(), 2, "cancelled entry stays in the pattern");
    }

    /// Two assemblies of one stencil with different values must yield the
    /// identical sparsity pattern, even when one value-set cancels some
    /// entries to exactly zero — the invariant symbolic-pattern reuse
    /// depends on.
    #[test]
    fn pattern_is_value_independent() {
        let assemble = |vals: [f64; 4]| {
            let mut b = TripletBuilder::new(3, 3);
            b.push(0, 0, vals[0]);
            b.push(0, 0, vals[1]); // duplicate that may cancel
            b.push(1, 1, vals[2]);
            b.push(2, 0, vals[3]);
            b.push(2, 2, 1.0);
            b.build()
        };
        let a = assemble([2.0, 1.0, 5.0, -3.0]);
        let b = assemble([4.0, -4.0, 0.0, 0.0]); // cancels (0,0); zeros elsewhere
        assert_eq!(
            a.row_ptr(),
            b.row_ptr(),
            "row_ptr must not depend on values"
        );
        assert_eq!(
            a.col_idx(),
            b.col_idx(),
            "col_idx must not depend on values"
        );
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.same_pattern(&b));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn row_iteration_in_column_order() {
        let m = sample();
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 4.0), (2, -1.0)]);
    }

    #[test]
    fn diagonal_and_symmetry() {
        let m = sample();
        assert_eq!(m.diagonal().unwrap(), vec![4.0, 4.0, 4.0]);
        assert_eq!(m.symmetry_defect().unwrap(), 0.0);
    }

    #[test]
    fn asymmetry_detected() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 2.0);
        b.push(1, 0, -2.0);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let m = b.build();
        assert_eq!(m.symmetry_defect().unwrap(), 4.0);
    }

    /// Regression: `symmetry_defect` on a wide matrix used to index
    /// `row_ptr[c + 1]` with a column index and panic; it must instead
    /// report a dimension error like `diagonal()` does.
    #[test]
    fn symmetry_defect_rejects_non_square() {
        let mut b = TripletBuilder::new(2, 4);
        b.push(0, 3, 1.0); // col 3 > rows 2: the old code panicked here
        b.push(1, 1, 2.0);
        let m = b.build();
        assert!(matches!(
            m.symmetry_defect(),
            Err(NumError::DimensionMismatch { .. })
        ));
        let mut tall = TripletBuilder::new(4, 2);
        tall.push(3, 0, 1.0);
        assert!(tall.build().symmetry_defect().is_err());
    }

    #[test]
    fn from_parts_validates() {
        let m = sample();
        let rebuilt = CsrMatrix::from_parts(
            3,
            3,
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![2], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_builder() {
        let b = TripletBuilder::new(3, 3);
        assert!(b.is_empty());
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }
}
