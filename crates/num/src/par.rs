//! Deterministic scoped thread pool and the unified [`ExecCtx`] execution
//! context.
//!
//! Every embarrassingly parallel loop in the workspace — the NEGF energy
//! integration, the `DeviceTable` bias grid, the Monte Carlo sample sweep —
//! funnels through [`ThreadPool::par_map_indexed`]. The pool is built from
//! `std::thread` scoped threads plus channels only (zero dependencies) and
//! obeys one contract:
//!
//! **Determinism.** Work is split into fixed chunks handed out through a
//! shared atomic counter; each chunk's outputs are sent back tagged with the
//! chunk index and merged in index order. Because every element is computed
//! independently and the merge order is fixed, results are **bit-identical**
//! to the serial loop regardless of thread count or OS scheduling. A pool of
//! size 1 does not spawn at all — it runs the exact serial code path.
//!
//! [`ExecCtx`] bundles the pool with a [`RecoveryPolicy`] and a
//! [`SharedFaultLog`] so the solver stack exposes a single entry-point
//! signature (`f(&ctx, …)`) instead of ad-hoc `_with_recovery` / `_logged`
//! variants.
//!
//! Thread count resolution: `GNR_THREADS` overrides when set to a positive
//! integer; otherwise [`ExecCtx::from_env`] uses the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::budget::ExecLimits;
use crate::error::NumResult;
use crate::recover::SharedFaultLog;
use crate::telemetry::{ScopedTimer, Telemetry};

/// How many chunks each worker should see on average. More chunks than
/// workers keeps the pool load-balanced when per-element cost varies
/// (deterministic: the chunk *boundaries* depend only on `n` and the
/// thread count, never on scheduling).
const CHUNKS_PER_THREAD: usize = 4;

/// A zero-dependency scoped thread pool with deterministic ordered-merge
/// reduction.
///
/// The pool stores only its size; threads are scoped to each call (spawned
/// inside [`std::thread::scope`]), so there is no lifetime erasure, no
/// `'static` bound on closures, and worker panics propagate to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers. Zero is clamped to one; a pool of one
    /// runs everything inline without spawning.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: size one, exact serial code path.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Pool sized from the `GNR_THREADS` environment variable when set to a
    /// positive integer, else from the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads =
            parse_threads(std::env::var("GNR_THREADS").ok().as_deref()).unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(threads)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n` and returns the outputs in index order.
    ///
    /// Bit-identical to `(0..n).map(f).collect()` for any thread count:
    /// each element is computed independently and the merge is ordered by
    /// index. With one worker no thread is spawned and the serial loop runs
    /// verbatim.
    pub fn par_map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = chunk_size(n, self.threads);
        let n_chunks = n.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n_chunks) {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let out: Vec<T> = (lo..hi).map(f).collect();
                    if tx.send((c, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut parts: Vec<Option<Vec<T>>> = (0..n_chunks).map(|_| None).collect();
            for (c, out) in rx {
                parts[c] = Some(out);
            }
            let mut merged = Vec::with_capacity(n);
            for part in parts {
                merged.extend(part.expect("scoped worker delivered every chunk"));
            }
            merged
        })
    }

    /// Fallible [`par_map_indexed`](ThreadPool::par_map_indexed): maps `f`
    /// over `0..n`, short-circuiting on the error with the **lowest index**
    /// — the same error the serial loop would return first.
    ///
    /// With more than one worker, `f` may still be invoked for indices past
    /// the first failing one (those results are discarded), so `f` must be
    /// free of rollback-requiring side effects.
    pub fn try_par_map_indexed<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(f(i)?);
            }
            return Ok(out);
        }
        let chunk = chunk_size(n, self.threads);
        let n_chunks = n.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<T>, E>)>();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n_chunks) {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let mut out = Vec::with_capacity(hi - lo);
                    let mut res: Result<Vec<T>, E> = Ok(Vec::new());
                    for i in lo..hi {
                        match f(i) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                res = Err(e);
                                break;
                            }
                        }
                    }
                    if res.is_ok() {
                        res = Ok(out);
                    }
                    if tx.send((c, res)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut parts: Vec<Option<Result<Vec<T>, E>>> = (0..n_chunks).map(|_| None).collect();
            for (c, out) in rx {
                parts[c] = Some(out);
            }
            // Chunks are contiguous ascending index ranges, so the first
            // errored chunk (and its first error) is the lowest-index error
            // overall — exactly what the serial loop would hit first.
            let mut merged = Vec::with_capacity(n);
            for part in parts {
                merged.extend(part.expect("scoped worker delivered every chunk")?);
            }
            Ok(merged)
        })
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::serial()
    }
}

/// Fixed chunk size for `n` items on `threads` workers: a pure function of
/// the two, independent of scheduling.
fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * CHUNKS_PER_THREAD).max(1)
}

/// Parses a `GNR_THREADS`-style override; `None` for unset, empty, zero, or
/// unparsable values.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

/// What the solver stack should do when a nominal attempt fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Nominal attempt only: the first failure propagates as an error.
    /// Reproduces the pre-ladder plain solvers byte for byte.
    Strict,
    /// Full escalation ladders (PR 2) with degraded-result reporting.
    #[default]
    Ladder,
}

/// The unified execution context: thread pool + recovery policy + shared
/// fault log + telemetry sink.
///
/// Every redesigned entry point takes `&ExecCtx` as its first argument.
/// Cloning is cheap and **shares** the fault log and telemetry sink (the
/// pool and policy are copied), so a clone handed to a helper still
/// reports faults and metrics to the same sinks.
///
/// The default telemetry sink is the process-global registry, disarmed
/// unless `GNR_TELEMETRY=1` (see [`crate::telemetry`]); a disarmed
/// recording call costs one relaxed atomic load. Swap in an isolated
/// registry with [`ExecCtx::with_telemetry`].
#[derive(Clone, Debug, Default)]
pub struct ExecCtx {
    pool: ThreadPool,
    recovery: RecoveryPolicy,
    faults: SharedFaultLog,
    telemetry: Telemetry,
    limits: ExecLimits,
}

impl ExecCtx {
    /// Context with an explicit pool and policy, a fresh fault log, the
    /// global telemetry sink, and no execution limits.
    pub fn new(pool: ThreadPool, recovery: RecoveryPolicy) -> Self {
        ExecCtx {
            pool,
            recovery,
            faults: SharedFaultLog::new(),
            telemetry: Telemetry::global(),
            limits: ExecLimits::none(),
        }
    }

    /// Serial context with the default [`RecoveryPolicy::Ladder`]: the
    /// target of the deprecated `_with_recovery`/`_logged` shims.
    pub fn serial() -> Self {
        ExecCtx::new(ThreadPool::serial(), RecoveryPolicy::Ladder)
    }

    /// Serial context with [`RecoveryPolicy::Strict`]: reproduces the old
    /// plain (pre-recovery) solver calls.
    pub fn strict() -> Self {
        ExecCtx::new(ThreadPool::serial(), RecoveryPolicy::Strict)
    }

    /// Context sized from `GNR_THREADS` / available parallelism, with the
    /// default ladder policy.
    pub fn from_env() -> Self {
        ExecCtx::new(ThreadPool::from_env(), RecoveryPolicy::default())
    }

    /// Context with an `n`-thread pool and the default ladder policy.
    pub fn with_threads(threads: usize) -> Self {
        ExecCtx::new(ThreadPool::new(threads), RecoveryPolicy::default())
    }

    /// Same context with a different recovery policy (fault log, telemetry
    /// sink, and limits shared).
    pub fn with_recovery(&self, recovery: RecoveryPolicy) -> Self {
        ExecCtx {
            pool: self.pool,
            recovery,
            faults: self.faults.clone(),
            telemetry: self.telemetry.clone(),
            limits: self.limits.clone(),
        }
    }

    /// Same context with a different telemetry sink (fault log and limits
    /// shared).
    pub fn with_telemetry(&self, telemetry: Telemetry) -> Self {
        ExecCtx {
            pool: self.pool,
            recovery: self.recovery,
            faults: self.faults.clone(),
            telemetry,
            limits: self.limits.clone(),
        }
    }

    /// Same context with execution limits attached (fault log and
    /// telemetry sink shared). Limits clone *shared* state: every context
    /// derived from this one observes the same cancel flag and budget
    /// counter.
    pub fn with_limits(&self, limits: ExecLimits) -> Self {
        ExecCtx {
            pool: self.pool,
            recovery: self.recovery,
            faults: self.faults.clone(),
            telemetry: self.telemetry.clone(),
            limits,
        }
    }

    /// The thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker count of the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The recovery policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The shared fault log.
    pub fn faults(&self) -> &SharedFaultLog {
        &self.faults
    }

    /// Records one isolated fault into the shared log.
    pub fn record_fault(&self, sample: usize, stage: impl Into<String>, error: impl Into<String>) {
        self.faults.record(sample, stage, error);
    }

    /// The telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The execution limits (unlimited by default).
    pub fn limits(&self) -> &ExecLimits {
        &self.limits
    }

    /// Probes the execution limits at the fragile-loop boundary `site`.
    /// One relaxed atomic load when no limits are attached.
    ///
    /// # Errors
    ///
    /// [`crate::NumError::Cancelled`] / [`crate::NumError::BudgetExhausted`]
    /// when the token has fired or the budget expired.
    pub fn check_budget(&self, site: &str) -> NumResult<()> {
        self.limits.check(site)
    }

    /// Adds `n` to counter `name` on this context's telemetry sink.
    pub fn counter_add(&self, name: &str, n: u64) {
        self.telemetry.counter_add(name, n);
    }

    /// Increments counter `name` on this context's telemetry sink.
    pub fn counter_inc(&self, name: &str) {
        self.telemetry.counter_add(name, 1);
    }

    /// Starts a scoped wall-clock timer on this context's telemetry sink.
    pub fn time_scope(&self, name: &str) -> ScopedTimer {
        self.telemetry.time_scope(name)
    }

    /// [`ThreadPool::par_map_indexed`] on this context's pool.
    pub fn par_map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.pool.par_map_indexed(n, f)
    }

    /// [`ThreadPool::try_par_map_indexed`] on this context's pool.
    pub fn try_par_map_indexed<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.pool.try_par_map_indexed(n, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_clamps_zero_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::serial().threads(), 1);
    }

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn par_map_matches_serial_exactly() {
        // A float-heavy map whose results would differ under any reordering
        // of arithmetic; identical output across pool sizes proves the
        // ordered-merge contract.
        let f = |i: usize| {
            let x = i as f64 * 0.371 + 0.013;
            (x.sin() * x.cos() + x.sqrt()).ln_1p()
        };
        let serial: Vec<f64> = (0..997).map(f).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let par = pool.par_map_indexed(997, f);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map_indexed(1, |i| i * 2), vec![0]);
        assert_eq!(pool.par_map_indexed(3, |i| i * 2), vec![0, 2, 4]);
        let big: Vec<usize> = pool.par_map_indexed(10_000, |i| i);
        assert_eq!(big, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let f = |i: usize| -> Result<usize, String> {
            if i == 713 || i == 41 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        };
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let err = pool.try_par_map_indexed(1000, f).unwrap_err();
            assert_eq!(err, "bad 41", "threads={threads}");
        }
        let ok = ThreadPool::new(4).try_par_map_indexed(100, Ok::<_, String>);
        assert_eq!(ok.unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.par_map_indexed(64, |i| {
                if i == 17 {
                    panic!("worker panic");
                }
                i
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn ctx_constructors_and_policy() {
        let serial = ExecCtx::serial();
        assert_eq!(serial.threads(), 1);
        assert_eq!(serial.recovery(), RecoveryPolicy::Ladder);
        let strict = ExecCtx::strict();
        assert_eq!(strict.threads(), 1);
        assert_eq!(strict.recovery(), RecoveryPolicy::Strict);
        let four = ExecCtx::with_threads(4);
        assert_eq!(four.threads(), 4);
        let relaxed = strict.with_recovery(RecoveryPolicy::Ladder);
        assert_eq!(relaxed.recovery(), RecoveryPolicy::Ladder);
    }

    #[test]
    fn ctx_clone_shares_fault_log() {
        let ctx = ExecCtx::serial();
        let clone = ctx.clone();
        clone.record_fault(3, "scf", "diverged");
        ctx.record_fault(7, "ring", "stalled");
        let log = ctx.faults().snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].sample, 3);
        assert_eq!(log.events()[1].stage, "ring");
    }

    #[test]
    fn ctx_clone_shares_telemetry_sink() {
        let ctx = ExecCtx::serial().with_telemetry(Telemetry::isolated());
        let clone = ctx.clone();
        clone.counter_inc("t.events");
        ctx.counter_add("t.events", 2);
        let _scope = ctx.time_scope("t.span");
        drop(_scope);
        let snap = ctx.telemetry().snapshot();
        assert_eq!(snap.counter("t.events"), Some(3));
        assert!(snap.get("t.span").is_some());
        // The default context routes to the (disarmed) global sink: nothing
        // recorded, one atomic load per call.
        let plain = ExecCtx::serial();
        plain.counter_inc("t.global");
        assert!(!plain.telemetry().active() || !plain.telemetry().snapshot().is_empty());
    }

    #[test]
    fn ctx_limits_default_unlimited_and_shared_on_derive() {
        use crate::budget::{Budget, CancelToken, ExecLimits};
        let ctx = ExecCtx::serial();
        assert!(!ctx.limits().is_limited());
        ctx.check_budget("anywhere").expect("unlimited by default");
        let token = CancelToken::new();
        let limited = ctx.with_limits(
            ExecLimits::none()
                .with_cancel(token.clone())
                .with_budget(Budget::unlimited().with_check_cap(100)),
        );
        // A derived context (policy swap) observes the same cancel flag.
        let derived = limited.with_recovery(RecoveryPolicy::Strict);
        limited.check_budget("scf").expect("not yet cancelled");
        token.cancel();
        assert!(derived.check_budget("scf").is_err());
    }

    #[test]
    fn ctx_fault_log_safe_under_concurrent_recording() {
        let ctx = ExecCtx::with_threads(8);
        let _: Vec<()> = ctx.par_map_indexed(500, |i| {
            if i % 7 == 0 {
                ctx.record_fault(i, "stress", "injected");
            }
        });
        let log = ctx.faults().snapshot();
        assert_eq!(log.len(), 500_usize.div_ceil(7));
        // Deterministic parallel sweeps merge shards in sample order; the
        // raw concurrent log only guarantees completeness, so check the set.
        let mut samples: Vec<usize> = log.events().iter().map(|e| e.sample).collect();
        samples.sort_unstable();
        let expect: Vec<usize> = (0..500).filter(|i| i % 7 == 0).collect();
        assert_eq!(samples, expect);
    }
}
