//! Budgeted execution: cooperative cancellation and per-run deadlines /
//! check-count caps, carried on [`ExecCtx`](crate::par::ExecCtx) and
//! probed at every fragile-loop boundary (Sancho–Rubio decimation, NEGF
//! energy points, SCF iterations, linear-ladder rungs, DC gmin/source
//! stages, transient steps, Monte Carlo samples).
//!
//! # Cost model
//!
//! Mirrors the fault injector ([`fault`](crate::fault)): an *unlimited*
//! [`ExecLimits`] check is a single relaxed atomic load (the injector's
//! disarmed probe) plus two `Option` tests — no clock read, no lock, no
//! allocation — so production hot paths pay nothing for the plumbing.
//! Only when a token or budget is actually attached does a check read the
//! cancel flag, the monotonic clock, and the check counter.
//!
//! # Semantics
//!
//! A tripped check surfaces [`NumError::Cancelled`] or
//! [`NumError::BudgetExhausted`] naming the site. Escalation ladders must
//! treat these as *stop* conditions ([`NumError::is_budget_stop`]) and
//! propagate them instead of burning the remaining budget on rescue
//! rungs; drivers surface whatever partial data is valid alongside the
//! error. Deterministic tests use check-count caps (exact, scheduler
//! independent); wall-clock deadlines are inherently nondeterministic in
//! *where* they trip, which is why checkpointed drivers only promise
//! bit-identical summaries once a resumed run completes.
//!
//! Telemetry: `budget.checks` counts checks made while limits are
//! attached, `budget.expirations` counts tripped checks (including the
//! `budget.spurious_expiry` fault site used for injection testing).

use crate::error::{NumError, NumResult};
use crate::{fault, telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault site probed by every limits check; arming it forces a
/// `BudgetExhausted` expiry regardless of the actual budget state.
pub const FAULT_SITE: &str = "budget.spurious_expiry";

/// Cooperative cancellation flag. Cheap to clone (an `Arc<AtomicBool>`);
/// all clones observe the same flag. Cancellation is one-way: there is no
/// reset, mirroring a job-queue kill signal.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every holder of a clone observes it at its
    /// next fragile-loop boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called. A
    /// single relaxed load.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Declarative budget: an optional wall-clock deadline and an optional cap
/// on the number of fragile-loop checks (each boundary check consumes one
/// unit, so the cap bounds solver work in scheduler-independent units).
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    check_cap: Option<u64>,
}

impl Budget {
    /// A budget with no bounds (checks always pass).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline `d` from now.
    pub fn with_wall_clock(self, d: Duration) -> Self {
        self.with_deadline(Instant::now() + d)
    }

    /// Caps the total number of fragile-loop checks at `cap`; the
    /// `cap + 1`-th check trips. Exact and deterministic at any
    /// `GNR_THREADS`, which makes it the budget of choice for tests.
    pub fn with_check_cap(mut self, cap: u64) -> Self {
        self.check_cap = Some(cap);
        self
    }
}

#[derive(Debug, Default)]
struct BudgetState {
    deadline: Option<Instant>,
    check_cap: Option<u64>,
    checks: AtomicU64,
}

/// The limits handle carried on [`ExecCtx`](crate::par::ExecCtx): an
/// optional [`CancelToken`] plus an optional [`Budget`]. Clones share the
/// underlying state (the check counter is global to the run, not per
/// clone). The default is unlimited.
#[derive(Clone, Debug, Default)]
pub struct ExecLimits {
    cancel: Option<CancelToken>,
    budget: Option<Arc<BudgetState>>,
}

impl ExecLimits {
    /// No limits: every check passes at the cost of one relaxed load.
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a budget (deadline and/or check cap).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(Arc::new(BudgetState {
            deadline: budget.deadline,
            check_cap: budget.check_cap,
            checks: AtomicU64::new(0),
        }));
        self
    }

    /// `true` when a token or budget is attached (checks do real work).
    pub fn is_limited(&self) -> bool {
        self.cancel.is_some() || self.budget.is_some()
    }

    /// Fragile-loop checks consumed so far (0 when no budget attached).
    pub fn checks_spent(&self) -> u64 {
        self.budget
            .as_ref()
            .map_or(0, |b| b.checks.load(Ordering::Relaxed))
    }

    /// Probes the limits at the fragile-loop boundary `site`.
    ///
    /// # Errors
    ///
    /// [`NumError::Cancelled`] when the token has fired,
    /// [`NumError::BudgetExhausted`] when the deadline has passed, the
    /// check cap is consumed, or the `budget.spurious_expiry` fault site
    /// injects an expiry.
    pub fn check(&self, site: &str) -> NumResult<()> {
        if fault::should_fail(FAULT_SITE) {
            telemetry::counter_inc("budget.expirations");
            return Err(NumError::BudgetExhausted {
                site: site.to_string(),
            });
        }
        if !self.is_limited() {
            return Ok(());
        }
        telemetry::counter_inc("budget.checks");
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                telemetry::counter_inc("budget.expirations");
                return Err(NumError::Cancelled {
                    site: site.to_string(),
                });
            }
        }
        if let Some(state) = &self.budget {
            let expired = state
                .check_cap
                .is_some_and(|cap| state.checks.fetch_add(1, Ordering::Relaxed) >= cap)
                || state.deadline.is_some_and(|at| Instant::now() >= at);
            if expired {
                telemetry::counter_inc("budget.expirations");
                return Err(NumError::BudgetExhausted {
                    site: site.to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The fault injector is process-global: serialize arming tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unlimited_checks_always_pass() {
        let limits = ExecLimits::none();
        assert!(!limits.is_limited());
        for _ in 0..1000 {
            limits.check("anywhere").expect("unlimited");
        }
        assert_eq!(limits.checks_spent(), 0);
    }

    #[test]
    fn cancel_token_trips_every_clone() {
        let token = CancelToken::new();
        let limits = ExecLimits::none().with_cancel(token.clone());
        let shared = limits.clone();
        limits.check("scf").expect("not yet cancelled");
        token.cancel();
        let err = shared.check("scf").unwrap_err();
        assert_eq!(err, NumError::Cancelled { site: "scf".into() });
        assert!(err.is_budget_stop());
    }

    #[test]
    fn check_cap_trips_exactly_after_cap_checks() {
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(5));
        for i in 0..5 {
            limits
                .check("loop")
                .unwrap_or_else(|e| panic!("check {i}: {e}"));
        }
        let err = limits.check("loop").unwrap_err();
        assert_eq!(
            err,
            NumError::BudgetExhausted {
                site: "loop".into()
            }
        );
        // Clones share the counter: the cap is per run, not per handle.
        assert!(limits.clone().check("loop").is_err());
    }

    #[test]
    fn elapsed_deadline_trips() {
        let limits =
            ExecLimits::none().with_budget(Budget::unlimited().with_wall_clock(Duration::ZERO));
        assert!(matches!(
            limits.check("negf.energy").unwrap_err(),
            NumError::BudgetExhausted { .. }
        ));
    }

    #[test]
    fn spurious_expiry_fault_site_forces_expiry_even_unlimited() {
        let _g = lock();
        fault::arm(FaultPlan::seeded(9).with_site(FAULT_SITE, 1.0));
        let err = ExecLimits::none().check("mc.sample").unwrap_err();
        fault::disarm();
        assert_eq!(
            err,
            NumError::BudgetExhausted {
                site: "mc.sample".into()
            }
        );
    }
}
