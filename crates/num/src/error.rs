//! Error types shared by the numerical routines.

use std::error::Error;
use std::fmt;

/// Convenient result alias for fallible numerical routines.
pub type NumResult<T> = Result<T, NumError>;

/// Errors produced by the `gnr-num` linear algebra and analysis routines.
#[derive(Clone, Debug, PartialEq)]
pub enum NumError {
    /// A factorization or solve encountered a (numerically) singular matrix.
    SingularMatrix {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// Matrix/vector dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the offending shapes.
        detail: String,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm (or other convergence measure) at the last iterate.
        residual: f64,
    },
    /// The supplied interval/arguments do not bracket a root or are otherwise
    /// invalid for the algorithm.
    InvalidInput {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A residual or iterate became NaN/Inf; iterating further is pointless.
    NonFinite {
        /// Stage or quantity in which the non-finite value appeared.
        detail: String,
    },
    /// The execution budget (deadline or solve-unit cap) expired at `site`.
    BudgetExhausted {
        /// The fragile-loop boundary at which the expiry was observed.
        site: String,
    },
    /// The run's cancel token was triggered; observed at `site`.
    Cancelled {
        /// The fragile-loop boundary at which cancellation was observed.
        site: String,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            NumError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            NumError::NonFinite { detail } => {
                write!(f, "non-finite value encountered in {detail}")
            }
            NumError::BudgetExhausted { site } => {
                write!(f, "execution budget exhausted at {site}")
            }
            NumError::Cancelled { site } => write!(f, "run cancelled at {site}"),
        }
    }
}

impl Error for NumError {}

impl NumError {
    /// Builds a [`NumError::DimensionMismatch`] from a formatted detail string.
    pub fn dims(detail: impl Into<String>) -> Self {
        NumError::DimensionMismatch {
            detail: detail.into(),
        }
    }

    /// Builds a [`NumError::InvalidInput`] from a formatted detail string.
    pub fn invalid(detail: impl Into<String>) -> Self {
        NumError::InvalidInput {
            detail: detail.into(),
        }
    }

    /// Builds a [`NumError::NonFinite`] from a formatted detail string.
    pub fn non_finite(detail: impl Into<String>) -> Self {
        NumError::NonFinite {
            detail: detail.into(),
        }
    }

    /// `true` for the budget/cancellation variants: these must propagate
    /// unchanged through escalation ladders instead of triggering further
    /// (budget-burning) rescue attempts.
    pub fn is_budget_stop(&self) -> bool {
        matches!(
            self,
            NumError::BudgetExhausted { .. } | NumError::Cancelled { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 3");
        let e = NumError::dims("3x4 * 5x2");
        assert!(e.to_string().contains("3x4 * 5x2"));
        let e = NumError::NoConvergence {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn budget_stop_classification() {
        let budget = NumError::BudgetExhausted { site: "scf".into() };
        let cancel = NumError::Cancelled {
            site: "transient.step".into(),
        };
        assert!(budget.is_budget_stop());
        assert!(cancel.is_budget_stop());
        assert!(budget.to_string().contains("scf"));
        assert!(cancel.to_string().contains("transient.step"));
        assert!(!NumError::non_finite("dc newton residual").is_budget_stop());
        assert!(NumError::non_finite("dc newton residual")
            .to_string()
            .contains("non-finite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NumError>();
    }
}
