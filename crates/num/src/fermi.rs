//! Fermi–Dirac statistics helpers.
//!
//! All energies are in eV and temperatures in kelvin, matching the
//! conventions of the transport crates.

use crate::consts::K_B_EV;

/// Fermi–Dirac occupation `f(E) = 1 / (1 + exp((E - mu)/kT))`.
///
/// Saturates cleanly to 0/1 for arguments beyond ±40 kT, avoiding overflow.
///
/// ```
/// let f = gnr_num::fermi::fermi(0.0, 0.0, 300.0);
/// assert_eq!(f, 0.5);
/// ```
#[inline]
pub fn fermi(energy_ev: f64, mu_ev: f64, t_kelvin: f64) -> f64 {
    let kt = K_B_EV * t_kelvin;
    let x = (energy_ev - mu_ev) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Derivative `-df/dE`, the thermal broadening kernel (units 1/eV). Peaks at
/// `E = mu` with value `1/(4 kT)`.
#[inline]
pub fn fermi_broadening(energy_ev: f64, mu_ev: f64, t_kelvin: f64) -> f64 {
    let kt = K_B_EV * t_kelvin;
    let x = (energy_ev - mu_ev) / kt;
    if x.abs() > 40.0 {
        0.0
    } else {
        let e = x.exp();
        e / (kt * (1.0 + e).powi(2))
    }
}

/// Difference of source/drain occupations `f(E, mu1) - f(E, mu2)`, the
/// window function of the Landauer current integral.
#[inline]
pub fn fermi_window(energy_ev: f64, mu1_ev: f64, mu2_ev: f64, t_kelvin: f64) -> f64 {
    fermi(energy_ev, mu1_ev, t_kelvin) - fermi(energy_ev, mu2_ev, t_kelvin)
}

/// An energy range `[lo, hi]` outside which the Fermi window between `mu1`
/// and `mu2` is below ~`exp(-pad_kt)`; used to truncate transport integrals.
pub fn transport_window(mu1_ev: f64, mu2_ev: f64, t_kelvin: f64, pad_kt: f64) -> (f64, f64) {
    let kt = K_B_EV * t_kelvin;
    let lo = mu1_ev.min(mu2_ev) - pad_kt * kt;
    let hi = mu1_ev.max(mu2_ev) + pad_kt * kt;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_limits() {
        assert_eq!(fermi(-10.0, 0.0, 300.0), 1.0);
        assert_eq!(fermi(10.0, 0.0, 300.0), 0.0);
        assert_eq!(fermi(0.3, 0.3, 77.0), 0.5);
    }

    #[test]
    fn fermi_is_monotone_decreasing() {
        let mut prev = 2.0;
        for i in 0..200 {
            let e = -0.5 + i as f64 * 0.005;
            let f = fermi(e, 0.0, 300.0);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn broadening_peak_value() {
        let kt = K_B_EV * 300.0;
        let peak = fermi_broadening(0.0, 0.0, 300.0);
        assert!((peak - 1.0 / (4.0 * kt)).abs() / peak < 1e-12);
    }

    #[test]
    fn broadening_integrates_to_one() {
        // \int -df/dE dE = 1.
        let v =
            crate::quad::adaptive_simpson(|e| fermi_broadening(e, 0.1, 300.0), -1.0, 1.0, 1e-10)
                .unwrap();
        assert!((v - 1.0).abs() < 1e-8);
    }

    #[test]
    fn window_sign_and_support() {
        // mu1 > mu2: window positive between them.
        assert!(fermi_window(0.05, 0.1, 0.0, 300.0) > 0.0);
        assert!(fermi_window(0.05, 0.0, 0.1, 300.0) < 0.0);
        let (lo, hi) = transport_window(0.0, 0.4, 300.0, 10.0);
        assert!(lo < 0.0 && hi > 0.4);
        assert!(fermi_window(lo, 0.4, 0.0, 300.0).abs() < 1e-4);
        assert!(fermi_window(hi, 0.4, 0.0, 300.0).abs() < 1e-4);
    }

    #[test]
    fn window_integral_equals_bias() {
        // \int [f1 - f2] dE = mu1 - mu2 independent of T.
        let v =
            crate::quad::adaptive_simpson(|e| fermi_window(e, 0.25, 0.0, 300.0), -2.0, 2.0, 1e-10)
                .unwrap();
        assert!((v - 0.25).abs() < 1e-7);
    }
}
