//! Scalar root finding: bisection and Brent's method.
//!
//! Used for threshold-voltage extraction, operating-point location on
//! contour maps, and the charge-neutrality condition in the semi-analytic
//! device model.

use crate::error::{NumError, NumResult};

/// Finds a root of `f` on the bracketing interval `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if `f(a)` and `f(b)` do not bracket a
/// sign change, or [`NumError::NoConvergence`] if the interval fails to
/// shrink below `tol` within `max_iter` bisections.
pub fn bisect(
    f: impl Fn(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> NumResult<f64> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumError::invalid("interval does not bracket a root"));
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Err(NumError::NoConvergence {
        iterations: max_iter,
        residual: (b - a).abs(),
    })
}

/// Finds a root of `f` on `[a, b]` by Brent's method (inverse quadratic
/// interpolation with bisection fallback).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the interval does not bracket a
/// sign change, or [`NumError::NoConvergence`] on iteration exhaustion.
pub fn brent(
    f: impl Fn(f64) -> f64,
    a0: f64,
    b0: f64,
    tol: f64,
    max_iter: usize,
) -> NumResult<f64> {
    let (mut a, mut b) = (a0, b0);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumError::invalid("interval does not bracket a root"));
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = 0.25 * (3.0 * a + b);
        let within = (s - lo) * (s - b) < 0.0;
        let big_step = if mflag {
            (s - b).abs() >= 0.5 * (b - c).abs()
        } else {
            (s - b).abs() >= 0.5 * d.abs()
        };
        if !within || big_step {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c - b;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        iterations: max_iter,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_non_bracketing() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn brent_finds_cos_root() {
        let r = brent(f64::cos, 0.0, 3.0, 1e-14, 100).unwrap();
        assert!((r - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn brent_faster_than_bisection_on_smooth_function() {
        // Both should find the root; Brent with far fewer evals - here we
        // just confirm agreement to tight tolerance.
        let f = |x: f64| x.exp() - 3.0;
        let rb = brent(f, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((rb - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn brent_rejects_non_bracketing() {
        assert!(brent(|x| x * x + 0.5, -1.0, 1.0, 1e-12, 100).is_err());
    }

    #[test]
    fn brent_steep_function() {
        let f = |x: f64| (x - 0.123).powi(3) * 1e6;
        let r = brent(f, -1.0, 1.0, 1e-13, 200).unwrap();
        assert!((r - 0.123).abs() < 1e-6);
    }
}
