//! Dense real matrices with LU factorization and a cyclic-Jacobi symmetric
//! eigenvalue solver.
//!
//! Sized for the workspace's needs: band-structure Hamiltonians embedded as
//! real symmetric matrices (≤ ~100×100) and small MNA Jacobians in the
//! circuit simulator. Row-major storage.

use crate::error::{NumError, NumResult};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use gnr_num::Matrix;
///
/// let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let b = vec![1.0, 2.0];
/// let x = a.solve(&b).expect("well-conditioned system");
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to the entry at `(i, j)` (stamping, as used by MNA assembly).
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += self.get(i, j) * xj;
            }
            *yi = acc;
        }
        y
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] if a pivot underflows, and
    /// [`NumError::DimensionMismatch`] for non-square input.
    pub fn lu(&self) -> NumResult<LuFactors> {
        if self.rows != self.cols {
            return Err(NumError::dims(format!(
                "lu requires square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;
        for k in 0..n {
            // Partial pivot: find the largest |entry| in column k at/below k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < f64::MIN_POSITIVE * 16.0 {
                return Err(NumError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(LuFactors { n, lu, perm, sign })
    }

    /// Solves `self * x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures; see [`Matrix::lu`].
    pub fn solve(&self, b: &[f64]) -> NumResult<Vec<f64>> {
        if b.len() != self.rows {
            return Err(NumError::dims(format!(
                "rhs length {} does not match {} rows",
                b.len(),
                self.rows
            )));
        }
        Ok(self.lu()?.solve(b))
    }

    /// Matrix inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] for singular input.
    pub fn inverse(&self) -> NumResult<Matrix> {
        let f = self.lu()?;
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = f.solve(&e);
            for (i, &v) in col.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Determinant via LU factorization; zero if the matrix is singular.
    pub fn det(&self) -> f64 {
        match self.lu() {
            Ok(f) => {
                let n = f.n;
                let mut d = f.sign;
                for k in 0..n {
                    d *= f.lu[k * n + k];
                }
                d
            }
            Err(_) => 0.0,
        }
    }

    /// Eigen-decomposition of a *symmetric* matrix by the cyclic Jacobi
    /// method. Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted
    /// ascending and eigenvectors as matrix columns.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] for non-square input and
    /// [`NumError::NoConvergence`] if the off-diagonal norm fails to vanish
    /// (does not occur for genuinely symmetric input).
    pub fn sym_eigen(&self) -> NumResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(NumError::dims("sym_eigen requires a square matrix"));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        for sweep in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a.get(i, j).powi(2);
                }
            }
            if off.sqrt() < 1e-13 * (1.0 + self.max_abs()) {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&i, &j| a.get(i, i).partial_cmp(&a.get(j, j)).unwrap());
                let evals: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
                let evecs = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
                return Ok((evals, evecs));
            }
            let _ = sweep;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = 0.5 * (aqq - app) / apq;
                    // Numerically stable tangent of the rotation angle.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        Err(NumError::NoConvergence {
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }
}

/// The result of an LU factorization with partial pivoting, reusable for
/// multiple right-hand sides.
#[derive(Clone, Debug)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Forward substitution on the permuted rhs.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[i * n + j] * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[i * n + j] * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_roundtrip() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![3.0, 6.0, -4.0],
            vec![2.0, 1.0, 8.0],
        ]);
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(NumError::SingularMatrix { .. })));
        assert_eq!(a.det(), 0.0);
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Matrix::from_rows(&[
            vec![2.0, 5.0, 7.0],
            vec![0.0, 3.0, -1.0],
            vec![0.0, 0.0, 4.0],
        ]);
        assert!((a.det() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Swapping two rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((a.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eigen_two_by_two() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (evals, evecs) = a.sym_eigen().unwrap();
        assert!((evals[0] - 1.0).abs() < 1e-10);
        assert!((evals[1] - 3.0).abs() < 1e-10);
        // A v = lambda v for each column.
        for (k, &ev) in evals.iter().enumerate() {
            let v: Vec<f64> = (0..2).map(|i| evecs.get(i, k)).collect();
            let av = a.matvec(&v);
            for i in 0..2 {
                assert!((av[i] - ev * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sym_eigen_tridiagonal_chain() {
        // Eigenvalues of the n-site 1D tight-binding chain:
        // lambda_k = 2 cos(k pi / (n+1)), a classic analytic check.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { 1.0 } else { 0.0 });
        let (evals, _) = a.sym_eigen().unwrap();
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (got, want) in evals.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]])
        );
    }

    #[test]
    fn operators() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, -1.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[vec![4.0, 1.0]]));
        assert_eq!(&a - &b, Matrix::from_rows(&[vec![-2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let f = a.lu().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -3.0]] {
            let x = f.solve(&b);
            let r = a.matvec(&x);
            assert!((r[0] - b[0]).abs() < 1e-12 && (r[1] - b[1]).abs() < 1e-12);
        }
    }
}
