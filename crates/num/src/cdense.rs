//! Dense complex matrices: the workhorse of the NEGF kernels.
//!
//! Provides LU factorization with partial pivoting (solve/inverse), products,
//! adjoints, traces, and a Hermitian eigenvalue solver implemented by
//! embedding the `n×n` Hermitian matrix into a `2n×2n` real symmetric one.

use crate::complex::{c64, Complex64};
use crate::dense::Matrix;
use crate::error::{NumError, NumResult};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use gnr_num::{c64, CMatrix};
///
/// let h = CMatrix::from_rows(&[
///     vec![c64(0.0, 0.0), c64(1.0, 0.0)],
///     vec![c64(1.0, 0.0), c64(0.0, 0.0)],
/// ]);
/// let (evals, _) = h.herm_eigen().expect("Hermitian input");
/// assert!((evals[0] + 1.0).abs() < 1e-10 && (evals[1] - 1.0).abs() < 1e-10);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex64::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Lifts a real matrix into the complex plane.
    pub fn from_real(m: &Matrix) -> Self {
        CMatrix::from_fn(m.rows(), m.cols(), |i, j| c64(m.get(i, j), 0.0))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to the entry at `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: Complex64) {
        self.data[i * self.cols + j] += v;
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i).conj())
    }

    /// Plain transpose `Aᵀ` (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                let row = k * rhs.cols;
                let orow = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[orow + j] += a * rhs.data[row + j];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![Complex64::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                acc += self.get(i, j) * xj;
            }
            *yi = acc;
        }
        y
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert_eq!(self.rows, self.cols, "trace requires square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, z| m.max(z.norm()))
    }

    /// `self - rhs` Frobenius distance; convergence measure for iterative
    /// surface Green's function schemes.
    pub fn distance(&self, rhs: &CMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// In-place LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] if a pivot vanishes and
    /// [`NumError::DimensionMismatch`] for non-square input.
    pub fn lu(&self) -> NumResult<CLuFactors> {
        if self.rows != self.cols {
            return Err(NumError::dims(format!(
                "lu requires square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut best = lu[k * n + k].norm_sqr();
            for i in (k + 1)..n {
                let v = lu[i * n + k].norm_sqr();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(NumError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot_inv = lu[k * n + k].recip();
            for i in (k + 1)..n {
                let factor = lu[i * n + k] * pivot_inv;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    let t = lu[k * n + j];
                    lu[i * n + j] -= factor * t;
                }
            }
        }
        Ok(CLuFactors { n, lu, perm })
    }

    /// Solves `self * x = b`.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures; see [`CMatrix::lu`].
    pub fn solve(&self, b: &[Complex64]) -> NumResult<Vec<Complex64>> {
        if b.len() != self.rows {
            return Err(NumError::dims(format!(
                "rhs length {} does not match {} rows",
                b.len(),
                self.rows
            )));
        }
        Ok(self.lu()?.solve(b))
    }

    /// Matrix inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] for singular input.
    pub fn inverse(&self) -> NumResult<CMatrix> {
        let f = self.lu()?;
        let n = self.rows;
        let mut out = CMatrix::zeros(n, n);
        let mut e = vec![Complex64::ZERO; n];
        let mut col = vec![Complex64::ZERO; n];
        for j in 0..n {
            e.fill(Complex64::ZERO);
            e[j] = Complex64::ONE;
            f.solve_into(&e, &mut col);
            for (i, &v) in col.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Solves `self * X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] for singular `self` and
    /// [`NumError::DimensionMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &CMatrix) -> NumResult<CMatrix> {
        if b.rows != self.rows {
            return Err(NumError::dims(format!(
                "rhs has {} rows, expected {}",
                b.rows, self.rows
            )));
        }
        let f = self.lu()?;
        let n = self.rows;
        let mut out = CMatrix::zeros(n, b.cols);
        let mut col = vec![Complex64::ZERO; n];
        let mut x = vec![Complex64::ZERO; n];
        for j in 0..b.cols {
            for (i, ci) in col.iter_mut().enumerate() {
                *ci = b.get(i, j);
            }
            f.solve_into(&col, &mut x);
            for (i, &v) in x.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Hermiticity defect `max |A - A†|`; zero for Hermitian matrices.
    pub fn hermiticity_defect(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in i..self.cols {
                let d = (self.get(i, j) - self.get(j, i).conj()).norm();
                worst = worst.max(d);
            }
        }
        worst
    }

    /// Eigen-decomposition of a *Hermitian* matrix.
    ///
    /// The `n×n` Hermitian problem is embedded into the `2n×2n` real
    /// symmetric matrix `[[Re A, -Im A], [Im A, Re A]]`, whose spectrum is
    /// that of `A` with each eigenvalue doubled. Returns `(eigenvalues,
    /// eigenvectors)` sorted ascending, eigenvectors as columns.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if the matrix is not Hermitian
    /// within tolerance, or propagates the real solver's failures.
    pub fn herm_eigen(&self) -> NumResult<(Vec<f64>, CMatrix)> {
        if self.rows != self.cols {
            return Err(NumError::dims("herm_eigen requires a square matrix"));
        }
        let tol = 1e-9 * (1.0 + self.max_abs());
        if self.hermiticity_defect() > tol {
            return Err(NumError::invalid("matrix is not Hermitian"));
        }
        let n = self.rows;
        let big = Matrix::from_fn(2 * n, 2 * n, |i, j| {
            let (bi, ii) = (i / n, i % n);
            let (bj, jj) = (j / n, j % n);
            let z = self.get(ii, jj);
            match (bi, bj) {
                (0, 0) | (1, 1) => z.re,
                (0, 1) => -z.im,
                (1, 0) => z.im,
                _ => unreachable!(),
            }
        });
        let (evals, evecs) = big.sym_eigen()?;
        // Each eigenvalue appears twice; take every other one and rebuild the
        // complex eigenvector from the paired real/imag blocks.
        let mut out_vals = Vec::with_capacity(n);
        let mut out_vecs = CMatrix::zeros(n, n);
        let mut k = 0;
        let mut col = 0;
        while col < n {
            out_vals.push(evals[k]);
            for i in 0..n {
                out_vecs.set(i, col, c64(evecs.get(i, k), evecs.get(n + i, k)));
            }
            // Skip the degenerate partner produced by the embedding.
            k += 2;
            col += 1;
        }
        Ok((out_vals, out_vecs))
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl AddAssign<&CMatrix> for CMatrix {
    /// Elementwise `self += rhs` — the same operations (and bit patterns)
    /// as `&self + rhs`, without allocating the result.
    fn add_assign(&mut self, rhs: &CMatrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&CMatrix> for CMatrix {
    /// Elementwise `self -= rhs` — the same operations (and bit patterns)
    /// as `&self - rhs`, without allocating the result.
    fn sub_assign(&mut self, rhs: &CMatrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

/// LU factors of a complex matrix, reusable for multiple right-hand sides.
#[derive(Clone, Debug)]
pub struct CLuFactors {
    n: usize,
    lu: Vec<Complex64>,
    perm: Vec<usize>,
}

impl CLuFactors {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = vec![Complex64::ZERO; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// [`Self::solve`] into a caller-provided buffer — identical
    /// substitution arithmetic, no allocation. The hot RGF and decimation
    /// loops invert many small blocks; reusing one scratch vector keeps
    /// those column solves off the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` does not match the factored
    /// dimension.
    pub fn solve_into(&self, b: &[Complex64], x: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        let n = self.n;
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[i * n + j] * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[i * n + j] * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_roundtrip() {
        let a = CMatrix::from_rows(&[
            vec![c64(2.0, 1.0), c64(0.5, -0.5), c64(0.0, 0.0)],
            vec![c64(1.0, 0.0), c64(3.0, 0.0), c64(0.0, 1.0)],
            vec![c64(0.0, -1.0), c64(1.0, 1.0), c64(2.5, 0.0)],
        ]);
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!((id.get(i, j) - expect).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_matvec() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 1.0), c64(2.0, 0.0)],
            vec![c64(0.0, -1.0), c64(1.0, 0.5)],
        ]);
        let x_true = vec![c64(0.3, -0.2), c64(1.5, 0.7)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((*xs - *xt).norm() < 1e-12);
        }
    }

    #[test]
    fn adjoint_properties() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 2.0), c64(3.0, -1.0)],
            vec![c64(0.0, 1.0), c64(2.0, 2.0)],
        ]);
        let adj = a.adjoint();
        assert_eq!(adj.get(0, 1), c64(0.0, -1.0));
        assert_eq!(adj.get(1, 0), c64(3.0, 1.0));
        // (AB)† = B†A†
        let b = CMatrix::identity(2).scale(c64(0.0, 1.0));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.distance(&rhs) < 1e-14);
    }

    #[test]
    fn trace_is_sum_of_diagonal() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 1.0), c64(9.0, 9.0)],
            vec![c64(9.0, 9.0), c64(2.0, -3.0)],
        ]);
        assert_eq!(a.trace(), c64(3.0, -2.0));
    }

    #[test]
    fn hermitian_eigen_pauli_y() {
        // sigma_y = [[0, -i], [i, 0]] has eigenvalues -1, +1.
        let sy = CMatrix::from_rows(&[
            vec![Complex64::ZERO, c64(0.0, -1.0)],
            vec![c64(0.0, 1.0), Complex64::ZERO],
        ]);
        let (evals, evecs) = sy.herm_eigen().unwrap();
        assert!((evals[0] + 1.0).abs() < 1e-10);
        assert!((evals[1] - 1.0).abs() < 1e-10);
        for (k, &ev) in evals.iter().enumerate() {
            let v: Vec<Complex64> = (0..2).map(|i| evecs.get(i, k)).collect();
            let av = sy.matvec(&v);
            let norm_v: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            assert!(norm_v > 1e-8, "eigenvector must be nonzero");
            for i in 0..2 {
                assert!((av[i] - v[i].scale(ev)).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn hermitian_eigen_rejects_non_hermitian() {
        let a = CMatrix::from_rows(&[
            vec![c64(0.0, 0.0), c64(1.0, 0.0)],
            vec![c64(2.0, 0.0), c64(0.0, 0.0)],
        ]);
        assert!(a.herm_eigen().is_err());
    }

    #[test]
    fn singular_reports_error() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(2.0, 0.0)],
            vec![c64(2.0, 0.0), c64(4.0, 0.0)],
        ]);
        assert!(matches!(a.lu(), Err(NumError::SingularMatrix { .. })));
    }

    #[test]
    fn solve_matrix_inverse_consistency() {
        let a = CMatrix::from_rows(&[
            vec![c64(4.0, 0.5), c64(1.0, -1.0)],
            vec![c64(1.0, 1.0), c64(3.0, 0.0)],
        ]);
        let x = a.solve_matrix(&CMatrix::identity(2)).unwrap();
        let inv = a.inverse().unwrap();
        assert!(x.distance(&inv) < 1e-12);
    }

    #[test]
    fn herm_eigen_larger_hamiltonian() {
        // 6-site complex ring with flux: H[i][i+1] = e^{i phi}. Hermitian.
        let n = 6;
        let phi = 0.37f64;
        let t = c64(phi.cos(), phi.sin());
        let mut h = CMatrix::zeros(n, n);
        for i in 0..n {
            let j = (i + 1) % n;
            h.set(i, j, t);
            h.set(j, i, t.conj());
        }
        let (evals, _) = h.herm_eigen().unwrap();
        // Analytic: 2 cos(2 pi k / n + phi)
        let mut expect: Vec<f64> = (0..n)
            .map(|k| 2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64 + phi).cos())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in evals.iter().zip(&expect) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }
}
