//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256++ generator (Blackman & Vigna) seeded
//! through SplitMix64, so a single `u64` seed expands to a full 256-bit
//! state with no weak all-zero risk. The workspace forbids external
//! crates; this module replaces `rand` for the Monte Carlo variability
//! study (§4 of the paper) and any randomized test input.
//!
//! Reproducibility contract: for a fixed seed, the output stream of every
//! method is stable across runs, platforms, and releases. The golden-value
//! tests in `crates/num/tests/rng.rs` pin the stream; changing the
//! algorithm is a breaking change to every recorded Monte Carlo artifact.
//!
//! # Example
//!
//! ```
//! use gnr_num::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let u = rng.uniform();          // [0, 1)
//! let g = rng.normal(0.0, 1.0);   // Gaussian via Box–Muller
//! assert!((0.0..1.0).contains(&u));
//! assert!(g.is_finite());
//!
//! // Same seed, same stream.
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.uniform().to_bits(), u.to_bits());
//! ```

/// Seedable xoshiro256++ pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
    /// Spare Gaussian deviate from the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

/// SplitMix64 step — used only to expand the seed into the initial state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// (unbiased for every `n`). `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below requires n > 0");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Standard Gaussian deviate scaled to `mean + sd * z` via the polar
    /// Box–Muller transform; the paired deviate is cached for the next call.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return mean + sd * z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * k);
                return mean + sd * (u * k);
            }
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen reference into a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }

    /// Fills a buffer with uniform `[0, 1)` samples.
    pub fn fill_uniform(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.uniform();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = rng.below(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "seed 11 permutes");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[5]).is_some());
    }
}
