//! Deterministic, seeded fault injection for exercising the recovery
//! subsystem (test/bench-only).
//!
//! The injector is a process-global plan mapping *site* labels (e.g.
//! `"scf"`, `"newton"`, `"linear"`) to failure probabilities. Solvers probe
//! their site with [`should_fail`] at the top of a recovery attempt; when
//! the probe fires, the solver behaves exactly as if that attempt had
//! diverged, which forces its escalation ladder to engage. Disarmed (the
//! default), a probe is a single relaxed atomic load, so the hot path pays
//! nothing in production.
//!
//! Determinism: every site draws from its own [`Rng`](crate::rng::Rng)
//! stream, seeded from the plan seed and the site label, so the outcome
//! sequence of one site is independent of how often other sites probe.
//!
//! Arming mutates process-global state: tests that arm a plan must
//! serialize against each other and [`disarm`] when done.

use crate::rng::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Every fault site probed anywhere in the workspace. The chaos-soak CI
/// step enumerates this list and runs the fault-tolerance suite with each
/// site armed; a new `should_fail("...")` call must be registered here so
/// the soak exercises it.
pub const REGISTERED_SITES: &[&str] = &[
    "scf",
    "newton",
    "newton-dc",
    "dc.source_stepping",
    "linear",
    "characterize",
    "negf.surface_cache",
    "negf.mode_space.fallback",
    "checkpoint.corrupt",
    "budget.spurious_expiry",
    "table_cache.corrupt",
];

/// A seeded fault-injection plan: per-site failure probabilities.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: HashMap<String, SiteState>,
}

#[derive(Debug)]
struct SiteState {
    probability: f64,
    rng: Rng,
    probes: usize,
    injected: usize,
}

/// FNV-1a over the site label, used to give every site its own RNG stream.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: HashMap::new(),
        }
    }

    /// Adds (or replaces) a site with the given failure probability in
    /// `[0, 1]`; values outside the range are clamped.
    pub fn with_site(mut self, site: &str, probability: f64) -> Self {
        let p = if probability.is_nan() {
            0.0
        } else {
            probability.clamp(0.0, 1.0)
        };
        self.sites.insert(
            site.to_string(),
            SiteState {
                probability: p,
                rng: Rng::seed_from_u64(self.seed ^ site_hash(site)),
                probes: 0,
                injected: 0,
            },
        );
        self
    }
}

fn with_plan<T>(f: impl FnOnce(&mut Option<FaultPlan>) -> T) -> T {
    let mut guard = PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    f(&mut guard)
}

/// Arms the injector with `plan`, replacing any previous plan.
pub fn arm(plan: FaultPlan) {
    with_plan(|p| *p = Some(plan));
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the injector and drops the plan.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    with_plan(|p| *p = None);
}

/// `true` while a plan is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Probes `site`: returns `true` when the armed plan injects a fault here.
/// Always `false` (one atomic load) when disarmed or the site is unlisted.
pub fn should_fail(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    with_plan(|plan| {
        let Some(plan) = plan.as_mut() else {
            return false;
        };
        let Some(state) = plan.sites.get_mut(site) else {
            return false;
        };
        state.probes += 1;
        let fire = state.rng.uniform() < state.probability;
        if fire {
            state.injected += 1;
        }
        fire
    })
}

/// Number of faults injected at `site` since the plan was armed.
pub fn injection_count(site: &str) -> usize {
    with_plan(|plan| {
        plan.as_ref()
            .and_then(|p| p.sites.get(site))
            .map_or(0, |s| s.injected)
    })
}

/// Number of probes seen at `site` since the plan was armed.
pub fn probe_count(site: &str) -> usize {
    with_plan(|plan| {
        plan.as_ref()
            .and_then(|p| p.sites.get(site))
            .map_or(0, |s| s.probes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The injector is process-global: serialize the tests that arm it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_probes_never_fire() {
        let _g = lock();
        disarm();
        assert!(!is_armed());
        for _ in 0..100 {
            assert!(!should_fail("anything"));
        }
    }

    #[test]
    fn armed_plan_fires_deterministically() {
        let _g = lock();
        let run = || -> Vec<bool> {
            arm(FaultPlan::seeded(42).with_site("scf", 0.5));
            let fired = (0..64).map(|_| should_fail("scf")).collect();
            disarm();
            fired
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same outcome sequence");
        assert!(a.iter().any(|&f| f), "p = 0.5 fires within 64 probes");
        assert!(a.iter().any(|&f| !f), "p = 0.5 passes within 64 probes");
    }

    #[test]
    fn unlisted_sites_and_extremes() {
        let _g = lock();
        arm(FaultPlan::seeded(1)
            .with_site("always", 1.0)
            .with_site("never", 0.0));
        assert!(!should_fail("unlisted"));
        for _ in 0..10 {
            assert!(should_fail("always"));
            assert!(!should_fail("never"));
        }
        assert_eq!(injection_count("always"), 10);
        assert_eq!(probe_count("never"), 10);
        assert_eq!(injection_count("never"), 0);
        disarm();
        assert_eq!(injection_count("always"), 0, "disarm drops the counters");
    }

    #[test]
    fn site_streams_are_independent() {
        let _g = lock();
        // Interleaving probes of a second site must not disturb the first
        // site's outcome sequence.
        arm(FaultPlan::seeded(7).with_site("a", 0.5).with_site("b", 0.5));
        let solo: Vec<bool> = (0..32).map(|_| should_fail("a")).collect();
        disarm();
        arm(FaultPlan::seeded(7).with_site("a", 0.5).with_site("b", 0.5));
        let interleaved: Vec<bool> = (0..32)
            .map(|_| {
                let _ = should_fail("b");
                should_fail("a")
            })
            .collect();
        disarm();
        assert_eq!(solo, interleaved);
    }
}
