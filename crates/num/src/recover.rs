//! Escalation ladders and degraded-result reporting for fragile solves.
//!
//! The solver stack chains several numerically fragile loops (NEGF⇄Poisson
//! SCF, SPICE Newton, Krylov linear solves). Each of them gets a *ladder*
//! of recovery policies: the nominal attempt first, then progressively more
//! conservative retries. [`EscalationLadder`] runs the rungs in order,
//! returns the first converged result, and otherwise keeps the best
//! *degraded* (best-effort, not-converged) result seen. Every run yields a
//! [`SolveReport`] recording which rung won, every attempt made, and the
//! residual trajectory, so callers can distinguish a clean solve from a
//! rescued one.
//!
//! The nominal rung of every ladder must reproduce the pre-ladder call
//! byte for byte: recovery logic only runs on paths that previously
//! returned an error, so fault-free results stay bit-identical.

use crate::budget::ExecLimits;
use crate::error::{NumError, NumResult};
use crate::solver::{bicgstab_solve, cg_solve, IterControl, SolveStats};
use crate::sparse::CsrMatrix;
use crate::telemetry;

/// How trustworthy a ladder result is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quality {
    /// A rung met its convergence target.
    Converged,
    /// No rung converged; the result is the best residual seen and must be
    /// flagged downstream.
    Degraded,
    /// Every rung failed outright; no usable result.
    Failed,
}

/// One attempt at one rung of a ladder.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Rung label (e.g. `"nominal"`, `"mixing-backoff"`, `"sparse-lu"`).
    pub policy: String,
    /// Iterations the attempt used (0 when unknown).
    pub iterations: usize,
    /// Residual at the end of the attempt (NaN when unknown).
    pub residual: f64,
    /// Error message when the attempt failed outright.
    pub error: Option<String>,
}

/// Record of a laddered solve: what was tried, what won, how good it is.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Overall outcome quality.
    pub quality: Quality,
    /// Label of the rung whose result was kept, if any.
    pub policy_used: Option<String>,
    /// Every attempt, in execution order.
    pub attempts: Vec<Attempt>,
    /// Final residual of each attempt, in execution order (NaN for
    /// attempts that died before producing one).
    pub residual_trajectory: Vec<f64>,
}

impl SolveReport {
    /// Report for a single converged attempt — what a strict (ladder-free)
    /// solve produces.
    pub fn single(policy: impl Into<String>, iterations: usize, residual: f64) -> Self {
        let policy = policy.into();
        SolveReport {
            quality: Quality::Converged,
            policy_used: Some(policy.clone()),
            attempts: vec![Attempt {
                policy,
                iterations,
                residual,
                error: None,
            }],
            residual_trajectory: vec![residual],
        }
    }

    /// `true` when a rung fully converged.
    pub fn converged(&self) -> bool {
        self.quality == Quality::Converged
    }

    /// `true` when the kept result is best-effort only.
    pub fn degraded(&self) -> bool {
        self.quality == Quality::Degraded
    }

    /// `true` when the nominal (first) rung won: the ladder added nothing.
    pub fn nominal(&self) -> bool {
        self.quality == Quality::Converged && self.attempts.len() == 1
    }
}

/// Outcome of a single ladder attempt, as classified by the attempt
/// closure.
#[derive(Debug)]
pub enum AttemptOutcome<T> {
    /// The attempt met its convergence target.
    Converged(T),
    /// The attempt produced a usable best-effort result without meeting
    /// the target.
    Degraded(T),
    /// The attempt produced nothing usable.
    Failed(String),
}

/// One classified attempt: the outcome plus its iteration/residual stats.
#[derive(Debug)]
pub struct AttemptReport<T> {
    /// What the attempt produced.
    pub outcome: AttemptOutcome<T>,
    /// Iterations used (0 when unknown).
    pub iterations: usize,
    /// Final residual (NaN when unknown).
    pub residual: f64,
}

impl<T> AttemptReport<T> {
    /// A converged attempt.
    pub fn converged(value: T, iterations: usize, residual: f64) -> Self {
        AttemptReport {
            outcome: AttemptOutcome::Converged(value),
            iterations,
            residual,
        }
    }

    /// A best-effort, not-converged attempt.
    pub fn degraded(value: T, iterations: usize, residual: f64) -> Self {
        AttemptReport {
            outcome: AttemptOutcome::Degraded(value),
            iterations,
            residual,
        }
    }

    /// A failed attempt.
    pub fn failed(error: impl Into<String>) -> Self {
        AttemptReport {
            outcome: AttemptOutcome::Failed(error.into()),
            iterations: 0,
            residual: f64::NAN,
        }
    }
}

/// An ordered sequence of named retry policies.
///
/// `P` is the per-rung policy payload (e.g. an options struct); the caller
/// supplies a closure that runs one attempt under a given policy.
#[derive(Clone, Debug, Default)]
pub struct EscalationLadder<P> {
    rungs: Vec<(String, P)>,
}

impl<P> EscalationLadder<P> {
    /// An empty ladder.
    pub fn new() -> Self {
        EscalationLadder { rungs: Vec::new() }
    }

    /// Appends a rung. The first rung should be the nominal policy.
    pub fn rung(mut self, label: impl Into<String>, policy: P) -> Self {
        self.rungs.push((label.into(), policy));
        self
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` when the ladder has no rungs.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Runs rungs in order until one converges. Returns the converged
    /// value, or — if none converged — the lowest-residual degraded value,
    /// or `None` if every rung failed outright. The report records every
    /// attempt either way.
    pub fn run<T>(&self, mut attempt: impl FnMut(&str, &P) -> AttemptReport<T>) -> RunOutcome<T> {
        let mut attempts = Vec::with_capacity(self.rungs.len());
        let mut best_degraded: Option<(T, f64, String)> = None;
        for (label, policy) in &self.rungs {
            let rep = attempt(label, policy);
            let mut record = Attempt {
                policy: label.clone(),
                iterations: rep.iterations,
                residual: rep.residual,
                error: None,
            };
            match rep.outcome {
                AttemptOutcome::Converged(value) => {
                    attempts.push(record);
                    let trajectory = attempts.iter().map(|a| a.residual).collect();
                    return RunOutcome {
                        value: Some(value),
                        report: SolveReport {
                            quality: Quality::Converged,
                            policy_used: Some(label.clone()),
                            attempts,
                            residual_trajectory: trajectory,
                        },
                    };
                }
                AttemptOutcome::Degraded(value) => {
                    // Keep the degraded result with the smallest residual
                    // (NaN residuals never replace a finite one).
                    let better = match &best_degraded {
                        None => true,
                        Some((_, r, _)) => rep.residual < *r,
                    };
                    if better {
                        best_degraded = Some((value, rep.residual, label.clone()));
                    }
                }
                AttemptOutcome::Failed(err) => record.error = Some(err),
            }
            attempts.push(record);
        }
        let trajectory: Vec<f64> = attempts.iter().map(|a| a.residual).collect();
        match best_degraded {
            Some((value, _, label)) => RunOutcome {
                value: Some(value),
                report: SolveReport {
                    quality: Quality::Degraded,
                    policy_used: Some(label),
                    attempts,
                    residual_trajectory: trajectory,
                },
            },
            None => RunOutcome {
                value: None,
                report: SolveReport {
                    quality: Quality::Failed,
                    policy_used: None,
                    attempts,
                    residual_trajectory: trajectory,
                },
            },
        }
    }
}

/// Result of [`EscalationLadder::run`]: the kept value (if any) plus the
/// full report.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Converged or best-degraded value; `None` when every rung failed.
    pub value: Option<T>,
    /// Record of every attempt.
    pub report: SolveReport,
}

/// One isolated per-sample fault in a sweep (Monte Carlo, universe
/// characterization, …).
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Sample / cell index within the sweep.
    pub sample: usize,
    /// Pipeline stage that faulted (e.g. `"characterize"`, `"ring"`).
    pub stage: String,
    /// Human-readable error description.
    pub error: String,
}

/// Accumulated fault events of a sweep that isolates per-sample failures
/// instead of aborting.
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Records one fault.
    pub fn record(&mut self, sample: usize, stage: impl Into<String>, error: impl Into<String>) {
        self.events.push(FaultEvent {
            sample,
            stage: stage.into(),
            error: error.into(),
        });
    }

    /// All recorded events, in occurrence order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of recorded faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no fault was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that occurred in the given stage.
    pub fn in_stage<'a>(&'a self, stage: &'a str) -> impl Iterator<Item = &'a FaultEvent> {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    /// Appends every event of `other`, preserving its order.
    pub fn extend(&mut self, other: FaultLog) {
        self.events.extend(other.events);
    }
}

/// A [`FaultLog`] behind `Arc<Mutex<…>>`: cheap to clone, safe to record
/// into from pool workers.
///
/// Raw concurrent recording preserves *completeness* but not order (the
/// interleaving depends on scheduling). Deterministic sweeps therefore
/// collect per-sample faults locally and [`merge`](SharedFaultLog::merge)
/// the shards in sample order during the ordered reduction; direct
/// [`record`](SharedFaultLog::record) is for paths where order is not part
/// of the pinned contract.
#[derive(Clone, Debug, Default)]
pub struct SharedFaultLog {
    inner: std::sync::Arc<std::sync::Mutex<FaultLog>>,
}

impl SharedFaultLog {
    /// An empty shared log.
    pub fn new() -> Self {
        SharedFaultLog::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultLog> {
        // A poisoned mutex only means a worker panicked mid-record; the log
        // itself (a Vec of owned events) is still structurally sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one fault.
    pub fn record(&self, sample: usize, stage: impl Into<String>, error: impl Into<String>) {
        self.lock().record(sample, stage, error);
    }

    /// Appends an already-ordered shard of events.
    pub fn merge(&self, shard: FaultLog) {
        self.lock().extend(shard);
    }

    /// A point-in-time copy of the log.
    pub fn snapshot(&self) -> FaultLog {
        self.lock().clone()
    }

    /// Drains the log, returning everything recorded so far.
    pub fn take(&self) -> FaultLog {
        std::mem::take(&mut *self.lock())
    }

    /// Number of recorded faults.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no fault was recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Solves `A x = b` with an escalation ladder: preconditioned CG (for
/// `symmetric` operators; skipped otherwise), then BiCGSTAB, then a
/// sparse direct LU ([`crate::sparse_lu`]). The direct rung works at any
/// dimension — it factors the CSR pattern in place of the historical
/// `to_dense()` fallback, which was capped at 768 unknowns because the
/// O(n³) densification dominated beyond that.
///
/// The first rung issues exactly the call sites used before the ladder
/// existed, so fault-free results are bit-identical to plain
/// [`cg_solve`]/[`bicgstab_solve`].
///
/// The budget is probed before every ladder rung (site `"linear.ladder"`),
/// so an expired budget or cancelled token stops the escalation instead of
/// burning the remaining budget on rescue rungs. Pass
/// [`ExecLimits::none`] (or `ctx.limits()` from an unlimited context) for
/// the plain unbudgeted call, bit for bit.
///
/// # Errors
///
/// Returns the first rung's error when every rung fails, alongside the
/// report describing each failed attempt.
pub fn solve_linear_robust(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    ctrl: IterControl,
    symmetric: bool,
    limits: &ExecLimits,
) -> (NumResult<(Vec<f64>, SolveStats)>, SolveReport) {
    #[derive(Clone, Copy)]
    enum Rung {
        Cg,
        Bicgstab,
        SparseLu,
    }
    let mut ladder = EscalationLadder::new();
    if symmetric {
        ladder = ladder.rung("cg", Rung::Cg);
    }
    ladder = ladder.rung("bicgstab", Rung::Bicgstab);
    ladder = ladder.rung("sparse-lu", Rung::SparseLu);

    let mut first_err: Option<NumError> = None;
    let mut stop_err: Option<NumError> = None;
    let outcome = ladder.run(|label, rung| {
        if stop_err.is_some() {
            return AttemptReport::failed("skipped: budget stop");
        }
        if let Err(e) = limits.check("linear.ladder") {
            let msg = e.to_string();
            stop_err = Some(e);
            return AttemptReport::failed(msg);
        }
        if telemetry::is_armed() {
            telemetry::counter_inc(&format!("linear.{label}.calls"));
        }
        let injected = crate::fault::should_fail("linear");
        let result = if injected {
            Err(NumError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            })
        } else {
            match rung {
                Rung::Cg => cg_solve(a, b, x0, ctrl),
                Rung::Bicgstab => bicgstab_solve(a, b, x0, ctrl),
                Rung::SparseLu => sparse_lu_attempt(a, b, ctrl),
            }
        };
        match result {
            Ok((x, stats)) => {
                if telemetry::is_armed() {
                    telemetry::counter_add(
                        &format!("linear.{label}.iterations"),
                        stats.iterations as u64,
                    );
                }
                AttemptReport::converged((x, stats), stats.iterations, stats.residual)
            }
            Err(err) => {
                if telemetry::is_armed() {
                    telemetry::counter_inc(&format!("linear.{label}.failures"));
                }
                if first_err.is_none() {
                    first_err = Some(err.clone());
                }
                AttemptReport::failed(err.to_string())
            }
        }
    });
    if outcome.report.attempts.len() > 1 {
        telemetry::counter_add(
            "linear.ladder.escalations",
            (outcome.report.attempts.len() - 1) as u64,
        );
    }
    match outcome.value {
        Some(solution) => (Ok(solution), outcome.report),
        None => {
            // A budget stop outranks solver errors: the caller must see
            // that the ladder was cut short, not that a rung diverged.
            let err = stop_err
                .or(first_err)
                .unwrap_or_else(|| NumError::invalid("empty ladder"));
            (Err(err), outcome.report)
        }
    }
}

/// Deprecated alias of [`solve_linear_robust`], kept for one release: the
/// base function now takes the execution limits directly.
#[deprecated(
    since = "0.1.0",
    note = "use `solve_linear_robust` — it takes the limits directly"
)]
pub fn solve_linear_robust_limited(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    ctrl: IterControl,
    symmetric: bool,
    limits: &ExecLimits,
) -> (NumResult<(Vec<f64>, SolveStats)>, SolveReport) {
    solve_linear_robust(a, b, x0, ctrl, symmetric, limits)
}

fn sparse_lu_attempt(
    a: &CsrMatrix,
    b: &[f64],
    ctrl: IterControl,
) -> NumResult<(Vec<f64>, SolveStats)> {
    let x = crate::sparse_lu::sparse_solve(a, b)?;
    let mut ax = vec![0.0; b.len()];
    a.matvec_into(&x, &mut ax);
    let residual = b
        .iter()
        .zip(&ax)
        .map(|(bi, axi)| (bi - axi) * (bi - axi))
        .sum::<f64>()
        .sqrt();
    let b_norm = b
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
        .max(ctrl.abs_tol);
    let target = (ctrl.rel_tol * b_norm).max(ctrl.abs_tol);
    // A direct factorization should land well under the iterative target;
    // give it a generous margin before calling the result unusable.
    if residual <= target.max(1e-8 * b_norm) {
        Ok((
            x,
            SolveStats {
                iterations: 1,
                residual,
            },
        ))
    } else {
        Err(NumError::NoConvergence {
            iterations: 1,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn ladder_first_converged_wins() {
        let ladder = EscalationLadder::new()
            .rung("a", 1)
            .rung("b", 2)
            .rung("c", 3);
        let outcome = ladder.run(|_, &p| {
            if p >= 2 {
                AttemptReport::converged(p * 10, p, 1e-12)
            } else {
                AttemptReport::failed("diverged")
            }
        });
        assert_eq!(outcome.value, Some(20));
        assert!(outcome.report.converged());
        assert!(!outcome.report.nominal());
        assert_eq!(outcome.report.policy_used.as_deref(), Some("b"));
        assert_eq!(outcome.report.attempts.len(), 2);
        assert_eq!(
            outcome.report.attempts[0].error.as_deref(),
            Some("diverged")
        );
        assert_eq!(outcome.report.residual_trajectory.len(), 2);
    }

    #[test]
    fn ladder_keeps_best_degraded() {
        let ladder = EscalationLadder::new()
            .rung("a", 1e-3)
            .rung("b", 1e-6)
            .rung("c", 1e-4);
        let outcome =
            ladder.run(|label, &residual| AttemptReport::degraded(label.to_string(), 10, residual));
        assert_eq!(outcome.value.as_deref(), Some("b"));
        assert!(outcome.report.degraded());
        assert_eq!(outcome.report.policy_used.as_deref(), Some("b"));
        assert_eq!(outcome.report.attempts.len(), 3);
    }

    #[test]
    fn ladder_all_failed() {
        let ladder = EscalationLadder::new().rung("a", ()).rung("b", ());
        let outcome: RunOutcome<()> = ladder.run(|_, _| AttemptReport::failed("boom"));
        assert!(outcome.value.is_none());
        assert_eq!(outcome.report.quality, Quality::Failed);
        assert!(outcome.report.policy_used.is_none());
        assert_eq!(outcome.report.attempts.len(), 2);
    }

    #[test]
    fn nominal_flag_set_only_for_first_rung_win() {
        let ladder = EscalationLadder::new()
            .rung("nominal", ())
            .rung("retry", ());
        let outcome = ladder.run(|_, _| AttemptReport::converged((), 3, 1e-13));
        assert!(outcome.report.nominal());
    }

    #[test]
    fn fault_log_records_and_filters() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        log.record(4, "scf", "diverged");
        log.record(7, "ring", "newton diverged");
        log.record(9, "scf", "diverged");
        assert_eq!(log.len(), 3);
        assert_eq!(log.in_stage("scf").count(), 2);
        assert_eq!(log.events()[1].sample, 7);
    }

    #[test]
    fn robust_solve_matches_plain_cg_bit_identically() {
        let n = 40;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let x0 = vec![0.0; n];
        let ctrl = IterControl::default();
        let (plain, _) = cg_solve(&a, &b, &x0, ctrl).unwrap();
        let (robust, report) = solve_linear_robust(&a, &b, &x0, ctrl, true, &ExecLimits::none());
        let (robust, _) = robust.unwrap();
        assert_eq!(plain, robust, "nominal rung must be bit-identical to cg");
        assert!(report.nominal());
        assert_eq!(report.policy_used.as_deref(), Some("cg"));
    }

    #[test]
    fn robust_solve_falls_back_when_budget_too_small() {
        // A 2-iteration budget kills both Krylov rungs; sparse LU rescues.
        let n = 60;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let ctrl = IterControl {
            max_iter: 2,
            ..IterControl::default()
        };
        let (result, report) =
            solve_linear_robust(&a, &b, &vec![0.0; n], ctrl, true, &ExecLimits::none());
        let (x, _) = result.unwrap();
        assert!(report.converged());
        assert_eq!(report.policy_used.as_deref(), Some("sparse-lu"));
        assert_eq!(report.attempts.len(), 3);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn robust_solve_direct_rung_handles_large_systems() {
        // Above the historical 768-unknown dense cap, the sparse rung
        // still rescues a budget-starved Krylov ladder.
        let n = 1200;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let ctrl = IterControl {
            max_iter: 2,
            ..IterControl::default()
        };
        let (result, report) =
            solve_linear_robust(&a, &b, &vec![0.0; n], ctrl, true, &ExecLimits::none());
        let (x, _) = result.unwrap();
        assert_eq!(report.policy_used.as_deref(), Some("sparse-lu"));
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn robust_solve_limited_stops_on_exhausted_budget() {
        use crate::budget::Budget;
        let n = 40;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        // A zero check cap trips before the first rung runs: no solver
        // work, a typed budget error, and every rung marked skipped.
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(0));
        let (result, report) =
            solve_linear_robust(&a, &b, &vec![0.0; n], IterControl::default(), true, &limits);
        assert!(matches!(result, Err(NumError::BudgetExhausted { .. })));
        assert_eq!(report.quality, Quality::Failed);
        assert!(report.attempts[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("budget")));
    }

    #[test]
    fn robust_solve_reports_first_error_when_everything_fails() {
        // Zero diagonal kills the Jacobi-preconditioned Krylov rungs, and
        // an empty column makes the pattern structurally singular so even
        // the direct rung fails.
        let n = 40;
        let mut tb = TripletBuilder::new(n, n);
        for i in 0..n {
            let j = if i + 1 < n { i + 1 } else { 1 };
            tb.push(i, j, 1.0);
        }
        let a = tb.build();
        let b = vec![1.0; n];
        let (result, report) = solve_linear_robust(
            &a,
            &b,
            &vec![0.0; n],
            IterControl::default(),
            true,
            &ExecLimits::none(),
        );
        assert!(matches!(result, Err(NumError::InvalidInput { .. })));
        assert_eq!(report.quality, Quality::Failed);
        assert_eq!(report.attempts.len(), 3, "all three rungs attempted");
    }
}
