//! Numerical quadrature.
//!
//! The Landauer current and NEGF charge integrals are smooth except for
//! thermal broadening and band-edge steps; adaptive Simpson handles both,
//! while fixed trapezoid/Gauss–Legendre rules serve the dense energy grids
//! used when the integrand itself is tabulated.

use crate::error::{NumError, NumResult};

/// Composite trapezoid rule over `n + 1` uniformly spaced samples of `f` on
/// `[a, b]`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn trapezoid(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "trapezoid needs at least one interval");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + h * i as f64);
    }
    acc * h
}

/// Trapezoid rule over pre-sampled values on a uniform grid with spacing `h`.
pub fn trapezoid_samples(values: &[f64], h: f64) -> f64 {
    match values.len() {
        0 | 1 => 0.0,
        n => {
            let interior: f64 = values[1..n - 1].iter().sum();
            h * (0.5 * (values[0] + values[n - 1]) + interior)
        }
    }
}

/// Adaptive Simpson quadrature with absolute tolerance `tol`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for an invalid interval or
/// non-positive tolerance.
pub fn adaptive_simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> NumResult<f64> {
    if a.is_nan() || b.is_nan() || b <= a {
        return Err(NumError::invalid("integration interval must have b > a"));
    }
    if tol.is_nan() || tol <= 0.0 {
        return Err(NumError::invalid("tolerance must be positive"));
    }
    fn simpson(f: &impl Fn(f64) -> f64, a: f64, fa: f64, b: f64, fb: f64) -> (f64, f64, f64) {
        let m = 0.5 * (a + b);
        let fm = f(m);
        ((b - a) / 6.0 * (fa + 4.0 * fm + fb), m, fm)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &impl Fn(f64) -> f64,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        whole: f64,
        m: f64,
        fm: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let (left, lm, flm) = simpson(f, a, fa, m, fm);
        let (right, rm, frm) = simpson(f, m, fm, b, fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, fa, m, fm, left, lm, flm, 0.5 * tol, depth - 1)
                + recurse(f, m, fm, b, fb, right, rm, frm, 0.5 * tol, depth - 1)
        }
    }
    let fa = f(a);
    let fb = f(b);
    let (whole, m, fm) = simpson(&f, a, fa, b, fb);
    Ok(recurse(&f, a, fa, b, fb, whole, m, fm, tol, 48))
}

/// 16-point Gauss–Legendre quadrature on `[a, b]`; exact for polynomials up
/// to degree 31 and a good fixed rule for smooth integrands.
pub fn gauss_legendre_16(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    // Abscissae and weights for n = 16 on [-1, 1] (Abramowitz & Stegun 25.4.30).
    const X: [f64; 8] = [
        0.095_012_509_837_637_44,
        0.281_603_550_779_258_9,
        0.458_016_777_657_227_37,
        0.617_876_244_402_643_8,
        0.755_404_408_355_003,
        0.865_631_202_387_831_8,
        0.944_575_023_073_232_6,
        0.989_400_934_991_649_9,
    ];
    const W: [f64; 8] = [
        0.189_450_610_455_068_5,
        0.182_603_415_044_923_58,
        0.169_156_519_395_002_54,
        0.149_595_988_816_576_74,
        0.124_628_971_255_533_88,
        0.095_158_511_682_492_79,
        0.062_253_523_938_647_894,
        0.027_152_459_411_754_096,
    ];
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut acc = 0.0;
    for k in 0..8 {
        acc += W[k] * (f(c - h * X[k]) + f(c + h * X[k]));
    }
    acc * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn trapezoid_linear_exact() {
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 2.0, 4);
        assert!((v - 6.0).abs() < 1e-14);
    }

    #[test]
    fn trapezoid_samples_matches_closure() {
        let n = 64;
        let h = PI / n as f64;
        let samples: Vec<f64> = (0..=n).map(|i| (h * i as f64).sin()).collect();
        let a = trapezoid_samples(&samples, h);
        let b = trapezoid(|x| x.sin(), 0.0, PI, n);
        assert!((a - b).abs() < 1e-13);
    }

    #[test]
    fn trapezoid_samples_degenerate() {
        assert_eq!(trapezoid_samples(&[], 0.1), 0.0);
        assert_eq!(trapezoid_samples(&[5.0], 0.1), 0.0);
    }

    #[test]
    fn simpson_integrates_sine() {
        let v = adaptive_simpson(|x| x.sin(), 0.0, PI, 1e-12).unwrap();
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn simpson_handles_sharp_feature() {
        // Narrow Lorentzian; integral over the real line is pi * (atan scale).
        let gamma = 1e-3;
        let v = adaptive_simpson(|x| gamma / (x * x + gamma * gamma), -1.0, 1.0, 1e-10).unwrap();
        let expect = 2.0 * (1.0 / gamma).atan();
        assert!((v - expect).abs() < 1e-6, "{v} vs {expect}");
    }

    #[test]
    fn simpson_rejects_bad_input() {
        assert!(adaptive_simpson(|x| x, 1.0, 0.0, 1e-8).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn gauss_legendre_polynomial_exact() {
        // x^10 over [0,1] = 1/11.
        let v = gauss_legendre_16(|x| x.powi(10), 0.0, 1.0);
        assert!((v - 1.0 / 11.0).abs() < 1e-14);
    }

    #[test]
    fn gauss_legendre_exp() {
        let v = gauss_legendre_16(f64::exp, 0.0, 1.0);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-13);
    }
}
