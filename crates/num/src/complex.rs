//! Double-precision complex numbers.
//!
//! A minimal, `Copy`, allocation-free complex type tailored to the Green's
//! function kernels in `gnr-negf`. Only the operations the workspace needs
//! are provided; the arithmetic follows the usual field axioms with IEEE-754
//! semantics inherited from `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use gnr_num::c64;
///
/// let z = c64(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * z.conj(), c64(25.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
///
/// ```
/// use gnr_num::{c64, Complex64};
/// assert_eq!(c64(1.0, -2.0), Complex64::new(1.0, -2.0));
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`; cheaper than [`Complex64::norm`] when only
    /// relative magnitudes matter.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `self` is zero, consistent with `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root (branch cut along the negative real axis).
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.norm();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        // On the negative real axis the midpoint construction degenerates;
        // the principal root there is +i*sqrt(|re|).
        if self.im == 0.0 && self.re < 0.0 {
            return c64(0.0, (-self.re).sqrt());
        }
        let half = 0.5 * (self + c64(r, 0.0));
        let scale = r.sqrt() / half.norm();
        c64(half.re * scale, half.im * scale)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Multiply by the reciprocal with the same component ordering as
        // `Mul`, so `a / b` stays bit-identical to `a * b.recip()`.
        let inv = rhs.recip();
        c64(
            self.re * inv.re - self.im * inv.im,
            self.re * inv.im + self.im * inv.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).norm() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(2.5, -1.5);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z * z.recip(), Complex64::ONE, 1e-14));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, Complex64::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, c64(11.0, 2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c64(0.3, 0.7);
        let b = c64(-1.2, 2.4);
        assert!(close(a * b / b, a, 1e-14));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert_eq!((z * z.conj()).re, z.norm_sqr());
    }

    #[test]
    fn exponential_euler_identity() {
        let z = c64(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), c64(-1.0, 0.0), 1e-14));
        // e^{a+bi} = e^a (cos b + i sin b)
        let w = c64(1.0, 0.5).exp();
        let e = std::f64::consts::E;
        assert!(close(w, c64(e * 0.5f64.cos(), e * 0.5f64.sin()), 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(-1.0, 0.0), c64(3.0, -4.0), c64(0.0, 2.0)] {
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z}) = {r}");
            // Principal branch: non-negative real part.
            assert!(r.re >= -1e-15);
        }
    }

    #[test]
    fn sqrt_of_zero() {
        assert_eq!(Complex64::ZERO.sqrt(), Complex64::ZERO);
    }

    #[test]
    fn real_scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| c64(k as f64, 1.0)).sum();
        assert_eq!(total, c64(6.0, 4.0));
    }

    #[test]
    fn arg_quadrants() {
        assert!((c64(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((c64(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-15);
    }
}
