//! Solver telemetry: a zero-dependency metrics registry (monotonic
//! counters, gauges, bounded histograms, scoped wall-clock timers) carried
//! on [`ExecCtx`](crate::par::ExecCtx) next to the thread pool and fault
//! log.
//!
//! # Arming
//!
//! Telemetry is **disabled by default**. Like the fault injector
//! ([`fault`](crate::fault)), the global sink is gated by a single relaxed
//! atomic: a disarmed recording call is one `AtomicBool` load and an early
//! return — no allocation, no lock, no clock read. Arm it with
//! [`arm`] / [`arm_from_env`] (`GNR_TELEMETRY=1`) and read results with
//! [`snapshot`]. [`disarm`] stops recording but keeps the accumulated data
//! so a program can record during a run and export at exit; [`reset`]
//! clears it.
//!
//! # Determinism contract
//!
//! Counter and histogram updates are *commutative*: every recorded value is
//! a `u64` addition (or a bin increment), so as long as each unit of work
//! contributes the same deltas, the merged totals are bit-identical for any
//! thread count or scheduling — the same guarantee
//! [`par_map_indexed`](crate::par::ThreadPool::par_map_indexed) gives for
//! data. For order-sensitive aggregation (or to batch worker-side updates),
//! [`TelemetryShard`] collects deltas worker-locally and is merged
//! **index-ordered** by the caller, mirroring the pool's ordered-merge
//! reduction. Gauges are last-write-wins and timers read the wall clock, so
//! neither is covered by the bit-identity contract; record gauges only from
//! serial code.
//!
//! Arming mutates process-global state: tests that arm must serialize
//! against each other and [`disarm`] when done.

use crate::error::{NumError, NumResult};
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

static ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Registry> = Mutex::new(Registry::new());

/// Version tag embedded in exported snapshots.
pub const SNAPSHOT_SCHEMA: &str = "gnr-telemetry/v1";

/// One aggregated metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written value (serial code only; not covered by the
    /// determinism contract).
    Gauge(f64),
    /// Bounded histogram of recorded samples.
    Histogram(HistogramValue),
    /// Accumulated wall-clock timings (values are nondeterministic by
    /// nature; only presence/count is stable).
    Timer(TimerValue),
}

/// Histogram state: `bins[i]` counts samples `<= bounds[i]` (and above the
/// previous bound); the final bin counts overflow samples.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramValue {
    /// Ascending upper bin edges, fixed at first record.
    pub bounds: Vec<f64>,
    /// Per-bin counts; `bins.len() == bounds.len() + 1` (last = overflow).
    pub bins: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: f64,
}

/// Accumulated scoped-timer state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimerValue {
    /// Number of completed scopes.
    pub count: u64,
    /// Total elapsed nanoseconds.
    pub total_ns: u64,
    /// Shortest scope \[ns\].
    pub min_ns: u64,
    /// Longest scope \[ns\].
    pub max_ns: u64,
}

#[derive(Debug)]
struct Registry {
    metrics: BTreeMap<String, MetricValue>,
}

impl Registry {
    const fn new() -> Self {
        Registry {
            metrics: BTreeMap::new(),
        }
    }

    fn counter_add(&mut self, name: &str, n: u64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c = c.saturating_add(n),
            Some(_) => {} // kind clash: first registration wins
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Counter(n));
            }
        }
    }

    fn gauge_set(&mut self, name: &str, value: f64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Gauge(g)) => *g = value,
            Some(_) => {}
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Gauge(value));
            }
        }
    }

    fn histogram_record(&mut self, name: &str, bounds: &[f64], value: f64) {
        let h = match self.metrics.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h,
            Some(_) => return,
            None => {
                let h = HistogramValue {
                    bounds: bounds.to_vec(),
                    bins: vec![0; bounds.len() + 1],
                    count: 0,
                    sum: 0.0,
                };
                self.metrics
                    .insert(name.to_string(), MetricValue::Histogram(h));
                match self.metrics.get_mut(name) {
                    Some(MetricValue::Histogram(h)) => h,
                    _ => unreachable!("histogram just inserted"),
                }
            }
        };
        let bin = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.bins[bin] = h.bins[bin].saturating_add(1);
        h.count = h.count.saturating_add(1);
        h.sum += value;
    }

    fn timer_record_ns(&mut self, name: &str, ns: u64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Timer(t)) => {
                t.count = t.count.saturating_add(1);
                t.total_ns = t.total_ns.saturating_add(ns);
                t.min_ns = t.min_ns.min(ns);
                t.max_ns = t.max_ns.max(ns);
            }
            Some(_) => {}
            None => {
                self.metrics.insert(
                    name.to_string(),
                    MetricValue::Timer(TimerValue {
                        count: 1,
                        total_ns: ns,
                        min_ns: ns,
                        max_ns: ns,
                    }),
                );
            }
        }
    }

    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

fn lock_global() -> std::sync::MutexGuard<'static, Registry> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms the global sink: subsequent recordings accumulate. Does not clear
/// previously accumulated data; call [`reset`] first for a fresh run.
pub fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the global sink. Accumulated data stays readable via
/// [`snapshot`] until [`reset`].
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// `true` while the global sink is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the global sink when `GNR_TELEMETRY` is set to `1`/`true`/`on`/
/// `yes` (trimmed, case-insensitive). Returns whether it armed.
pub fn arm_from_env() -> bool {
    let on = matches!(
        std::env::var("GNR_TELEMETRY")
            .ok()
            .as_deref()
            .map(|v| v.trim().to_ascii_lowercase())
            .as_deref(),
        Some("1" | "true" | "on" | "yes")
    );
    if on {
        arm();
    }
    on
}

/// Clears all accumulated global metrics (armed state unchanged).
pub fn reset() {
    lock_global().metrics.clear();
}

/// Adds `n` to the global counter `name` (no-op while disarmed).
pub fn counter_add(name: &str, n: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    lock_global().counter_add(name, n);
}

/// Increments the global counter `name` by one (no-op while disarmed).
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets the global gauge `name` (no-op while disarmed). Serial code only —
/// gauges are last-write-wins and not deterministic under concurrency.
pub fn gauge_set(name: &str, value: f64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    lock_global().gauge_set(name, value);
}

/// Records `value` into the global histogram `name` (no-op while
/// disarmed). `bounds` fixes the bin edges at first record and is ignored
/// afterwards.
pub fn histogram_record(name: &str, bounds: &[f64], value: f64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    lock_global().histogram_record(name, bounds, value);
}

/// Records a raw duration into the global timer `name` (no-op while
/// disarmed).
pub fn timer_record_ns(name: &str, ns: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    lock_global().timer_record_ns(name, ns);
}

/// Starts a scoped wall-clock timer against the global sink; the elapsed
/// time is recorded when the guard drops. Disarmed, this neither reads the
/// clock nor allocates.
pub fn time_scope(name: &str) -> ScopedTimer {
    Telemetry::global().time_scope(name)
}

/// Snapshot of the global sink (sorted by metric name).
pub fn snapshot() -> TelemetrySnapshot {
    lock_global().snapshot()
}

#[derive(Clone, Debug, Default)]
enum Sink {
    /// The process-global registry, gated on [`is_armed`].
    #[default]
    Global,
    /// A private registry, always recording — for unit tests and scoped
    /// measurements that must not touch global state.
    Local(Arc<Mutex<Registry>>),
}

/// Cheap-clone handle to a telemetry sink, carried on
/// [`ExecCtx`](crate::par::ExecCtx). The default handle routes to the
/// process-global registry (armed via [`arm`] / `GNR_TELEMETRY=1`);
/// [`Telemetry::isolated`] creates a private always-on registry. Clones
/// share the underlying sink.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    sink: Sink,
}

impl Telemetry {
    /// Handle to the process-global sink (the default).
    pub fn global() -> Self {
        Telemetry { sink: Sink::Global }
    }

    /// A private, always-recording registry independent of the global
    /// armed flag.
    pub fn isolated() -> Self {
        Telemetry {
            sink: Sink::Local(Arc::new(Mutex::new(Registry::new()))),
        }
    }

    /// `true` when recording calls will actually record: always for an
    /// isolated sink, [`is_armed`] for the global one. One relaxed atomic
    /// load on the global path.
    pub fn active(&self) -> bool {
        match &self.sink {
            Sink::Global => ARMED.load(Ordering::Relaxed),
            Sink::Local(_) => true,
        }
    }

    fn with_registry(&self, f: impl FnOnce(&mut Registry)) {
        match &self.sink {
            Sink::Global => {
                if ARMED.load(Ordering::Relaxed) {
                    f(&mut lock_global());
                }
            }
            Sink::Local(reg) => f(&mut reg.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    /// Adds `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        self.with_registry(|r| r.counter_add(name, n));
    }

    /// Increments counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Sets gauge `name` (serial code only; see module docs).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_registry(|r| r.gauge_set(name, value));
    }

    /// Records `value` into histogram `name` with `bounds` bin edges
    /// (fixed at first record).
    pub fn histogram_record(&self, name: &str, bounds: &[f64], value: f64) {
        self.with_registry(|r| r.histogram_record(name, bounds, value));
    }

    /// Records a raw duration into timer `name`.
    pub fn timer_record_ns(&self, name: &str, ns: u64) {
        self.with_registry(|r| r.timer_record_ns(name, ns));
    }

    /// Starts a scoped wall-clock timer; elapsed time is recorded when the
    /// guard drops. Inactive sinks return an inert guard without reading
    /// the clock.
    pub fn time_scope(&self, name: &str) -> ScopedTimer {
        if !self.active() {
            return ScopedTimer { inner: None };
        }
        ScopedTimer {
            inner: Some((self.clone(), name.to_string(), Instant::now())),
        }
    }

    /// Snapshot of this sink (sorted by metric name).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.sink {
            Sink::Global => lock_global().snapshot(),
            Sink::Local(reg) => reg.lock().unwrap_or_else(|p| p.into_inner()).snapshot(),
        }
    }

    /// Clears this sink's accumulated metrics.
    pub fn reset(&self) {
        match &self.sink {
            Sink::Global => lock_global().metrics.clear(),
            Sink::Local(reg) => reg
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .metrics
                .clear(),
        }
    }
}

/// RAII guard from [`Telemetry::time_scope`]; records the elapsed
/// wall-clock time on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    inner: Option<(Telemetry, String, Instant)>,
}

impl ScopedTimer {
    /// Discards the measurement without recording.
    pub fn cancel(mut self) {
        self.inner = None;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((t, name, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            t.timer_record_ns(&name, ns);
        }
    }
}

/// Worker-local batch of telemetry deltas, merged **index-ordered** by the
/// caller — the same pattern
/// [`par_map_indexed`](crate::par::ThreadPool::par_map_indexed) uses for
/// data. Build one per work item with [`TelemetryShard::for_sink`], record
/// into it on the worker, return it with the item's result, and apply the
/// shards in index order with [`TelemetryShard::merge_into`].
///
/// Construction captures the sink's activity once: shards built against a
/// disarmed global sink skip all recording (no allocation).
#[derive(Debug, Default)]
pub struct TelemetryShard {
    active: bool,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Vec<f64>, f64)>,
}

impl TelemetryShard {
    /// A shard whose activity matches `sink` at this moment.
    pub fn for_sink(sink: &Telemetry) -> Self {
        TelemetryShard {
            active: sink.active(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A permanently inert shard.
    pub fn inactive() -> Self {
        TelemetryShard::default()
    }

    /// `true` when this shard records.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Buffers a counter delta.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        if !self.active {
            return;
        }
        if let Some((_, c)) = self.counters.iter_mut().find(|(k, _)| k == name) {
            *c = c.saturating_add(n);
        } else {
            self.counters.push((name.to_string(), n));
        }
    }

    /// Buffers a counter increment of one.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Buffers a histogram sample.
    pub fn histogram_record(&mut self, name: &str, bounds: &[f64], value: f64) {
        if !self.active {
            return;
        }
        self.histograms
            .push((name.to_string(), bounds.to_vec(), value));
    }

    /// Applies the buffered deltas to `sink` in record order. Call this
    /// serially, shard by shard in index order, to keep order-sensitive
    /// aggregation deterministic.
    pub fn merge_into(self, sink: &Telemetry) {
        if !self.active {
            return;
        }
        for (name, n) in self.counters {
            sink.counter_add(&name, n);
        }
        for (name, bounds, value) in self.histograms {
            sink.histogram_record(&name, &bounds, value);
        }
    }
}

/// Point-in-time export of a sink's metrics, sorted by name. Serializes
/// to/from [`Json`] (schema [`SNAPSHOT_SCHEMA`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl TelemetrySnapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics.iter().filter_map(|(k, v)| match v {
            MetricValue::Counter(c) => Some((k.as_str(), *c)),
            _ => None,
        })
    }

    /// All timers, in name order.
    pub fn timers(&self) -> impl Iterator<Item = (&str, &TimerValue)> {
        self.metrics.iter().filter_map(|(k, v)| match v {
            MetricValue::Timer(t) => Some((k.as_str(), t)),
            _ => None,
        })
    }

    /// Serializes to the `gnr-telemetry/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, value)| {
                let mut pairs = vec![("name".to_string(), Json::from(name.as_str()))];
                match value {
                    MetricValue::Counter(c) => {
                        pairs.push(("kind".to_string(), Json::from("counter")));
                        pairs.push(("value".to_string(), Json::Num(*c as f64)));
                    }
                    MetricValue::Gauge(g) => {
                        pairs.push(("kind".to_string(), Json::from("gauge")));
                        pairs.push(("value".to_string(), Json::Num(*g)));
                    }
                    MetricValue::Histogram(h) => {
                        pairs.push(("kind".to_string(), Json::from("histogram")));
                        pairs.push(("bounds".to_string(), Json::from(h.bounds.clone())));
                        pairs.push((
                            "bins".to_string(),
                            Json::Arr(h.bins.iter().map(|&b| Json::Num(b as f64)).collect()),
                        ));
                        pairs.push(("count".to_string(), Json::Num(h.count as f64)));
                        pairs.push(("sum".to_string(), Json::Num(h.sum)));
                    }
                    MetricValue::Timer(t) => {
                        pairs.push(("kind".to_string(), Json::from("timer")));
                        pairs.push(("count".to_string(), Json::Num(t.count as f64)));
                        pairs.push(("total_ns".to_string(), Json::Num(t.total_ns as f64)));
                        pairs.push(("min_ns".to_string(), Json::Num(t.min_ns as f64)));
                        pairs.push(("max_ns".to_string(), Json::Num(t.max_ns as f64)));
                    }
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::from(SNAPSHOT_SCHEMA)),
            ("metrics".to_string(), Json::Arr(metrics)),
        ])
    }

    /// Parses a `gnr-telemetry/v1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`NumError`] for a wrong schema tag or malformed entries.
    pub fn from_json(doc: &Json) -> NumResult<Self> {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SNAPSHOT_SCHEMA {
            return Err(NumError::invalid(format!(
                "telemetry snapshot: unsupported schema {schema:?}"
            )));
        }
        let entries = doc
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or_else(|| NumError::invalid("telemetry snapshot: missing metrics array"))?;
        let mut metrics = Vec::with_capacity(entries.len());
        for entry in entries {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| NumError::invalid("telemetry metric: missing name"))?
                .to_string();
            let kind = entry.get("kind").and_then(Json::as_str).unwrap_or("");
            let value = match kind {
                "counter" => MetricValue::Counter(json_u64(entry.get("value"), &name)?),
                "gauge" => MetricValue::Gauge(
                    entry
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad_metric(&name, "gauge value"))?,
                ),
                "histogram" => {
                    let bounds = json_f64_array(entry.get("bounds"), &name)?;
                    let bins = entry
                        .get("bins")
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad_metric(&name, "histogram bins"))?
                        .iter()
                        .map(|b| json_u64(Some(b), &name))
                        .collect::<NumResult<Vec<u64>>>()?;
                    if bins.len() != bounds.len() + 1 {
                        return Err(bad_metric(&name, "histogram bin count"));
                    }
                    MetricValue::Histogram(HistogramValue {
                        bounds,
                        bins,
                        count: json_u64(entry.get("count"), &name)?,
                        sum: entry
                            .get("sum")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad_metric(&name, "histogram sum"))?,
                    })
                }
                "timer" => MetricValue::Timer(TimerValue {
                    count: json_u64(entry.get("count"), &name)?,
                    total_ns: json_u64(entry.get("total_ns"), &name)?,
                    min_ns: json_u64(entry.get("min_ns"), &name)?,
                    max_ns: json_u64(entry.get("max_ns"), &name)?,
                }),
                other => {
                    return Err(NumError::invalid(format!(
                        "telemetry metric {name:?}: unknown kind {other:?}"
                    )))
                }
            };
            metrics.push((name, value));
        }
        Ok(TelemetrySnapshot { metrics })
    }

    /// Human-readable multi-line rendering (one metric per line), used by
    /// `gnr-bench` table output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("  {name:<44} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("  {name:<44} {g:.6e}\n")),
                MetricValue::Histogram(h) => {
                    let mean = if h.count > 0 {
                        h.sum / h.count as f64
                    } else {
                        0.0
                    };
                    out.push_str(&format!("  {name:<44} count={} mean={mean:.3e}\n", h.count));
                }
                MetricValue::Timer(t) => {
                    let total_ms = t.total_ns as f64 / 1e6;
                    out.push_str(&format!(
                        "  {name:<44} count={} total={total_ms:.3} ms\n",
                        t.count
                    ));
                }
            }
        }
        out
    }
}

fn bad_metric(name: &str, what: &str) -> NumError {
    NumError::invalid(format!("telemetry metric {name:?}: bad {what}"))
}

fn json_u64(v: Option<&Json>, name: &str) -> NumResult<u64> {
    v.and_then(Json::as_f64)
        .filter(|x| *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64)
        .map(|x| x as u64)
        .ok_or_else(|| bad_metric(name, "integer value"))
}

fn json_f64_array(v: Option<&Json>, name: &str) -> NumResult<Vec<f64>> {
    v.and_then(Json::as_array)
        .map(|xs| xs.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
        .filter(|xs| v.and_then(Json::as_array).map(<[Json]>::len) == Some(xs.len()))
        .ok_or_else(|| bad_metric(name, "number array"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The global sink is process-wide: serialize the tests that arm it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _g = lock();
        disarm();
        reset();
        counter_add("x.calls", 5);
        gauge_set("x.g", 1.0);
        histogram_record("x.h", &[1.0, 2.0], 0.5);
        timer_record_ns("x.t", 100);
        {
            let _t = time_scope("x.scope");
        }
        assert!(snapshot().is_empty());
        assert!(!is_armed());
    }

    #[test]
    fn armed_counters_and_histograms_accumulate() {
        let _g = lock();
        arm();
        reset();
        counter_add("scf.iterations", 3);
        counter_inc("scf.iterations");
        counter_inc("scf.solves");
        histogram_record("scf.residual", &[1e-6, 1e-3, 1.0], 1e-4);
        histogram_record("scf.residual", &[1e-6, 1e-3, 1.0], 5.0);
        gauge_set("scf.last", 0.25);
        gauge_set("scf.last", 0.5);
        let snap = snapshot();
        disarm();
        reset();
        assert_eq!(snap.counter("scf.iterations"), Some(4));
        assert_eq!(snap.counter("scf.solves"), Some(1));
        match snap.get("scf.residual") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.bins, vec![0, 1, 0, 1]);
                assert_eq!(h.count, 2);
                assert!((h.sum - 5.0001).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(snap.get("scf.last"), Some(&MetricValue::Gauge(0.5)));
        // Snapshot is name-sorted.
        let names: Vec<&str> = snap.metrics.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn isolated_sink_ignores_global_armed_state() {
        let _g = lock();
        disarm();
        let t = Telemetry::isolated();
        assert!(t.active());
        t.counter_add("local.events", 2);
        {
            let _s = t.time_scope("local.time");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("local.events"), Some(2));
        match snap.get("local.time") {
            Some(MetricValue::Timer(tv)) => {
                assert_eq!(tv.count, 1);
                assert!(tv.min_ns <= tv.max_ns);
            }
            other => panic!("expected timer, got {other:?}"),
        }
        // The clone shares the sink; the global registry saw nothing.
        t.clone().counter_inc("local.events");
        assert_eq!(t.snapshot().counter("local.events"), Some(3));
        assert!(snapshot().counter("local.events").is_none());
    }

    #[test]
    fn shard_batches_and_merges_in_order() {
        let t = Telemetry::isolated();
        let mut shards: Vec<TelemetryShard> = (0..4)
            .map(|i| {
                let mut s = TelemetryShard::for_sink(&t);
                s.counter_add("negf.energy_points", 1);
                s.counter_add("negf.rgf.sweeps", 2 + i as u64 % 2);
                s.histogram_record("negf.dos", &[0.5, 1.0], 0.25 * i as f64);
                s
            })
            .collect();
        for s in shards.drain(..) {
            s.merge_into(&t);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("negf.energy_points"), Some(4));
        assert_eq!(snap.counter("negf.rgf.sweeps"), Some(10));
        match snap.get("negf.dos") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 4),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Shards built against a disarmed global sink buffer nothing.
        let _g = lock();
        disarm();
        let mut inert = TelemetryShard::for_sink(&Telemetry::global());
        inert.counter_add("x", 1);
        assert!(!inert.active());
        assert!(inert.counters.is_empty());
    }

    #[test]
    fn snapshot_json_round_trips() {
        let t = Telemetry::isolated();
        t.counter_add("scf.iterations", 42);
        t.gauge_set("scf.residual_v", 3.5e-9);
        t.histogram_record("poisson.iters", &[10.0, 100.0, 1000.0], 37.0);
        t.timer_record_ns("mc.sample", 1_234_567);
        t.timer_record_ns("mc.sample", 2_000_001);
        let snap = t.snapshot();
        let doc = snap.to_json();
        let text = doc.dump();
        let back = TelemetrySnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
        // Wrong schema is rejected.
        let bad = Json::Obj(vec![("schema".into(), Json::from("nope"))]);
        assert!(TelemetrySnapshot::from_json(&bad).is_err());
    }

    #[test]
    fn arm_from_env_respects_gnr_telemetry() {
        let _g = lock();
        disarm();
        // Unset or "0" must not arm (the variable is process-global; restore
        // the prior value to stay hermetic).
        let prior = std::env::var("GNR_TELEMETRY").ok();
        std::env::set_var("GNR_TELEMETRY", "0");
        assert!(!arm_from_env());
        assert!(!is_armed());
        std::env::set_var("GNR_TELEMETRY", "1");
        assert!(arm_from_env());
        assert!(is_armed());
        disarm();
        match prior {
            Some(v) => std::env::set_var("GNR_TELEMETRY", v),
            None => std::env::remove_var("GNR_TELEMETRY"),
        }
    }

    #[test]
    fn scoped_timer_cancel_discards() {
        let t = Telemetry::isolated();
        t.time_scope("kept").cancel();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn kind_clash_keeps_first_registration() {
        let t = Telemetry::isolated();
        t.counter_add("m", 1);
        t.gauge_set("m", 9.0);
        t.histogram_record("m", &[1.0], 0.5);
        t.timer_record_ns("m", 7);
        assert_eq!(t.snapshot().counter("m"), Some(1));
    }
}
