//! Descriptive statistics and histograms for the Monte Carlo studies.

use crate::error::{NumError, NumResult};

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

/// Computes [`Summary`] statistics of `samples`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on an empty sample.
pub fn summarize(samples: &[f64]) -> NumResult<Summary> {
    if samples.is_empty() {
        return Err(NumError::invalid("cannot summarize an empty sample"));
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Ok(Summary {
        count: samples.len(),
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    below: usize,
    above: usize,
}

impl Histogram {
    /// Creates a histogram with `bins ≥ 1` equal-width bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a degenerate range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> NumResult<Self> {
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(NumError::invalid("histogram range must have hi > lo"));
        }
        if bins == 0 {
            return Err(NumError::invalid("histogram needs at least one bin"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let bins = self.counts.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            let idx = idx.min(bins - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records many samples.
    pub fn record_all(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Samples that fell below/above the range.
    pub fn outliers(&self) -> (usize, usize) {
        (self.below, self.above)
    }

    /// Total recorded samples, including outliers.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.below + self.above
    }

    /// Centre coordinate of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Renders a compact ASCII bar chart (one line per bin), used by the
    /// figure-regeneration binaries.
    pub fn ascii(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * width / peak);
            out.push_str(&format!(
                "{:>10.4} | {:<6} {}\n",
                self.bin_center(i),
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 7: var = 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = summarize(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn summary_rejects_empty() {
        assert!(summarize(&[]).is_err());
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record_all([0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 11.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-15);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-15);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn ascii_render_contains_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.record_all([0.1, 0.2, 1.5]);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }
}
