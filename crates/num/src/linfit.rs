//! Ordinary least-squares line fitting.
//!
//! Needed for the paper's threshold-voltage extraction (§2): the maximum
//! transconductance tangent of the I-V curve is extrapolated to its V_G-axis
//! intercept.

use crate::error::{NumError, NumResult};

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]` (1 for a perfect fit).
    pub r_squared: f64,
}

impl LineFit {
    /// The x-axis intercept `-intercept/slope` (e.g. extracted V_T).
    ///
    /// Returns `None` when the slope is zero.
    pub fn x_intercept(&self) -> Option<f64> {
        if self.slope == 0.0 {
            None
        } else {
            Some(-self.intercept / self.slope)
        }
    }

    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a line to `(x, y)` samples by ordinary least squares.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if fewer than two samples are given,
/// the lengths disagree, or all `x` values coincide.
pub fn fit_line(x: &[f64], y: &[f64]) -> NumResult<LineFit> {
    if x.len() != y.len() {
        return Err(NumError::invalid("x and y must have equal length"));
    }
    let n = x.len();
    if n < 2 {
        return Err(NumError::invalid("need at least two samples"));
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(NumError::invalid("x values are all identical"));
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v - 1.0).collect();
        let fit = fit_line(&x, &y).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.x_intercept().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        // Deterministic "noise".
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 3.0 * v + 0.5 + 0.01 * ((i as f64 * 1.7).sin()))
            .collect();
        let fit = fit_line(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn horizontal_line_has_no_x_intercept() {
        let x = [0.0, 1.0, 2.0];
        let y = [5.0, 5.0, 5.0];
        let fit = fit_line(&x, &y).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert!(fit.x_intercept().is_none());
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(fit_line(&[1.0], &[2.0]).is_err());
        assert!(fit_line(&[1.0, 1.0], &[0.0, 1.0]).is_err());
        assert!(fit_line(&[1.0, 2.0], &[0.0]).is_err());
    }
}
