//! `gnr-num` — numerical substrate for the gnrlab workspace.
//!
//! Every numerical primitive used by the device and circuit simulators is
//! implemented here from scratch: complex arithmetic, dense real/complex
//! linear algebra (LU factorization, inversion, symmetric/Hermitian
//! eigenvalue problems), sparse CSR matrices with Krylov solvers,
//! interpolation on uniform grids, quadrature, root finding, linear
//! regression, and descriptive statistics.
//!
//! The crate is deliberately free of external dependencies so the physics
//! crates built on top of it (`gnr-lattice`, `gnr-negf`, `gnr-poisson`)
//! are self-contained.
//!
//! # Example
//!
//! ```
//! use gnr_num::{c64, CMatrix};
//!
//! // Invert a small complex matrix and check A * A^-1 = I.
//! let a = CMatrix::from_rows(&[
//!     vec![c64(2.0, 1.0), c64(0.0, -1.0)],
//!     vec![c64(1.0, 0.0), c64(3.0, 0.5)],
//! ]);
//! let inv = a.inverse().expect("matrix is nonsingular");
//! let id = a.matmul(&inv);
//! assert!((id.get(0, 0) - c64(1.0, 0.0)).norm() < 1e-12);
//! assert!(id.get(0, 1).norm() < 1e-12);
//! ```

pub mod budget;
pub mod cdense;
pub mod checkpoint;
pub mod complex;
pub mod consts;
pub mod dense;
pub mod error;
pub mod fault;
pub mod fermi;
pub mod interp;
pub mod json;
pub mod linfit;
pub mod par;
pub mod quad;
pub mod recover;
pub mod rng;
pub mod roots;
pub mod solver;
pub mod sparse;
pub mod sparse_lu;
pub mod stats;
pub mod telemetry;

pub use budget::{Budget, CancelToken, ExecLimits};
pub use cdense::CMatrix;
pub use checkpoint::{Checkpoint, KeyHasher, LoadOutcome};
pub use complex::{c64, Complex64};
pub use dense::Matrix;
pub use error::{NumError, NumResult};
pub use interp::{BilinearTable, Grid1, Grid2, LinearTable};
pub use json::Json;
pub use par::{ExecCtx, RecoveryPolicy, ThreadPool};
pub use recover::{
    Attempt, AttemptOutcome, AttemptReport, EscalationLadder, FaultEvent, FaultLog, Quality,
    SharedFaultLog, SolveReport,
};
pub use rng::Rng;
pub use sparse::{CsrMatrix, TripletBuilder};
pub use sparse_lu::{sparse_solve, LuSymbolic, Refactorization, SparseLu};
pub use telemetry::{MetricValue, Telemetry, TelemetryShard, TelemetrySnapshot};
