//! Physical constants and unit helpers.
//!
//! The workspace uses SI units at the electrostatics/circuit level and
//! electron-volts at the quantum-transport level; these constants provide
//! the bridges. Values follow CODATA 2018.

/// Elementary charge `q` \[C\].
pub const Q_E: f64 = 1.602_176_634e-19;

/// Planck constant `h` \[J·s\].
pub const H_PLANCK: f64 = 6.626_070_15e-34;

/// Reduced Planck constant `ħ` \[J·s\].
pub const HBAR: f64 = 1.054_571_817e-34;

/// Reduced Planck constant in eV·s.
pub const HBAR_EV: f64 = 6.582_119_569e-16;

/// Boltzmann constant `k_B` \[J/K\].
pub const K_B: f64 = 1.380_649e-23;

/// Boltzmann constant in eV/K.
pub const K_B_EV: f64 = 8.617_333_262e-5;

/// Vacuum permittivity `ε₀` \[F/m\].
pub const EPS_0: f64 = 8.854_187_812_8e-12;

/// Free-electron mass \[kg\].
pub const M_E: f64 = 9.109_383_701_5e-31;

/// Thermal voltage `k_B T / q` at temperature `t_kelvin` \[V\].
///
/// ```
/// let vt = gnr_num::consts::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
#[inline]
pub fn thermal_voltage(t_kelvin: f64) -> f64 {
    K_B_EV * t_kelvin
}

/// Landauer conductance quantum per spin-degenerate mode, `2e²/h` \[S\].
pub const G_QUANTUM: f64 = 2.0 * Q_E * Q_E / H_PLANCK;

/// Current prefactor for spin-degenerate Landauer integrals over energies in
/// eV: `I [A] = LANDAUER_2E_OVER_H * ∫ T(E) (f1 - f2) dE[eV]`.
///
/// Numerically equal to `2e²/h` because the eV→J conversion contributes one
/// extra factor of `q`.
pub const LANDAUER_2E_OVER_H: f64 = 2.0 * Q_E * Q_E / H_PLANCK;

/// Carbon–carbon bond length in graphene \[m\].
pub const A_CC: f64 = 1.42e-10;

/// Graphene lattice constant `a = √3·a_cc` \[m\].
pub const A_LATTICE: f64 = 2.46e-10;

/// Nearest-neighbour pz hopping energy used throughout the paper \[eV\].
pub const T_HOPPING: f64 = 2.7;

/// Son–Cohen–Louie edge-bond correction factor for armchair GNRs.
///
/// Edge-parallel C–C bonds at the ribbon edge are contracted by H passivation,
/// strengthening the hopping by ~12 % (PRL 97, 216803).
pub const EDGE_BOND_FACTOR: f64 = 1.12;

/// Relative permittivity of SiO₂ used by the paper's gate stack.
pub const EPS_R_SIO2: f64 = 3.9;

/// Nanometre in metres.
pub const NM: f64 = 1e-9;

/// Ångström in metres.
pub const ANGSTROM: f64 = 1e-10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_quantum_value() {
        // 2e^2/h = 77.48 uS
        assert!((G_QUANTUM - 7.748e-5).abs() < 1e-8);
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        assert!((thermal_voltage(300.0) - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn landauer_prefactor_units() {
        // 2e/h in A/eV: 2 * 1.602e-19 C / 4.1357e-15 eV*s = 7.748e-5 A/eV
        assert!((LANDAUER_2E_OVER_H - G_QUANTUM).abs() / G_QUANTUM < 1e-12);
    }

    #[test]
    fn lattice_relations() {
        assert!((A_LATTICE - 3f64.sqrt() * A_CC).abs() < 1e-12);
    }
}
