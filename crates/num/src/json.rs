//! Minimal JSON reading and writing.
//!
//! The workspace builds with zero external crates, so the device-table
//! cache format and the bench harness's machine-readable output use this
//! small JSON implementation instead of `serde_json`. It supports the full
//! JSON data model with one SPICE-friendly extension on output: non-finite
//! numbers serialize as `null` (matching `serde_json`'s behaviour).
//!
//! Numbers are written with Rust's shortest round-trip `f64` formatting,
//! so `parse(dump(x))` reproduces `x` bit-for-bit for finite values.

use crate::error::{NumError, NumResult};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Parses a JSON document (must contain exactly one value).
    ///
    /// # Errors
    ///
    /// Returns [`NumError`] with a byte offset for malformed input.
    pub fn parse(text: &str) -> NumResult<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serializes to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<Vec<f64>> for Json {
    fn from(xs: Vec<f64>) -> Json {
        Json::Arr(xs.into_iter().map(Json::Num).collect())
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == 0.0 && x.is_sign_negative() {
        out.push_str("-0");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without a fraction; keeps counts readable.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> NumError {
        NumError::invalid(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> NumResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> NumResult<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> NumResult<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> NumResult<Json> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> NumResult<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> NumResult<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            s.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> NumResult<u32> {
        // Called with pos at 'u' already consumed? No: caller consumed 'u'
        // via pos += 1 before, so the next 4 bytes are hex digits.
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> NumResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::from("gnr-bench")),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("xs".into(), Json::from(vec![1.0, -2.5, 3.25e-9])),
            (
                "meta".into(),
                Json::Obj(vec![("n".into(), Json::from(12usize))]),
            ),
        ]);
        let text = doc.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn numbers_roundtrip_bit_exact() {
        for x in [0.0, -0.0, 1.0 / 3.0, 6.626e-34, 1.23456789012345e300, -7.0] {
            let text = Json::Num(x).dump();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}";
        let text = Json::from(s).dump();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        // Escaped-unicode input parses too.
        let parsed = Json::parse(r#""😀A""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "\u{1F600}A");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"abc", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.5).as_usize(), None);
    }
}
