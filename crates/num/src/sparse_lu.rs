//! KLU-style sparse direct LU solver with symbolic-analysis reuse.
//!
//! Built for the repeated-pattern linear systems of the workspace: the MNA
//! Newton loops (DC and transient) and the 3D Poisson direct fallback both
//! re-solve matrices whose *sparsity pattern never changes* — only the
//! values do. The solver therefore splits the work KLU-style:
//!
//! 1. [`SparseLu::analyze`] — one-time symbolic analysis of the pattern:
//!    a maximum transversal (zero-free diagonal), a block-triangular (BTF)
//!    permutation from Tarjan's SCC algorithm, and a minimum-degree
//!    fill-reducing ordering inside each diagonal block. Paid once per
//!    pattern (per circuit / per grid), never per Newton step.
//! 2. [`SparseLu::factor`] — a left-looking Gilbert–Peierls factorization
//!    of each diagonal block with partial pivoting. Records the per-column
//!    nonzero patterns and the pivot sequence.
//! 3. [`SparseLu::refactor`] — a cheap numeric replay of the recorded
//!    patterns with the *same* pivot sequence, for subsequent value sets.
//!    A pivot-growth estimate guards the replay: when the reused pivot is
//!    more than [`PIVOT_GROWTH_LIMIT`] times smaller than the column's
//!    dominant entry (or exactly zero), `refactor` automatically falls
//!    back to a fresh pivoting [`factor`](SparseLu::factor) — mirroring
//!    the CG→BiCGSTAB→direct ladder idiom in [`crate::recover`].
//!
//! The symbolic phase relies on the structural-zero guarantee of
//! [`crate::sparse::TripletBuilder::build`]: patterns depend only on the
//! coordinates assembled, never on the values, so one analysis serves
//! every value set stamped over the same stencil.

use crate::error::{NumError, NumResult};
use crate::sparse::CsrMatrix;

/// Refactor stability guard: the reused pivot must be within this factor
/// of the column's largest remaining entry, or the refactor is declared
/// unstable and a fresh partial-pivoting factorization runs instead.
pub const PIVOT_GROWTH_LIMIT: f64 = 1e6;

const NONE: usize = usize::MAX;

/// Which numeric path a [`SparseLu::refactor`] call actually took.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Refactorization {
    /// No numeric factorization existed yet; a fresh `factor` ran.
    Fresh,
    /// The recorded pattern and pivot sequence were reused.
    Reused,
    /// The replay went unstable (pivot growth) and automatically fell
    /// back to a fresh partial-pivoting factorization.
    PivotFallback,
}

/// One-time symbolic analysis of a sparsity pattern: permutations, block
/// structure, and a column-compressed view of the permuted pattern.
#[derive(Clone, Debug)]
pub struct LuSymbolic {
    n: usize,
    /// Pattern copy used to validate that factor/refactor inputs carry the
    /// analyzed structure.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Column permutation: original column of permuted column `j`.
    qcol: Vec<usize>,
    /// Row permutation: original row of permuted row `i` (diagonal of the
    /// permuted matrix is structurally nonzero by the maximum transversal).
    prow: Vec<usize>,
    /// Block boundaries in permuted coordinates (`blocks[b]..blocks[b+1]`);
    /// the permuted matrix is block *upper* triangular across them.
    blocks: Vec<usize>,
    /// Permuted-pattern CSC: for permuted column `q`, entries
    /// `cptr[q]..cptr[q+1]` list (permuted row, index into the input
    /// matrix's `values()` array) sorted by permuted row.
    cptr: Vec<usize>,
    crow: Vec<usize>,
    capos: Vec<usize>,
}

impl LuSymbolic {
    /// Dimension of the analyzed (square) pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of diagonal blocks in the BTF permutation.
    pub fn block_count(&self) -> usize {
        self.blocks.len() - 1
    }

    fn check_pattern(&self, a: &CsrMatrix) -> NumResult<()> {
        if a.rows() != self.n || a.cols() != self.n {
            return Err(NumError::dims(format!(
                "matrix is {}x{}, symbolic analysis is for {}x{}",
                a.rows(),
                a.cols(),
                self.n,
                self.n
            )));
        }
        if a.row_ptr() != self.row_ptr.as_slice() || a.col_idx() != self.col_idx.as_slice() {
            return Err(NumError::invalid(
                "matrix sparsity pattern differs from the analyzed pattern",
            ));
        }
        Ok(())
    }
}

/// Numeric L/U factors over a symbolic analysis, reusable across value
/// sets via [`SparseLu::refactor`].
#[derive(Clone, Debug)]
struct LuNumeric {
    /// Unit-lower factor, per permuted column: rows are final (pivoted)
    /// positions strictly below the column.
    lptr: Vec<usize>,
    lrow: Vec<usize>,
    lval: Vec<f64>,
    /// Strictly-upper factor, per permuted column: rows are final pivot
    /// positions strictly above the column, ascending.
    uptr: Vec<usize>,
    urow: Vec<usize>,
    uval: Vec<f64>,
    /// Diagonal of U, per permuted column.
    udiag: Vec<f64>,
    /// Final row permutation: original row feeding pivoted position `i`.
    rperm: Vec<usize>,
    /// Symbolic permuted row → final pivoted position (per-block pivoting
    /// composed over the BTF permutation).
    pinv: Vec<usize>,
    /// Off-diagonal (block-coupling) entries per permuted column: rows are
    /// final positions in *earlier* blocks; `oapos` indexes the input
    /// matrix's `values()` for cheap regathering on refactor.
    optr: Vec<usize>,
    orow: Vec<usize>,
    oval: Vec<f64>,
    oapos: Vec<usize>,
}

/// A sparse LU solver bundling the symbolic analysis with (optionally)
/// numeric factors.
///
/// # Example
///
/// ```
/// use gnr_num::{SparseLu, TripletBuilder};
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 4.0);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 1.0);
/// b.push(1, 1, 3.0);
/// let a = b.build();
/// let mut lu = SparseLu::analyze(&a).expect("structurally nonsingular");
/// lu.factor(&a).expect("numerically nonsingular");
/// let x = lu.solve(&[1.0, 2.0]).expect("solves");
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    symbolic: LuSymbolic,
    numeric: Option<LuNumeric>,
}

impl SparseLu {
    /// Symbolic analysis of `a`'s sparsity pattern (values are ignored):
    /// maximum transversal, BTF block permutation, and per-block
    /// minimum-degree ordering.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] for non-square input and
    /// [`NumError::SingularMatrix`] when the pattern is structurally
    /// singular (no zero-free diagonal exists).
    pub fn analyze(a: &CsrMatrix) -> NumResult<SparseLu> {
        if a.rows() != a.cols() {
            return Err(NumError::dims(format!(
                "sparse lu requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        if n == 0 {
            return Err(NumError::invalid("sparse lu requires a non-empty matrix"));
        }
        let cmatch = maximum_transversal(a)?;
        let sccs = strongly_connected_components(a, &cmatch);
        // Tarjan emits SCCs successors-first (reverse topological order);
        // reversing makes every structural edge point to an equal-or-later
        // block, i.e. block *upper* triangular form.
        let mut qcol = Vec::with_capacity(n);
        let mut blocks = vec![0usize];
        for scc in sccs.iter().rev() {
            let start = qcol.len();
            // Fill-reducing ordering inside the block (identity for 1x1).
            let local = min_degree_order(a, &cmatch, scc);
            for &node in &local {
                qcol.push(node);
            }
            debug_assert_eq!(qcol.len(), start + scc.len());
            blocks.push(qcol.len());
        }
        let prow: Vec<usize> = qcol.iter().map(|&c| cmatch[c]).collect();
        // Inverse permutations for building the permuted CSC view.
        let mut qinv = vec![0usize; n];
        let mut pinv_sym = vec![0usize; n];
        for (p, &c) in qcol.iter().enumerate() {
            qinv[c] = p;
        }
        for (p, &r) in prow.iter().enumerate() {
            pinv_sym[r] = p;
        }
        // Permuted CSC: sort entries by (permuted col, permuted row) and
        // remember each entry's position in the input values array.
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        let nnz = col_idx.len();
        let mut entries: Vec<(usize, usize, usize)> = Vec::with_capacity(nnz);
        for r in 0..n {
            for k in row_ptr[r]..row_ptr[r + 1] {
                entries.push((qinv[col_idx[k]], pinv_sym[r], k));
            }
        }
        entries.sort_unstable();
        let mut cptr = vec![0usize; n + 1];
        let mut crow = Vec::with_capacity(nnz);
        let mut capos = Vec::with_capacity(nnz);
        for &(pc, pr, k) in &entries {
            cptr[pc + 1] += 1;
            crow.push(pr);
            capos.push(k);
        }
        for q in 0..n {
            cptr[q + 1] += cptr[q];
        }
        Ok(SparseLu {
            symbolic: LuSymbolic {
                n,
                row_ptr,
                col_idx,
                qcol,
                prow,
                blocks,
                cptr,
                crow,
                capos,
            },
            numeric: None,
        })
    }

    /// The symbolic analysis (permutations and block structure).
    pub fn symbolic(&self) -> &LuSymbolic {
        &self.symbolic
    }

    /// `true` once numeric factors exist and [`SparseLu::solve`] may run.
    pub fn is_factored(&self) -> bool {
        self.numeric.is_some()
    }

    /// Fresh left-looking factorization with partial pivoting inside each
    /// diagonal block. Records the pattern and pivot sequence that
    /// subsequent [`refactor`](SparseLu::refactor) calls replay.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] when a block is numerically
    /// singular, and pattern/dimension errors when `a` does not carry the
    /// analyzed structure.
    pub fn factor(&mut self, a: &CsrMatrix) -> NumResult<()> {
        self.symbolic.check_pattern(a)?;
        let sym = &self.symbolic;
        let n = sym.n;
        let avals = a.values();
        let mut num = LuNumeric {
            lptr: vec![0; n + 1],
            lrow: Vec::new(),
            lval: Vec::new(),
            uptr: vec![0; n + 1],
            urow: Vec::new(),
            uval: Vec::new(),
            udiag: vec![0.0; n],
            rperm: vec![NONE; n],
            pinv: vec![NONE; n],
            optr: vec![0; n + 1],
            orow: Vec::new(),
            oval: Vec::new(),
            oapos: Vec::new(),
        };
        // Per-block Gilbert–Peierls working state, sized for the largest
        // block but indexed with block-local raw rows.
        let mut w = vec![0.0f64; n];
        let mut lpinv = vec![NONE; n]; // local raw row -> local pivot pos
        let mut visited = vec![0u32; n];
        let mut stamp = 0u32;
        let mut topo: Vec<usize> = Vec::new();
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        // Block-local L in raw-row coordinates, remapped per block.
        let mut bl_ptr: Vec<usize> = Vec::new();
        let mut bl_row: Vec<usize> = Vec::new();
        let mut bl_val: Vec<f64> = Vec::new();
        let mut bu_cols: Vec<Vec<(usize, f64)>> = Vec::new();

        for b in 0..sym.block_count() {
            let (k0, k1) = (sym.blocks[b], sym.blocks[b + 1]);
            let m = k1 - k0;
            for v in lpinv.iter_mut().take(m) {
                *v = NONE;
            }
            bl_ptr.clear();
            bl_ptr.push(0);
            bl_row.clear();
            bl_val.clear();
            bu_cols.clear();
            for j in 0..m {
                let q = k0 + j;
                // Gather the permuted column: block entries seed the solve,
                // earlier-block entries go straight to off-diagonal storage.
                stamp += 1;
                topo.clear();
                let mut seeds: Vec<(usize, f64)> = Vec::new();
                for e in sym.cptr[q]..sym.cptr[q + 1] {
                    let p = sym.crow[e];
                    let k = sym.capos[e];
                    if p < k0 {
                        num.orow.push(num.pinv[p]);
                        num.oval.push(avals[k]);
                        num.oapos.push(k);
                    } else {
                        debug_assert!(p < k1, "entry below the diagonal block");
                        seeds.push((p - k0, avals[k]));
                    }
                }
                num.optr[q + 1] = num.orow.len();
                // Symbolic: depth-first reach of the seed rows through the
                // graph of the already-factored local L columns; reverse
                // postorder is a valid elimination order.
                for &(seed, _) in &seeds {
                    if visited[seed] == stamp {
                        continue;
                    }
                    visited[seed] = stamp;
                    dfs_stack.push((seed, 0));
                    while let Some(&mut (node, ref mut child)) = dfs_stack.last_mut() {
                        let piv = lpinv[node];
                        let mut descended = false;
                        if piv != NONE {
                            let lo = bl_ptr[piv];
                            let hi = bl_ptr[piv + 1];
                            while lo + *child < hi {
                                let next = bl_row[lo + *child];
                                *child += 1;
                                if visited[next] != stamp {
                                    visited[next] = stamp;
                                    dfs_stack.push((next, 0));
                                    descended = true;
                                    break;
                                }
                            }
                        }
                        if !descended {
                            if let Some((done, _)) = dfs_stack.pop() {
                                topo.push(done);
                            }
                        }
                    }
                }
                // Numeric: scatter, eliminate in reverse postorder.
                for &(row, val) in &seeds {
                    w[row] = val;
                }
                let mut ucol: Vec<(usize, f64)> = Vec::new();
                for &node in topo.iter().rev() {
                    let piv = lpinv[node];
                    if piv == NONE {
                        continue;
                    }
                    let ukj = w[node];
                    ucol.push((piv, ukj));
                    for e in bl_ptr[piv]..bl_ptr[piv + 1] {
                        w[bl_row[e]] -= bl_val[e] * ukj;
                    }
                }
                // Partial pivot among the not-yet-pivotal pattern rows.
                let mut pivot_row = NONE;
                let mut pivot_mag = 0.0f64;
                for &node in &topo {
                    if lpinv[node] == NONE {
                        let mag = w[node].abs();
                        if mag > pivot_mag || (pivot_row == NONE && mag > 0.0) {
                            pivot_mag = mag;
                            pivot_row = node;
                        }
                    }
                }
                if pivot_row == NONE || pivot_mag == 0.0 || !pivot_mag.is_finite() {
                    // Clean up the scatter before reporting.
                    for &node in &topo {
                        w[node] = 0.0;
                    }
                    self.numeric = None;
                    return Err(NumError::SingularMatrix { pivot: sym.qcol[q] });
                }
                let pivot = w[pivot_row];
                lpinv[pivot_row] = j;
                num.rperm[k0 + j] = sym.prow[k0 + pivot_row];
                num.udiag[q] = pivot;
                // L column: remaining non-pivotal pattern rows (kept even
                // when numerically zero — refactor replays this pattern).
                for &node in &topo {
                    if lpinv[node] == NONE {
                        bl_row.push(node);
                        bl_val.push(w[node] / pivot);
                    }
                    w[node] = 0.0;
                }
                bl_ptr.push(bl_row.len());
                // U column in ascending pivot order (a topological order
                // the refactor replay can follow directly).
                ucol.sort_unstable_by_key(|&(k, _)| k);
                bu_cols.push(ucol);
            }
            // All local rows are pivotal now; publish final coordinates.
            for (raw, &piv) in lpinv.iter().enumerate().take(m) {
                debug_assert_ne!(piv, NONE);
                num.pinv[k0 + raw] = k0 + piv;
            }
            for j in 0..m {
                let q = k0 + j;
                for e in bl_ptr[j]..bl_ptr[j + 1] {
                    num.lrow.push(k0 + lpinv[bl_row[e]]);
                    num.lval.push(bl_val[e]);
                }
                num.lptr[q + 1] = num.lrow.len();
                for &(k, v) in &bu_cols[j] {
                    num.urow.push(k0 + k);
                    num.uval.push(v);
                }
                num.uptr[q + 1] = num.urow.len();
            }
        }
        self.numeric = Some(num);
        Ok(())
    }

    /// Numeric refactorization with the recorded pattern and pivot
    /// sequence. Automatically falls back to a fresh pivoting
    /// [`factor`](SparseLu::factor) when no factors exist yet or when the
    /// pivot-growth estimate flags the replay unstable; the returned
    /// [`Refactorization`] says which path ran.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] when even the pivoting
    /// fallback finds the matrix singular, and pattern/dimension errors
    /// when `a` does not carry the analyzed structure.
    pub fn refactor(&mut self, a: &CsrMatrix) -> NumResult<Refactorization> {
        if self.numeric.is_none() {
            self.factor(a)?;
            return Ok(Refactorization::Fresh);
        }
        match self.refactor_strict(a) {
            Ok(()) => Ok(Refactorization::Reused),
            Err(NumError::DimensionMismatch { detail }) => {
                Err(NumError::DimensionMismatch { detail })
            }
            Err(NumError::InvalidInput { detail }) => Err(NumError::InvalidInput { detail }),
            Err(_) => {
                // Unstable or singular under the reused pivots: repivot.
                self.factor(a)?;
                Ok(Refactorization::PivotFallback)
            }
        }
    }

    /// The strict replay: same pattern, same pivots, new values. Errors
    /// (without falling back) when the reused pivot sequence goes
    /// unstable.
    fn refactor_strict(&mut self, a: &CsrMatrix) -> NumResult<()> {
        self.symbolic.check_pattern(a)?;
        let sym = &self.symbolic;
        let num = self
            .numeric
            .as_mut()
            .ok_or_else(|| NumError::invalid("refactor before factor"))?;
        let n = sym.n;
        let avals = a.values();
        // Off-diagonal values: straight regather.
        for (pos, &k) in num.oapos.iter().enumerate() {
            num.oval[pos] = avals[k];
        }
        let mut w = vec![0.0f64; n];
        for q in 0..n {
            // Scatter the block part of permuted column q into final
            // (pivoted) coordinates. Off-diagonal entries were handled
            // above; `optr` tells how many lead entries of the column they
            // consumed, and block entries are exactly the rest.
            let ofs = num.optr[q + 1] - num.optr[q];
            for e in sym.cptr[q] + ofs..sym.cptr[q + 1] {
                w[num.pinv[sym.crow[e]]] = avals[sym.capos[e]];
            }
            // Eliminate with the recorded U pattern, ascending pivot order.
            for pos in num.uptr[q]..num.uptr[q + 1] {
                let k = num.urow[pos];
                let ukj = w[k];
                num.uval[pos] = ukj;
                w[k] = 0.0;
                if ukj != 0.0 {
                    for e in num.lptr[k]..num.lptr[k + 1] {
                        w[num.lrow[e]] -= num.lval[e] * ukj;
                    }
                }
            }
            let pivot = w[q];
            w[q] = 0.0;
            let mut colmax = pivot.abs();
            for pos in num.lptr[q]..num.lptr[q + 1] {
                colmax = colmax.max(w[num.lrow[pos]].abs());
            }
            if pivot == 0.0 || !pivot.is_finite() || pivot.abs() * PIVOT_GROWTH_LIMIT < colmax {
                // Clean the scatter so the caller can retry with factor().
                for pos in num.lptr[q]..num.lptr[q + 1] {
                    w[num.lrow[pos]] = 0.0;
                }
                return Err(NumError::SingularMatrix { pivot: sym.qcol[q] });
            }
            num.udiag[q] = pivot;
            for pos in num.lptr[q]..num.lptr[q + 1] {
                let r = num.lrow[pos];
                num.lval[pos] = w[r] / pivot;
                w[r] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` with the current factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when no numeric factorization
    /// exists and [`NumError::DimensionMismatch`] for a wrong-length `b`.
    pub fn solve(&self, b: &[f64]) -> NumResult<Vec<f64>> {
        let sym = &self.symbolic;
        let num = self
            .numeric
            .as_ref()
            .ok_or_else(|| NumError::invalid("solve before factor"))?;
        if b.len() != sym.n {
            return Err(NumError::dims(format!(
                "rhs length {} does not match dimension {}",
                b.len(),
                sym.n
            )));
        }
        let mut y: Vec<f64> = num.rperm.iter().map(|&r| b[r]).collect();
        // Block upper triangular: solve the last block first, then push its
        // contribution into the earlier blocks through the off-diagonals.
        for bidx in (0..sym.block_count()).rev() {
            let (k0, k1) = (sym.blocks[bidx], sym.blocks[bidx + 1]);
            // L forward solve (unit diagonal) within the block.
            for j in k0..k1 {
                let yj = y[j];
                if yj != 0.0 {
                    for e in num.lptr[j]..num.lptr[j + 1] {
                        y[num.lrow[e]] -= num.lval[e] * yj;
                    }
                }
            }
            // U backward solve within the block.
            for j in (k0..k1).rev() {
                let xj = y[j] / num.udiag[j];
                y[j] = xj;
                if xj != 0.0 {
                    for e in num.uptr[j]..num.uptr[j + 1] {
                        y[num.urow[e]] -= num.uval[e] * xj;
                    }
                }
            }
            // Couple into earlier blocks.
            for j in k0..k1 {
                let xj = y[j];
                if xj != 0.0 {
                    for e in num.optr[j]..num.optr[j + 1] {
                        y[num.orow[e]] -= num.oval[e] * xj;
                    }
                }
            }
        }
        let mut x = vec![0.0; sym.n];
        for (j, &c) in sym.qcol.iter().enumerate() {
            x[c] = y[j];
        }
        Ok(x)
    }
}

/// One-shot convenience: analyze + factor + solve. Used by the direct
/// rung of [`crate::recover::solve_linear_robust`].
///
/// # Errors
///
/// Propagates analysis and factorization failures.
pub fn sparse_solve(a: &CsrMatrix, b: &[f64]) -> NumResult<Vec<f64>> {
    let mut lu = SparseLu::analyze(a)?;
    lu.factor(a)?;
    lu.solve(b)
}

/// Maximum transversal (Duff's MC21 with a cheap-match warm start):
/// returns `cmatch` with `cmatch[c]` the row matched to column `c`, such
/// that `A[cmatch[c], c]` is a stored entry for every column.
fn maximum_transversal(a: &CsrMatrix) -> NumResult<Vec<usize>> {
    let n = a.rows();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut cmatch = vec![NONE; n];
    let mut rmatch = vec![NONE; n];
    // Cheap pass: match each row to the first free column in it.
    for r in 0..n {
        for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
            if cmatch[c] == NONE {
                cmatch[c] = r;
                rmatch[r] = c;
                break;
            }
        }
    }
    // Augmenting passes for the rows the cheap match missed (iterative
    // DFS over alternating paths; `visited` is a per-pass column stamp).
    let mut visited = vec![0u32; n];
    let mut pass = 0u32;
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (row, scan offset)
    let mut via: Vec<usize> = Vec::new(); // column that led to stack[i] (i >= 1)
    for r0 in 0..n {
        if rmatch[r0] != NONE {
            continue;
        }
        pass += 1;
        stack.clear();
        via.clear();
        stack.push((r0, 0));
        let mut augmented = false;
        'dfs: while let Some(&mut (r, ref mut scan)) = stack.last_mut() {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            while lo + *scan < hi {
                let c = col_idx[lo + *scan];
                *scan += 1;
                if visited[c] == pass {
                    continue;
                }
                visited[c] = pass;
                if cmatch[c] == NONE {
                    // Free column: flip the alternating path along the stack.
                    let mut col = c;
                    for level in (0..stack.len()).rev() {
                        let row = stack[level].0;
                        let prev = rmatch[row];
                        cmatch[col] = row;
                        rmatch[row] = col;
                        if level == 0 {
                            debug_assert_eq!(prev, NONE);
                        } else {
                            debug_assert_eq!(prev, via[level - 1]);
                            col = via[level - 1];
                        }
                    }
                    augmented = true;
                    break 'dfs;
                }
                via.push(c);
                stack.push((cmatch[c], 0));
                continue 'dfs;
            }
            stack.pop();
            via.pop();
        }
        if !augmented {
            return Err(NumError::SingularMatrix { pivot: r0 });
        }
    }
    Ok(cmatch)
}

/// Tarjan's strongly-connected components (iterative) on the matched
/// graph `j -> k` iff `A[cmatch[j], k]` is stored. SCCs are emitted
/// successors-first (reverse topological order of the condensation).
fn strongly_connected_components(a: &CsrMatrix, cmatch: &[usize]) -> Vec<Vec<usize>> {
    let n = a.rows();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let succ = |j: usize| -> &[usize] {
        let r = cmatch[j];
        &col_idx[row_ptr[r]..row_ptr[r + 1]]
    };
    let mut index = vec![NONE; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, child offset)
    for root in 0..n {
        if index[root] != NONE {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            let succs = succ(v);
            if *child < succs.len() {
                let u = succs[*child];
                *child += 1;
                if index[u] == NONE {
                    index[u] = next_index;
                    lowlink[u] = next_index;
                    next_index += 1;
                    scc_stack.push(u);
                    on_stack[u] = true;
                    call.push((u, 0));
                } else if on_stack[u] {
                    lowlink[v] = lowlink[v].min(index[u]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let u = scc_stack.pop().expect("scc stack underflow");
                        on_stack[u] = false;
                        comp.push(u);
                        if u == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Minimum-degree fill-reducing ordering of one diagonal block, run on
/// the symmetrized block pattern (ties broken by smallest node index for
/// determinism). Returns the block's nodes in elimination order.
fn min_degree_order(a: &CsrMatrix, cmatch: &[usize], scc: &[usize]) -> Vec<usize> {
    let m = scc.len();
    if m <= 2 {
        return scc.to_vec();
    }
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut local = std::collections::HashMap::with_capacity(m);
    for (i, &node) in scc.iter().enumerate() {
        local.insert(node, i);
    }
    // Symmetrized local adjacency (pattern of B + Bᵀ restricted to the
    // block), excluding the diagonal.
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); m];
    for (i, &node) in scc.iter().enumerate() {
        let r = cmatch[node];
        for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
            if let Some(&j) = local.get(&c) {
                if i != j {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
    }
    let mut alive = vec![true; m];
    let mut order = Vec::with_capacity(m);
    for _ in 0..m {
        let mut best = NONE;
        let mut best_deg = usize::MAX;
        for (i, alive_i) in alive.iter().enumerate() {
            if *alive_i && adj[i].len() < best_deg {
                best_deg = adj[i].len();
                best = i;
            }
        }
        let v = best;
        alive[v] = false;
        order.push(scc[v]);
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &nbrs {
            adj[u].remove(&v);
        }
        // Eliminating v turns its neighborhood into a clique (the fill).
        for (i, &u) in nbrs.iter().enumerate() {
            for &t in &nbrs[i + 1..] {
                adj[u].insert(t);
                adj[t].insert(u);
            }
        }
        adj[v].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::sparse::TripletBuilder;

    fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        a.to_dense().solve(b).expect("dense solves")
    }

    fn residual_inf(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .fold(0.0f64, |m, (axi, bi)| m.max((axi - bi).abs()))
    }

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0 + 0.01 * i as f64);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    /// An MNA-shaped system: node conductances plus a voltage-source
    /// branch row/column whose diagonal is structurally zero — the case
    /// that forces a genuine maximum transversal.
    fn mna_like() -> CsrMatrix {
        // Unknowns: v1, v2, i_src. Source fixes v1 = 1 V; R = 2 between
        // v1 and v2; R = 1 from v2 to ground.
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 0.5);
        b.push(0, 1, -0.5);
        b.push(0, 2, 1.0);
        b.push(1, 0, -0.5);
        b.push(1, 1, 1.5);
        b.push(2, 0, 1.0);
        b.build()
    }

    #[test]
    fn solves_spd_tridiagonal() {
        let a = laplacian_1d(12);
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = sparse_solve(&a, &b).unwrap();
        let xd = dense_solve(&a, &b);
        for (xi, di) in x.iter().zip(&xd) {
            assert!((xi - di).abs() < 1e-12, "{xi} vs {di}");
        }
    }

    #[test]
    fn solves_zero_diagonal_mna_system() {
        let a = mna_like();
        let rhs = vec![0.0, 0.0, 1.0];
        let x = sparse_solve(&a, &rhs).unwrap();
        // v1 = 1 V, v2 = 1/3 V, i_src = -(1 - 1/3)/2 = -1/3 A.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn btf_finds_decoupled_blocks() {
        // Two independent 2x2 systems interleaved: BTF must find >= 2
        // diagonal blocks and still solve exactly.
        let mut b = TripletBuilder::new(4, 4);
        b.push(0, 0, 3.0);
        b.push(0, 2, 1.0);
        b.push(2, 0, 1.0);
        b.push(2, 2, 2.0);
        b.push(1, 1, 4.0);
        b.push(1, 3, -1.0);
        b.push(3, 1, -1.0);
        b.push(3, 3, 5.0);
        let a = b.build();
        let lu = SparseLu::analyze(&a).unwrap();
        assert!(lu.symbolic().block_count() >= 2);
        let rhs = vec![1.0, 2.0, 3.0, 4.0];
        let x = sparse_solve(&a, &rhs).unwrap();
        assert!(residual_inf(&a, &x, &rhs) < 1e-12);
    }

    #[test]
    fn triangular_chain_becomes_one_by_one_blocks() {
        // Upper-triangular pattern: every SCC is a singleton, so the BTF
        // solve is pure substitution.
        let mut b = TripletBuilder::new(4, 4);
        for i in 0..4 {
            b.push(i, i, 2.0);
            if i + 1 < 4 {
                b.push(i, i + 1, 1.0);
            }
        }
        let a = b.build();
        let lu = SparseLu::analyze(&a).unwrap();
        assert_eq!(lu.symbolic().block_count(), 4);
        let rhs = vec![1.0, 1.0, 1.0, 1.0];
        let x = sparse_solve(&a, &rhs).unwrap();
        assert!(residual_inf(&a, &x, &rhs) < 1e-12);
    }

    #[test]
    fn structurally_singular_pattern_is_an_error_not_a_panic() {
        // Column 2 is empty: no transversal exists.
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 1, 4.0);
        let a = b.build();
        assert!(matches!(
            SparseLu::analyze(&a),
            Err(NumError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn numerically_singular_matrix_is_an_error_not_a_panic() {
        // Structurally fine, numerically rank-deficient (row2 = 2*row1).
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 4.0);
        let a = b.build();
        let mut lu = SparseLu::analyze(&a).unwrap();
        assert!(matches!(
            lu.factor(&a),
            Err(NumError::SingularMatrix { .. })
        ));
        assert!(!lu.is_factored());
        assert!(lu.solve(&[1.0, 1.0]).is_err(), "solve before factor errors");
    }

    #[test]
    fn explicit_structural_zero_pivot_is_singular() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.push(0, 0, -1.0); // structural entry, numeric zero
        let a = b.build();
        assert_eq!(a.nnz(), 1);
        let mut lu = SparseLu::analyze(&a).unwrap();
        assert!(matches!(
            lu.factor(&a),
            Err(NumError::SingularMatrix { pivot: 0 })
        ));
    }

    #[test]
    fn non_square_and_wrong_rhs_rejected() {
        let mut b = TripletBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        assert!(matches!(
            SparseLu::analyze(&b.build()),
            Err(NumError::DimensionMismatch { .. })
        ));
        let a = laplacian_1d(4);
        let mut lu = SparseLu::analyze(&a).unwrap();
        lu.factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = laplacian_1d(5);
        let mut lu = SparseLu::analyze(&a).unwrap();
        let other = laplacian_1d(6);
        assert!(lu.factor(&other).is_err());
        let mut b = TripletBuilder::new(5, 5);
        for i in 0..5 {
            b.push(i, i, 1.0);
        }
        assert!(matches!(
            lu.factor(&b.build()),
            Err(NumError::InvalidInput { .. })
        ));
    }

    #[test]
    fn refactor_reuses_pattern_and_matches_dense() {
        let n = 30;
        let a = laplacian_1d(n);
        let mut lu = SparseLu::analyze(&a).unwrap();
        assert_eq!(lu.refactor(&a).unwrap(), Refactorization::Fresh);
        // New values over the same pattern.
        let mut vals2 = a.clone();
        for (k, v) in vals2.values_mut().iter_mut().enumerate() {
            *v += 0.1 * ((k % 7) as f64 - 3.0) * 0.01;
        }
        assert_eq!(lu.refactor(&vals2).unwrap(), Refactorization::Reused);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x = lu.solve(&b).unwrap();
        let xd = dense_solve(&vals2, &b);
        for (xi, di) in x.iter().zip(&xd) {
            assert!((xi - di).abs() < 1e-10, "{xi} vs {di}");
        }
    }

    #[test]
    fn refactor_is_bit_deterministic() {
        let n = 25;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut lu1 = SparseLu::analyze(&a).unwrap();
        lu1.factor(&a).unwrap();
        lu1.refactor(&a).unwrap();
        let x1 = lu1.solve(&b).unwrap();
        let mut lu2 = SparseLu::analyze(&a).unwrap();
        lu2.factor(&a).unwrap();
        lu2.refactor(&a).unwrap();
        let x2 = lu2.solve(&b).unwrap();
        assert_eq!(x1, x2, "refactor must be bit-deterministic");
    }

    #[test]
    fn unstable_refactor_falls_back_to_pivoting_factor() {
        // Factor with a dominant (0,0); then shrink it by 1e9 so the
        // recorded pivot goes unstable and the guard must repivot.
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(1, 1, -1.0);
        let a = b.build();
        let mut lu = SparseLu::analyze(&a).unwrap();
        lu.factor(&a).unwrap();
        let mut shifted = a.clone();
        shifted.values_mut()[0] = 1e-9; // (0,0): pivot collapses
        shifted.values_mut()[3] = -1.0;
        let kind = lu.refactor(&shifted).unwrap();
        assert_eq!(kind, Refactorization::PivotFallback);
        let rhs = vec![1.0, 0.0];
        let x = lu.solve(&rhs).unwrap();
        assert!(residual_inf(&shifted, &x, &rhs) < 1e-9);
    }

    #[test]
    fn random_patterns_match_dense_lu() {
        let mut rng = Rng::seed_from_u64(20080608);
        for trial in 0..25 {
            let n = 5 + rng.below(40);
            let mut tb = TripletBuilder::new(n, n);
            for i in 0..n {
                // Diagonally dominant base keeps the systems well
                // conditioned so 1e-10 agreement is meaningful.
                tb.push(i, i, 4.0 + rng.uniform());
                let fan = 1 + rng.below(4);
                for _ in 0..fan {
                    let j = rng.below(n);
                    if j != i {
                        tb.push(i, j, rng.uniform() - 0.5);
                    }
                }
            }
            let a = tb.build();
            let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let x = sparse_solve(&a, &b).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            let xd = dense_solve(&a, &b);
            for (xi, di) in x.iter().zip(&xd) {
                assert!(
                    (xi - di).abs() < 1e-10,
                    "trial {trial} (n={n}): {xi} vs {di}"
                );
            }
        }
    }
}
