//! `gnr-spice` — a table-lookup circuit simulator for GNRFET circuits.
//!
//! Implements the circuit level of the paper (§3): "a simulator based on
//! table lookup techniques was implemented to simulate circuits built with
//! GNRFETs". Devices are [`gnr_device::DeviceTable`]s — tabulated
//! `I_D(V_GS, V_DS)` and `Q(V_GS, V_DS)` — wrapped with the extrinsic
//! parasitics of Fig. 3(a): contact resistances `R_S = R_D ∈ [1, 100] kΩ`
//! (nominal 10 kΩ) and junction capacitances
//! `C_GS,e = C_GD,e = 0.01–0.1 aF/nm × 40 nm` for the 4-GNR array.
//!
//! * [`circuit`] — netlist and modified nodal analysis (MNA) stamps;
//! * [`dc`] — Newton operating point, DC sweeps, voltage transfer curves;
//! * [`ac`] — small-signal frequency sweeps at a DC operating point
//!   (complex MNA, `(G + jωC)·v = b`);
//! * [`transient`] — backward-Euler transient with per-step Newton and
//!   bias-dependent device capacitances;
//! * [`builders`] — the paper's benchmark circuits: FO4 inverter, N-stage
//!   ring oscillator, cross-coupled latch;
//! * [`measure`] — propagation delay, oscillation frequency, static and
//!   dynamic power, energy-delay product, and butterfly-curve static noise
//!   margins.
//!
//! # Example
//!
//! ```no_run
//! use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
//! use gnr_device::table::TableGrid;
//! use gnr_spice::builders::{ExtrinsicParasitics, InverterChain};
//! use gnr_spice::measure::fo4_inverter_metrics;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = gnr_num::par::ExecCtx::from_env();
//! let cfg = DeviceConfig::paper_nominal(12)?;
//! let model = SbfetModel::new(&cfg)?;
//! let n = DeviceTable::from_model(&ctx, &model, Polarity::NType, TableGrid::paper(), 4)?;
//! let p = n.mirrored();
//! let metrics = fo4_inverter_metrics(&n, &p, 0.4, &ExtrinsicParasitics::nominal())?;
//! println!("delay {} ps", metrics.delay_s * 1e12);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ac;
pub mod builders;
pub mod circuit;
pub mod dc;
pub mod error;
pub mod measure;
pub mod mna;
pub mod netlist;
pub mod rawfile;
pub mod transient;

pub use circuit::{Circuit, Element, NodeId, Waveform};
pub use dc::{dc_operating_point, DcOptions};
pub use error::SpiceError;
pub use mna::MnaSolverKind;
pub use netlist::{parse_deck, Deck, ElaboratedDeck, ModelBindings, ParseError, ParseErrorKind};
pub use transient::{transient, Integrator, TransientOptions, TransientRecovery};
