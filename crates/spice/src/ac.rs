//! AC small-signal analysis.
//!
//! Linearizes the circuit at a DC operating point and solves the complex
//! nodal system `(G + jωC)·v = b` over a frequency sweep. `G` is the DC
//! Newton Jacobian (FET g_m/g_ds included); `C` collects the linear
//! capacitors and the bias-frozen device capacitances. Used to measure
//! inverter small-signal gain and bandwidth — the frequency-domain
//! counterpart of the transient figures of merit.

use crate::circuit::{Circuit, Element, NodeId};
use crate::dc::{dc_operating_point, DcOptions};
use crate::error::SpiceError;
use gnr_num::budget::ExecLimits;
use gnr_num::{c64, CMatrix, Complex64, Matrix};

/// One frequency point of an AC sweep: complex node phasors (per MNA
/// unknown) for a unit excitation.
#[derive(Clone, Debug)]
pub struct AcPoint {
    /// Frequency \[Hz\].
    pub frequency_hz: f64,
    /// Phasor solution (node voltages then source branch currents).
    pub phasors: Vec<Complex64>,
}

impl AcPoint {
    /// The complex voltage of `node` (0 for ground).
    pub fn voltage(&self, circuit: &Circuit, node: NodeId) -> Complex64 {
        match circuit.mna_index(node) {
            None => Complex64::ZERO,
            Some(i) => self.phasors[i],
        }
    }
}

/// Result of an AC sweep.
#[derive(Clone, Debug)]
pub struct AcSweep {
    /// Points, one per requested frequency.
    pub points: Vec<AcPoint>,
    /// The DC operating point the linearization used.
    pub operating_point: Vec<f64>,
}

impl AcSweep {
    /// Magnitude transfer `|V(out)| / |V(in)|` per frequency.
    pub fn gain(&self, circuit: &Circuit, input: NodeId, output: NodeId) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                let vi = p.voltage(circuit, input).norm().max(1e-300);
                let vo = p.voltage(circuit, output).norm();
                (p.frequency_hz, vo / vi)
            })
            .collect()
    }

    /// The −3 dB bandwidth relative to the lowest-frequency gain, if the
    /// sweep crosses it.
    pub fn bandwidth_3db(&self, circuit: &Circuit, input: NodeId, output: NodeId) -> Option<f64> {
        let g = self.gain(circuit, input, output);
        let g0 = g.first()?.1;
        let target = g0 / 2f64.sqrt();
        for w in g.windows(2) {
            if w[0].1 >= target && w[1].1 < target {
                // Log-interpolate the crossing.
                let t = (w[0].1 - target) / (w[0].1 - w[1].1);
                return Some(w[0].0 * (w[1].0 / w[0].0).powf(t));
            }
        }
        None
    }
}

/// Runs an AC sweep: solves the DC operating point, linearizes, and
/// excites the `excited_source`-th voltage source with a unit AC amplitude
/// at each frequency in `freqs_hz`.
///
/// # Errors
///
/// Propagates DC and linear-solve failures; returns [`SpiceError::Config`]
/// for an invalid source index or empty frequency list.
pub fn ac_analysis(
    circuit: &Circuit,
    excited_source: usize,
    freqs_hz: &[f64],
    opts: DcOptions,
) -> Result<AcSweep, SpiceError> {
    if freqs_hz.is_empty() {
        return Err(SpiceError::config("ac sweep needs at least one frequency"));
    }
    if excited_source >= circuit.source_count() {
        return Err(SpiceError::config(format!(
            "no voltage source #{excited_source}"
        )));
    }
    let x0 = dc_operating_point(circuit, None, opts, &ExecLimits::none())?;
    let n = circuit.unknowns();
    // Small-signal conductance matrix: the DC Jacobian at x0.
    let mut g = Matrix::zeros(n, n);
    let mut res = vec![0.0; n];
    circuit.stamp(&x0, 0.0, 1e-12, None, &mut g, &mut res);
    // Capacitance matrix: linear caps + bias-frozen device caps.
    let c = capacitance_matrix(circuit, &x0);
    // Excitation vector: unit amplitude on the chosen source's branch row.
    let n_nodes = circuit.node_count() - 1;
    let mut rhs = vec![Complex64::ZERO; n];
    rhs[n_nodes + excited_source] = c64(1.0, 0.0);

    let mut points = Vec::with_capacity(freqs_hz.len());
    for &f in freqs_hz {
        let omega = 2.0 * std::f64::consts::PI * f;
        let y = CMatrix::from_fn(n, n, |i, j| c64(g.get(i, j), omega * c.get(i, j)));
        let phasors = y.solve(&rhs)?;
        points.push(AcPoint {
            frequency_hz: f,
            phasors,
        });
    }
    Ok(AcSweep {
        points,
        operating_point: x0,
    })
}

/// Assembles the small-signal capacitance matrix at the operating point.
fn capacitance_matrix(circuit: &Circuit, x0: &[f64]) -> Matrix {
    let n = circuit.unknowns();
    let mut c = Matrix::zeros(n, n);
    let mut stamp_pair = |a: NodeId, b: NodeId, cap: f64| {
        if cap <= 0.0 {
            return;
        }
        if let Some(ia) = circuit.mna_index(a) {
            c.add_to(ia, ia, cap);
            if let Some(ib) = circuit.mna_index(b) {
                c.add_to(ia, ib, -cap);
            }
        }
        if let Some(ib) = circuit.mna_index(b) {
            c.add_to(ib, ib, cap);
            if let Some(ia) = circuit.mna_index(a) {
                c.add_to(ib, ia, -cap);
            }
        }
    };
    for e in circuit.elements() {
        match e {
            Element::Capacitor { a, b, farads } => stamp_pair(*a, *b, *farads),
            Element::Fet { d, g, s, table } => {
                let vg = circuit.voltage(x0, *g);
                let vd = circuit.voltage(x0, *d);
                let vs = circuit.voltage(x0, *s);
                let cgs = table.cgs_intrinsic(vg - vs, vd - vs);
                let cgd = table.cgd_intrinsic(vg - vs, vd - vs);
                stamp_pair(*g, *s, cgs);
                stamp_pair(*g, *d, cgd);
            }
            _ => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;

    /// RC low-pass: |H(f)| = 1/sqrt(1 + (2 pi f R C)^2).
    #[test]
    fn rc_lowpass_matches_analytic() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-12); // pole at ~159 MHz... 1/(2 pi RC) = 159 MHz * 1e3 -> 159 MHz
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: r,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: cap,
        });
        let f_pole = 1.0 / (2.0 * std::f64::consts::PI * r * cap);
        let freqs: Vec<f64> = (0..7)
            .map(|k| f_pole * 10f64.powf(k as f64 / 2.0 - 1.5))
            .collect();
        let sweep = ac_analysis(&c, 0, &freqs, DcOptions::default()).unwrap();
        for p in &sweep.points {
            let h = p.voltage(&c, out).norm();
            let expect = 1.0 / (1.0 + (p.frequency_hz / f_pole).powi(2)).sqrt();
            assert!(
                (h - expect).abs() < 1e-9,
                "f={:.3e}: {h} vs {expect}",
                p.frequency_hz
            );
        }
        // Phase at the pole is -45 degrees.
        let at_pole = ac_analysis(&c, 0, &[f_pole], DcOptions::default()).unwrap();
        let phase = at_pole.points[0].voltage(&c, out).arg();
        assert!(
            (phase + std::f64::consts::FRAC_PI_4).abs() < 1e-6,
            "phase {phase}"
        );
        // Bandwidth extraction finds the pole.
        let bw = sweep.bandwidth_3db(&c, vin, out).unwrap();
        assert!(
            (bw / f_pole - 1.0).abs() < 0.2,
            "bw {bw:.3e} vs {f_pole:.3e}"
        );
    }

    /// A resistive divider is frequency-flat.
    #[test]
    fn resistive_divider_flat() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 3e3,
        });
        c.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let freqs = [1e3, 1e6, 1e9, 1e12];
        let sweep = ac_analysis(&c, 0, &freqs, DcOptions::default()).unwrap();
        for p in &sweep.points {
            let h = p.voltage(&c, out).norm();
            assert!((h - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Element::VSource {
            p: a,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.0),
        });
        c.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        assert!(ac_analysis(&c, 0, &[], DcOptions::default()).is_err());
        assert!(ac_analysis(&c, 5, &[1e6], DcOptions::default()).is_err());
    }
}
