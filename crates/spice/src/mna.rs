//! MNA linear-system backends: dense legacy path and the KLU-style
//! sparse path with per-circuit symbolic reuse.
//!
//! The Newton engines stamp the Jacobian through the [`MnaSink`]
//! abstraction so one stamping routine serves three backends: the legacy
//! dense [`Matrix`] (bit-for-bit the historical behavior), a fixed-pattern
//! [`CsrMatrix`] feeding [`SparseLu`], and a residual-only sink that
//! skips the matrix entirely (used by the Newton line search, which only
//! needs the trial residual).
//!
//! The sparse pattern is built once per circuit by [`mna_pattern`] — it
//! enumerates every slot any stamp can touch (including the capacitor
//! companion-model slots, so the same pattern serves DC and transient) —
//! and the symbolic analysis is reused across every Newton iteration,
//! gmin stage, ramp step, and time step on that circuit.

use crate::circuit::{Circuit, Element};
use crate::error::SpiceError;
use gnr_num::telemetry;
use gnr_num::{CsrMatrix, Matrix, Refactorization, SparseLu, TripletBuilder};

/// Which linear-system backend the Newton engines use.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub enum MnaSolverKind {
    /// Dense below [`SPARSE_AUTO_MIN_UNKNOWNS`] unknowns, sparse above
    /// (the default): small circuits keep the exact legacy dense path,
    /// large ones get the sparse solver.
    #[default]
    Auto,
    /// Always the legacy dense Jacobian + dense LU.
    Dense,
    /// Always the sparse Jacobian + KLU-style [`SparseLu`] (falls back to
    /// dense only if the pattern is structurally singular).
    Sparse,
}

/// `Auto` switches from the dense to the sparse backend at this unknown
/// count. Every pinned legacy circuit sits below it, so default-path
/// results stay bit-identical; the crossover itself is conservative —
/// the sparse path already wins well before this size.
pub const SPARSE_AUTO_MIN_UNKNOWNS: usize = 64;

/// Destination of the MNA Jacobian stamps. Residual stamping happens
/// unconditionally; matrix entries go through `add`, and a sink may
/// declare (via `wants_matrix`) that it discards them so stampers can
/// skip expensive Jacobian-only work (device `gm`/`gds` table lookups).
pub(crate) trait MnaSink {
    /// Resets all matrix entries to zero (start of a stamp).
    fn clear(&mut self);
    /// Accumulates `v` at `(i, j)`.
    fn add(&mut self, i: usize, j: usize, v: f64);
    /// `false` when the sink ignores `add` — residual-only stamping.
    fn wants_matrix(&self) -> bool {
        true
    }
}

impl MnaSink for Matrix {
    fn clear(&mut self) {
        *self = Matrix::zeros(self.rows(), self.cols());
    }

    fn add(&mut self, i: usize, j: usize, v: f64) {
        self.add_to(i, j, v);
    }
}

impl MnaSink for CsrMatrix {
    fn clear(&mut self) {
        for v in self.values_mut() {
            *v = 0.0;
        }
    }

    fn add(&mut self, i: usize, j: usize, v: f64) {
        let lo = self.row_ptr()[i];
        let hi = self.row_ptr()[i + 1];
        match self.col_idx()[lo..hi].binary_search(&j) {
            Ok(off) => self.values_mut()[lo + off] += v,
            Err(_) => unreachable!("MNA pattern is missing stamped slot ({i},{j})"),
        }
    }
}

/// Sink that discards matrix entries: stampers see `wants_matrix() ==
/// false` and skip Jacobian-only table lookups, leaving the residual
/// bit-identical to a full stamp.
pub(crate) struct ResidualOnly;

impl MnaSink for ResidualOnly {
    fn clear(&mut self) {}

    fn add(&mut self, _i: usize, _j: usize, _v: f64) {}

    fn wants_matrix(&self) -> bool {
        false
    }
}

/// Builds the value-independent MNA sparsity pattern of `circuit`: every
/// slot [`Circuit::stamp`] or the transient capacitor companion models
/// can touch, stored as explicit structural zeros (the
/// [`TripletBuilder::build`] guarantee keeps them in the pattern). One
/// pattern serves DC, transient, and every gmin/ramp stage.
pub(crate) fn mna_pattern(circuit: &Circuit) -> CsrMatrix {
    let n = circuit.unknowns();
    let n_nodes = circuit.node_count() - 1;
    let mut tb = TripletBuilder::new(n, n);
    // gmin to ground on every node row.
    for i in 0..n_nodes {
        tb.push(i, i, 0.0);
    }
    // Two-terminal conductance quad (resistors and capacitor companions).
    let quad = |tb: &mut TripletBuilder, ia: Option<usize>, ib: Option<usize>| {
        if let Some(ia) = ia {
            tb.push(ia, ia, 0.0);
            if let Some(ib) = ib {
                tb.push(ia, ib, 0.0);
            }
        }
        if let Some(ib) = ib {
            tb.push(ib, ib, 0.0);
            if let Some(ia) = ia {
                tb.push(ib, ia, 0.0);
            }
        }
    };
    let mut src_idx = 0usize;
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                quad(&mut tb, circuit.mna_index(*a), circuit.mna_index(*b));
            }
            Element::VSource { p, n, .. } => {
                let row = n_nodes + src_idx;
                if let Some(ip) = circuit.mna_index(*p) {
                    tb.push(row, ip, 0.0);
                    tb.push(ip, row, 0.0);
                }
                if let Some(in_) = circuit.mna_index(*n) {
                    tb.push(row, in_, 0.0);
                    tb.push(in_, row, 0.0);
                }
                src_idx += 1;
            }
            // Current sources contribute to the residual only.
            Element::ISource { .. } => {}
            Element::Fet { d, g, s, .. } => {
                let (idd, ig, is) = (
                    circuit.mna_index(*d),
                    circuit.mna_index(*g),
                    circuit.mna_index(*s),
                );
                // Channel: drain and source KCL rows vs all three nodes.
                if let Some(idd) = idd {
                    tb.push(idd, idd, 0.0);
                    if let Some(ig) = ig {
                        tb.push(idd, ig, 0.0);
                    }
                    if let Some(is) = is {
                        tb.push(idd, is, 0.0);
                    }
                }
                if let Some(is) = is {
                    tb.push(is, is, 0.0);
                    if let Some(idd) = idd {
                        tb.push(is, idd, 0.0);
                    }
                    if let Some(ig) = ig {
                        tb.push(is, ig, 0.0);
                    }
                }
                // Transient companion models: C_GS and C_GD quads.
                quad(&mut tb, ig, is);
                quad(&mut tb, ig, idd);
            }
        }
    }
    tb.build()
}

/// A per-circuit MNA linear system: the Jacobian storage plus the solver
/// that factors it. Built once per circuit (symbolic analysis paid once)
/// and reused across all Newton iterations and stages.
pub(crate) enum MnaSystem {
    /// Legacy dense Jacobian, dense partial-pivoting LU each solve.
    Dense {
        /// Dense Jacobian storage.
        jac: Matrix,
    },
    /// Fixed-pattern CSR Jacobian with KLU-style refactor/solve.
    Sparse {
        /// Sparse Jacobian storage (pattern fixed by [`mna_pattern`]).
        jac: CsrMatrix,
        /// The analyzed solver; `refactor` replays the recorded pivots.
        /// Boxed to keep the enum's variants comparably sized.
        lu: Box<SparseLu>,
    },
}

impl MnaSystem {
    /// Chooses the backend for `circuit` per `kind` and (for the sparse
    /// backend) runs the one-time symbolic analysis. A structurally
    /// singular pattern — possible only for degenerate netlists — falls
    /// back to the dense backend rather than failing.
    pub fn for_circuit(circuit: &Circuit, kind: MnaSolverKind) -> MnaSystem {
        let n = circuit.unknowns();
        let want_sparse = match kind {
            MnaSolverKind::Dense => false,
            MnaSolverKind::Sparse => true,
            MnaSolverKind::Auto => n >= SPARSE_AUTO_MIN_UNKNOWNS,
        };
        if want_sparse {
            let pattern = mna_pattern(circuit);
            match SparseLu::analyze(&pattern) {
                Ok(lu) => {
                    telemetry::counter_inc("spice.sparselu.analyze");
                    return MnaSystem::Sparse {
                        jac: pattern,
                        lu: Box::new(lu),
                    };
                }
                Err(_) => {
                    telemetry::counter_inc("spice.sparselu.analyze_fallbacks");
                }
            }
        }
        MnaSystem::Dense {
            jac: Matrix::zeros(n, n),
        }
    }

    /// The stamping destination for this system's Jacobian.
    pub fn sink(&mut self) -> &mut dyn MnaSink {
        match self {
            MnaSystem::Dense { jac } => jac,
            MnaSystem::Sparse { jac, .. } => jac,
        }
    }

    /// Factors the currently stamped Jacobian and solves for `res`.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix and dimension errors as
    /// [`SpiceError::Linear`].
    pub fn solve(&mut self, res: &[f64]) -> Result<Vec<f64>, SpiceError> {
        match self {
            MnaSystem::Dense { jac } => Ok(jac.solve(res)?),
            MnaSystem::Sparse { jac, lu } => {
                match lu.refactor(jac)? {
                    Refactorization::Fresh => telemetry::counter_inc("spice.sparselu.factor"),
                    Refactorization::Reused => telemetry::counter_inc("spice.sparselu.refactor"),
                    Refactorization::PivotFallback => {
                        telemetry::counter_inc("spice.sparselu.factor_fallback");
                    }
                }
                Ok(lu.solve(res)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{NodeId, Waveform};
    use std::sync::Arc;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(3.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 2e3,
        });
        c.add(Element::Resistor {
            a: mid,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        c
    }

    #[test]
    fn pattern_covers_every_stamped_slot() {
        // Stamp a full circuit (with FETs and caps) into the pattern CSR;
        // the `unreachable!` in `MnaSink::add` fires on any missing slot.
        let table = Arc::new(
            gnr_device::DeviceTable::from_samples(
                gnr_device::table::TableGrid {
                    vgs: (-0.2, 0.8),
                    vds: (0.0, 0.8),
                    points: 5,
                },
                gnr_device::Polarity::NType,
                |vg, vd| 1e-6 * (0.5 * vg + 0.1 * vd),
                |vg, _| 1e-18 * vg,
            )
            .expect("surrogate table"),
        );
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vdd,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.6),
        });
        c.add(Element::VSource {
            p: inp,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.3),
        });
        c.add(Element::Fet {
            d: out,
            g: inp,
            s: NodeId::GROUND,
            table: table.clone(),
        });
        c.add(Element::Resistor {
            a: vdd,
            b: out,
            ohms: 1e5,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-15,
        });
        let mut pat = mna_pattern(&c);
        let n = c.unknowns();
        let x = vec![0.1; n];
        let mut res = vec![0.0; n];
        c.stamp(&x, 0.0, 1e-9, None, &mut pat, &mut res);
        assert!(pat.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn pattern_is_square_and_value_independent() {
        let c = divider();
        let p1 = mna_pattern(&c);
        let p2 = mna_pattern(&c);
        assert_eq!(p1.rows(), c.unknowns());
        assert_eq!(p1.cols(), c.unknowns());
        assert!(p1.same_pattern(&p2));
    }

    #[test]
    fn sparse_and_dense_backends_agree() {
        let c = divider();
        let n = c.unknowns();
        let x = vec![0.0; n];
        let mut solutions = Vec::new();
        for kind in [MnaSolverKind::Dense, MnaSolverKind::Sparse] {
            let mut sys = MnaSystem::for_circuit(&c, kind);
            let mut res = vec![0.0; n];
            c.stamp(&x, 0.0, 1e-12, None, sys.sink(), &mut res);
            solutions.push(sys.solve(&res).expect("solves"));
        }
        for (a, b) in solutions[0].iter().zip(&solutions[1]) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn auto_is_dense_below_threshold() {
        let sys = MnaSystem::for_circuit(&divider(), MnaSolverKind::Auto);
        assert!(matches!(sys, MnaSystem::Dense { .. }));
    }

    #[test]
    fn residual_only_sink_reports_no_matrix() {
        assert!(!ResidualOnly.wants_matrix());
        let mut m = Matrix::zeros(2, 2);
        assert!(MnaSink::wants_matrix(&m));
        MnaSink::add(&mut m, 0, 0, 1.0);
        assert_eq!(m.get(0, 0), 1.0);
        MnaSink::clear(&mut m);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
