//! Error type for the circuit simulator.

use gnr_num::NumError;
use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction and analyses.
#[derive(Debug)]
pub enum SpiceError {
    /// Linear algebra failure inside a Newton step.
    Linear(NumError),
    /// Newton iteration failed to converge.
    NewtonDiverged {
        /// The analysis that failed ("dc", "transient step", ...).
        analysis: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Worst KCL residual \[A\].
        residual: f64,
    },
    /// Every rescue homotopy for an analysis was exhausted; records both
    /// the primary failure and the last rescue's failure so neither is
    /// hidden.
    RescueChainFailed {
        /// The analysis whose rescue chain ran dry ("dc", ...).
        analysis: &'static str,
        /// The rescue strategies tried, in order.
        attempted: &'static [&'static str],
        /// The original (pre-rescue) failure.
        primary: Box<SpiceError>,
        /// The failure of the final rescue attempt.
        last: Box<SpiceError>,
    },
    /// Invalid netlist or analysis configuration.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// A measurement could not be extracted from a waveform (e.g. the ring
    /// oscillator never oscillated).
    Measurement {
        /// Human-readable description.
        detail: String,
    },
    /// A SPICE deck failed to parse or elaborate.
    Parse(crate::netlist::ParseError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Linear(e) => write!(f, "linear solve: {e}"),
            SpiceError::NewtonDiverged {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} newton iteration did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            SpiceError::RescueChainFailed {
                analysis,
                attempted,
                primary,
                last,
            } => write!(
                f,
                "{analysis} rescue chain exhausted ({}): primary failure: {primary}; last rescue failure: {last}",
                attempted.join(", ")
            ),
            SpiceError::Config { detail } => write!(f, "invalid circuit: {detail}"),
            SpiceError::Measurement { detail } => write!(f, "measurement failed: {detail}"),
            SpiceError::Parse(e) => write!(f, "deck parse: {e}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Linear(e) => Some(e),
            SpiceError::RescueChainFailed { primary, .. } => Some(&**primary),
            SpiceError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for SpiceError {
    fn from(e: NumError) -> Self {
        SpiceError::Linear(e)
    }
}

impl From<crate::netlist::ParseError> for SpiceError {
    fn from(e: crate::netlist::ParseError) -> Self {
        SpiceError::Parse(e)
    }
}

impl SpiceError {
    /// Builds a [`SpiceError::Config`].
    pub fn config(detail: impl Into<String>) -> Self {
        SpiceError::Config {
            detail: detail.into(),
        }
    }

    /// Builds a [`SpiceError::Measurement`].
    pub fn measurement(detail: impl Into<String>) -> Self {
        SpiceError::Measurement {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SpiceError::config("floating node")
            .to_string()
            .contains("floating"));
        assert!(SpiceError::measurement("no oscillation")
            .to_string()
            .contains("oscillation"));
        let e = SpiceError::NewtonDiverged {
            analysis: "dc",
            iterations: 50,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("dc"));
    }
}
