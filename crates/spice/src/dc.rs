//! DC analyses: Newton operating point, sweeps, and voltage transfer
//! curves.

use crate::circuit::{Circuit, NodeId};
use crate::error::SpiceError;
use crate::mna::{MnaSolverKind, MnaSystem, ResidualOnly};
use gnr_num::budget::ExecLimits;
use gnr_num::telemetry;

/// True when `e` wraps a budget-stop numeric error ([`gnr_num::NumError`]
/// `BudgetExhausted` / `Cancelled`): these must propagate unchanged instead
/// of triggering further rescue stages.
pub(crate) fn is_budget_stop(e: &SpiceError) -> bool {
    matches!(e, SpiceError::Linear(inner) if inner.is_budget_stop())
}

/// Newton iteration controls for DC solves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations per gmin step.
    pub max_iterations: usize,
    /// KCL residual convergence target \[A\].
    pub tolerance_a: f64,
    /// Per-iteration voltage update clamp \[V\] (Newton damping).
    pub step_clamp_v: f64,
    /// gmin homotopy ladder (descending); the last entry is used for the
    /// final solve and should be small enough not to load the circuit.
    pub gmin_ladder: &'static [f64],
    /// Linear-system backend: legacy dense, KLU-style sparse, or size-based
    /// auto selection (the default).
    pub solver: MnaSolverKind,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iterations: 400,
            tolerance_a: 1e-12,
            step_clamp_v: 0.1,
            gmin_ladder: &[1e-3, 1e-6, 1e-9, 1e-12],
            solver: MnaSolverKind::Auto,
        }
    }
}

impl DcOptions {
    /// Sets the maximum Newton iterations per gmin step.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the KCL residual convergence target \[A\].
    pub fn with_tolerance_a(mut self, tol: f64) -> Self {
        self.tolerance_a = tol;
        self
    }

    /// Sets the per-iteration voltage update clamp \[V\].
    pub fn with_step_clamp_v(mut self, clamp: f64) -> Self {
        self.step_clamp_v = clamp;
        self
    }

    /// Sets the gmin homotopy ladder (descending conductances).
    pub fn with_gmin_ladder(mut self, ladder: &'static [f64]) -> Self {
        self.gmin_ladder = ladder;
        self
    }

    /// Selects the linear-system backend.
    pub fn with_solver(mut self, solver: MnaSolverKind) -> Self {
        self.solver = solver;
        self
    }
}

/// Solves the DC operating point at time `t = 0`, starting from `x0`
/// (zeros if `None`), with gmin stepping for robustness. When the gmin
/// ladder fails from every seed, source stepping (ramping all sources up
/// from a fraction of their value with warm starts) is tried as a last
/// resort.
///
/// The budget is probed at every gmin stage and ramp step, and a budget
/// stop aborts the rescue chain (mid-rail seeds, source stepping) instead
/// of burning it. Pass [`ExecLimits::none`] (or `ctx.limits()` from an
/// unlimited context) for the plain unbudgeted call.
///
/// # Errors
///
/// Returns [`SpiceError::NewtonDiverged`] if the final gmin stage fails,
/// propagates netlist/linear errors, and surfaces
/// [`gnr_num::NumError::BudgetExhausted`] / `Cancelled` (via
/// [`SpiceError::Linear`]) when `limits` trips.
pub fn dc_operating_point(
    circuit: &Circuit,
    x0: Option<&[f64]>,
    opts: DcOptions,
    limits: &ExecLimits,
) -> Result<Vec<f64>, SpiceError> {
    circuit.validate()?;
    let n = circuit.unknowns();
    // One linear system per circuit: the sparse backend's symbolic
    // analysis is paid here once and reused by every gmin stage and seed.
    let mut sys = MnaSystem::for_circuit(circuit, opts.solver);
    let mut run_ladder = |start: Vec<f64>| -> Result<Vec<f64>, SpiceError> {
        let mut x = start;
        for (stage, &gmin) in opts.gmin_ladder.iter().enumerate() {
            limits.check("dc.gmin_stage")?;
            let is_last = stage == opts.gmin_ladder.len() - 1;
            match newton(circuit, &mut x, 0.0, gmin, opts, &mut sys) {
                Ok(()) => {}
                Err(e) if is_last || is_budget_stop(&e) => return Err(e),
                Err(_) => { /* keep the best-effort x and tighten gmin anyway */ }
            }
        }
        Ok(x)
    };
    let primary = match x0 {
        Some(v) if v.len() == n => v.to_vec(),
        _ => vec![0.0; n],
    };
    // Fault injection (disarmed in production): pretend the gmin ladder and
    // mid-rail seeds diverged, forcing the source-stepping fallback.
    let forced_fail = gnr_num::fault::should_fail("newton-dc");
    let primary_result = if forced_fail {
        Err(SpiceError::NewtonDiverged {
            analysis: "dc",
            iterations: 0,
            residual: f64::INFINITY,
        })
    } else {
        run_ladder(primary)
    };
    match primary_result {
        Ok(x) => Ok(x),
        Err(first_err) if is_budget_stop(&first_err) => Err(first_err),
        Err(first_err) => {
            // Cold-start fallback: seed every node at half the largest
            // source magnitude (mid-rail), which sits inside the high-gain
            // transition region where the zero seed can strand Newton.
            let vmax = circuit
                .elements()
                .iter()
                .filter_map(|e| match e {
                    crate::circuit::Element::VSource { wave, .. } => Some(wave.value(0.0).abs()),
                    _ => None,
                })
                .fold(0.0f64, f64::max);
            if vmax == 0.0 {
                return Err(first_err);
            }
            if !forced_fail {
                let n_nodes = circuit.node_count() - 1;
                for frac in [0.5, 1.0, 0.25] {
                    let mut seed = vec![0.0; n];
                    for v in seed.iter_mut().take(n_nodes) {
                        *v = vmax * frac;
                    }
                    match run_ladder(seed) {
                        Ok(x) => return Ok(x),
                        Err(e) if is_budget_stop(&e) => return Err(e),
                        Err(_) => {}
                    }
                }
            }
            // Source stepping: ramp every source from a quarter of its
            // value to full drive, warm-starting each step from the last.
            match source_stepping(circuit, opts, limits) {
                Err(e) if is_budget_stop(&e) => Err(e),
                Ok(x) => {
                    telemetry::counter_inc("spice.dc.source_stepping_rescues");
                    Ok(x)
                }
                Err(stepping_err) => {
                    telemetry::counter_inc("spice.dc.source_stepping_failures");
                    Err(SpiceError::RescueChainFailed {
                        analysis: "dc",
                        attempted: &["gmin-ladder", "mid-rail-seeds", "source-stepping"],
                        primary: Box::new(first_err),
                        last: Box::new(stepping_err),
                    })
                }
            }
        }
    }
}

/// Deprecated alias of [`dc_operating_point`], kept for one release: the
/// base function now takes the execution limits directly.
///
/// # Errors
///
/// As [`dc_operating_point`].
#[deprecated(
    since = "0.1.0",
    note = "use `dc_operating_point` — it takes the limits directly"
)]
pub fn dc_operating_point_limited(
    circuit: &Circuit,
    x0: Option<&[f64]>,
    opts: DcOptions,
    limits: &ExecLimits,
) -> Result<Vec<f64>, SpiceError> {
    dc_operating_point(circuit, x0, opts, limits)
}

/// Solves the operating point by ramping every voltage source up from a
/// fraction of its `t = 0` value, warm-starting each ramp step with the
/// previous solution. This is the classic homotopy for circuits whose
/// full-drive Newton problem has no reachable solution from any cold seed.
pub(crate) fn source_stepping(
    circuit: &Circuit,
    opts: DcOptions,
    limits: &ExecLimits,
) -> Result<Vec<f64>, SpiceError> {
    use crate::circuit::{Element, Waveform};
    // Fault injection (disarmed in production): pretend the ramp diverged,
    // driving the caller into the RescueChainFailed double-failure path.
    if gnr_num::fault::should_fail("dc.source_stepping") {
        return Err(SpiceError::NewtonDiverged {
            analysis: "dc-source-stepping",
            iterations: 0,
            residual: f64::INFINITY,
        });
    }
    let originals: Vec<f64> = circuit
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::VSource { wave, .. } => Some(wave.value(0.0)),
            _ => None,
        })
        .collect();
    let mut scaled = circuit.clone();
    let mut x = vec![0.0; circuit.unknowns()];
    // Source scaling changes values, never the pattern: one system (and
    // one symbolic analysis) serves the whole ramp.
    let mut sys = MnaSystem::for_circuit(circuit, opts.solver);
    for frac in [0.25, 0.5, 0.75, 1.0] {
        limits.check("dc.source_step")?;
        let mut k = 0;
        for e in circuit_elements_mut(&mut scaled) {
            if let Element::VSource { wave, .. } = e {
                // At t = 0 the scaled DC wave stamps identically to the
                // original waveform scaled by `frac`.
                *wave = Waveform::Dc(originals[k] * frac);
                k += 1;
            }
        }
        let full_drive = frac == 1.0;
        for (stage, &gmin) in opts.gmin_ladder.iter().enumerate() {
            let is_last = stage == opts.gmin_ladder.len() - 1;
            match newton(&scaled, &mut x, 0.0, gmin, opts, &mut sys) {
                Ok(()) => {}
                Err(e) if (is_last && full_drive) || is_budget_stop(&e) => return Err(e),
                Err(_) => { /* intermediate ramp steps may stay loose */ }
            }
        }
    }
    Ok(x)
}

/// One Newton solve at fixed time and gmin; `x` is updated in place. The
/// caller owns the linear system so its (sparse) symbolic analysis is
/// shared across stages and warm starts.
pub(crate) fn newton(
    circuit: &Circuit,
    x: &mut [f64],
    t: f64,
    gmin: f64,
    opts: DcOptions,
    sys: &mut MnaSystem,
) -> Result<(), SpiceError> {
    let n = circuit.unknowns();
    let mut res = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut trial_res = vec![0.0; n];
    let worst_of = |r: &[f64]| r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    // Iterations are accumulated locally and recorded once per call so the
    // disarmed path costs a single relaxed atomic load, not one per step.
    let mut iters: u64 = 0;
    let record = |iters: u64| {
        telemetry::counter_inc("spice.newton.calls");
        telemetry::counter_add("spice.newton.iterations", iters);
    };
    // `worst_of`'s `max` silently drops NaN, so divergence to non-finite
    // values must be probed explicitly or Newton spins to max-iteration on
    // garbage.
    let non_finite = |r: &[f64]| r.iter().any(|v| !v.is_finite());
    for _ in 0..opts.max_iterations {
        circuit.stamp(x, t, gmin, None, sys.sink(), &mut res);
        if non_finite(&res) {
            record(iters);
            return Err(gnr_num::NumError::non_finite(format!(
                "newton residual at t = {t}, gmin = {gmin}"
            ))
            .into());
        }
        let worst = worst_of(&res);
        if worst < opts.tolerance_a {
            record(iters);
            return Ok(());
        }
        iters += 1;
        let dx = sys.solve(&res)?;
        // Residual line search: bilinear lookup tables have kinked
        // derivatives that make full Newton steps limit-cycle between grid
        // cells; backtracking on the residual norm restores global
        // convergence. Steps are also clamped per unknown for robustness
        // far from the solution. Trial points only need the residual, so
        // the backtracks skip the Jacobian assembly entirely.
        let mut accepted = false;
        let mut scale = 1.0;
        for _ in 0..7 {
            for i in 0..n {
                let step = (scale * dx[i]).clamp(-opts.step_clamp_v, opts.step_clamp_v);
                trial[i] = x[i] - step;
            }
            circuit.stamp(&trial, t, gmin, None, &mut ResidualOnly, &mut trial_res);
            if worst_of(&trial_res) < worst {
                x.copy_from_slice(&trial);
                accepted = true;
                break;
            }
            scale *= 0.5;
        }
        if !accepted {
            // Residual local minimum at a table kink: take the smallest
            // step anyway to hop cells and keep iterating.
            x.copy_from_slice(&trial);
        }
    }
    // Final residual check after the last update (residual-only). Accept a
    // relaxed band: stacks of off devices leave near-floating internal
    // nodes whose Jacobian is so flat that Newton stalls at a physically
    // negligible residual (tens of nA against uA-scale signal currents);
    // genuine non-convergence shows residuals orders of magnitude above
    // this.
    circuit.stamp(x, t, gmin, None, &mut ResidualOnly, &mut res);
    record(iters);
    if non_finite(&res) {
        return Err(gnr_num::NumError::non_finite(format!(
            "newton residual at t = {t}, gmin = {gmin}"
        ))
        .into());
    }
    let worst = worst_of(&res);
    if worst < opts.tolerance_a * 1e5 {
        return Ok(());
    }
    telemetry::counter_inc("spice.newton.failures");
    Err(SpiceError::NewtonDiverged {
        analysis: "dc",
        iterations: opts.max_iterations,
        residual: worst,
    })
}

/// Computes a voltage transfer curve: sweeps the waveform value of source
/// `swept_source` (by index) across `values`, recording the voltage of
/// `out`. Uses continuation (warm starts) along the sweep.
///
/// # Errors
///
/// Propagates DC solve failures.
pub fn transfer_curve(
    circuit: &Circuit,
    swept_source: usize,
    values: &[f64],
    out: NodeId,
    opts: DcOptions,
) -> Result<Vec<(f64, f64)>, SpiceError> {
    let mut modified = circuit.clone();
    let mut curve = Vec::with_capacity(values.len());
    let mut x: Option<Vec<f64>> = None;
    let mut prev_v: Option<f64> = None;
    for &v in values {
        let sol = solve_with_continuation(
            &mut modified,
            swept_source,
            prev_v,
            v,
            x.as_deref(),
            opts,
            0,
        )?;
        curve.push((v, modified.voltage(&sol, out)));
        x = Some(sol);
        prev_v = Some(v);
    }
    Ok(curve)
}

/// Solves at sweep value `v`, bisecting the step from `prev_v` when the
/// high-gain transition region makes the direct jump diverge.
fn solve_with_continuation(
    circuit: &mut Circuit,
    swept_source: usize,
    prev_v: Option<f64>,
    v: f64,
    x0: Option<&[f64]>,
    opts: DcOptions,
    depth: usize,
) -> Result<Vec<f64>, SpiceError> {
    set_source_value(circuit, swept_source, v)?;
    match dc_operating_point(circuit, x0, opts, &ExecLimits::none()) {
        Ok(sol) => Ok(sol),
        Err(e) => {
            let Some(pv) = prev_v else { return Err(e) };
            if depth >= 8 {
                return Err(e);
            }
            let mid = 0.5 * (pv + v);
            let half =
                solve_with_continuation(circuit, swept_source, Some(pv), mid, x0, opts, depth + 1)?;
            solve_with_continuation(
                circuit,
                swept_source,
                Some(mid),
                v,
                Some(&half),
                opts,
                depth + 1,
            )
        }
    }
}

/// Overwrites the DC value of the `k`-th voltage source.
///
/// # Errors
///
/// Returns [`SpiceError::Config`] if the index is out of range.
pub fn set_source_value(circuit: &mut Circuit, k: usize, volts: f64) -> Result<(), SpiceError> {
    use crate::circuit::{Element, Waveform};
    let mut idx = 0;
    // Elements are private to the crate through this helper only.
    for e in circuit_elements_mut(circuit) {
        if let Element::VSource { wave, .. } = e {
            if idx == k {
                *wave = Waveform::Dc(volts);
                return Ok(());
            }
            idx += 1;
        }
    }
    Err(SpiceError::config(format!("no voltage source #{k}")))
}

/// Replaces the full waveform of the `k`-th voltage source (e.g. swapping
/// a DC bias for a pulse before a transient run).
///
/// # Errors
///
/// Returns [`SpiceError::Config`] if the index is out of range.
pub fn set_source_wave(
    circuit: &mut Circuit,
    k: usize,
    wave: crate::circuit::Waveform,
) -> Result<(), SpiceError> {
    use crate::circuit::Element;
    let mut idx = 0;
    for e in circuit_elements_mut(circuit) {
        if let Element::VSource { wave: w, .. } = e {
            if idx == k {
                *w = wave;
                return Ok(());
            }
            idx += 1;
        }
    }
    Err(SpiceError::config(format!("no voltage source #{k}")))
}

/// Crate-internal mutable access to the element list.
pub(crate) fn circuit_elements_mut(c: &mut Circuit) -> &mut [crate::circuit::Element] {
    // Circuit stores elements privately; expose them within the crate.
    c.elements_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Element, Waveform};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(3.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 2e3,
        });
        c.add(Element::Resistor {
            a: mid,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let x = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap();
        assert!((c.voltage(&x, mid) - 1.0).abs() < 1e-9);
        // Source current: 3 V across 3 kOhm = 1 mA flowing out of the
        // source's positive terminal into the circuit -> branch current is
        // -1 mA with the MNA sign convention (current into the + terminal).
        assert!((c.source_current(&x, 0).abs() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn wheatstone_bridge() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let l = c.node("l");
        let r = c.node("r");
        c.add(Element::VSource {
            p: top,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        for (a, b, ohms) in [
            (top, l, 1e3),
            (top, r, 1e3),
            (l, NodeId::GROUND, 1e3),
            (r, NodeId::GROUND, 1e3),
            (l, r, 5e2),
        ] {
            c.add(Element::Resistor { a, b, ohms });
        }
        let x = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap();
        // Balanced bridge: no current through the middle resistor.
        assert!((c.voltage(&x, l) - c.voltage(&x, r)).abs() < 1e-9);
        assert!((c.voltage(&x, l) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacitors_are_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Element::VSource {
            p: a,
            n: NodeId::GROUND,
            wave: Waveform::Dc(2.0),
        });
        c.add(Element::Resistor { a, b, ohms: 1e3 });
        c.add(Element::Capacitor {
            a: b,
            b: NodeId::GROUND,
            farads: 1e-15,
        });
        let x = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap();
        // No DC path through the cap: b floats up to a's voltage (gmin
        // leaks it negligibly towards ground).
        assert!((c.voltage(&x, b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn source_stepping_solves_linear_circuit() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(3.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 2e3,
        });
        c.add(Element::Resistor {
            a: mid,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let x = source_stepping(&c, DcOptions::default(), &ExecLimits::none()).unwrap();
        assert!((c.voltage(&x, mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_residual_fails_fast_with_typed_error() {
        use gnr_num::NumError;
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(f64::NAN),
        });
        c.add(Element::Resistor {
            a: vin,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let err =
            dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap_err();
        match err {
            SpiceError::Linear(NumError::NonFinite { detail }) => {
                assert!(detail.contains("newton residual"), "detail: {detail}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn dc_limited_stops_on_exhausted_budget() {
        use gnr_num::budget::Budget;
        use gnr_num::NumError;
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(0));
        let err = dc_operating_point(&c, None, DcOptions::default(), &limits).unwrap_err();
        assert!(
            matches!(err, SpiceError::Linear(NumError::BudgetExhausted { .. })),
            "got {err:?}"
        );
        // Unlimited limited variant matches the plain path bit-for-bit.
        let plain =
            dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap();
        let limited =
            dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none()).unwrap();
        assert_eq!(plain, limited);
    }

    #[test]
    fn set_source_value_rejects_bad_index() {
        let mut c = Circuit::new();
        assert!(set_source_value(&mut c, 0, 1.0).is_err());
    }

    #[test]
    fn sweep_linear_circuit() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 1e3,
        });
        c.add(Element::Resistor {
            a: mid,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let values: Vec<f64> = (0..5).map(|i| i as f64 * 0.5).collect();
        let curve = transfer_curve(&c, 0, &values, mid, DcOptions::default()).unwrap();
        for (vin, vout) in curve {
            assert!((vout - vin / 2.0).abs() < 1e-9);
        }
    }
}
