//! Builders for the paper's benchmark circuits.
//!
//! All builders take pre-built n/p [`DeviceTable`]s, apply the extrinsic
//! parasitics of Fig. 3(a), and return ready-to-analyse [`Circuit`]s with
//! the interesting nodes exposed.

use crate::circuit::{Circuit, Element, NodeId, Waveform};
use crate::error::SpiceError;
use gnr_device::DeviceTable;
use std::sync::Arc;

/// Extrinsic parasitics of the 4-GNR-array FET (paper Fig. 3a).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtrinsicParasitics {
    /// Source contact resistance \[Ω\] (1–100 kΩ, nominal 10 kΩ).
    pub r_s: f64,
    /// Drain contact resistance \[Ω\].
    pub r_d: f64,
    /// Extrinsic gate-source junction capacitance \[F\]
    /// (0.01–0.1 aF/nm × 40 nm contact width).
    pub c_gs_e: f64,
    /// Extrinsic gate-drain junction capacitance \[F\].
    pub c_gd_e: f64,
}

impl ExtrinsicParasitics {
    /// The paper's nominal values: 10 kΩ contacts, 0.05 aF/nm × 40 nm
    /// junction capacitances, negligible substrate capacitances.
    pub fn nominal() -> Self {
        ExtrinsicParasitics {
            r_s: 10e3,
            r_d: 10e3,
            c_gs_e: 0.05e-18 * 40.0,
            c_gd_e: 0.05e-18 * 40.0,
        }
    }

    /// No parasitics (intrinsic-device experiments).
    pub fn none() -> Self {
        ExtrinsicParasitics {
            r_s: 0.0,
            r_d: 0.0,
            c_gs_e: 0.0,
            c_gd_e: 0.0,
        }
    }

    /// Folds the contact resistances into a device table (see
    /// [`DeviceTable::fold_series_resistance`]).
    ///
    /// # Errors
    ///
    /// Propagates folding failures.
    pub fn fold(&self, table: &DeviceTable) -> Result<DeviceTable, SpiceError> {
        table
            .fold_series_resistance(self.r_s, self.r_d)
            .map_err(|e| SpiceError::config(e.to_string()))
    }
}

/// A CMOS-style inverter instance: device pair plus its parasitic caps.
#[derive(Clone, Debug)]
pub struct InverterCell {
    /// Pull-down device table (resistance-folded).
    pub nfet: Arc<DeviceTable>,
    /// Pull-up device table (resistance-folded).
    pub pfet: Arc<DeviceTable>,
    /// Parasitics applied at the terminals.
    pub parasitics: ExtrinsicParasitics,
}

impl InverterCell {
    /// Builds a cell from raw (unfolded) device tables.
    ///
    /// # Errors
    ///
    /// Propagates resistance-folding failures.
    pub fn new(
        nfet: &DeviceTable,
        pfet: &DeviceTable,
        parasitics: &ExtrinsicParasitics,
    ) -> Result<Self, SpiceError> {
        Ok(InverterCell {
            nfet: Arc::new(parasitics.fold(nfet)?),
            pfet: Arc::new(parasitics.fold(pfet)?),
            parasitics: *parasitics,
        })
    }

    /// Instantiates the inverter into `circuit` between `input` and
    /// `output`, powered by `vdd_node`.
    pub fn instantiate(
        &self,
        circuit: &mut Circuit,
        input: NodeId,
        output: NodeId,
        vdd_node: NodeId,
    ) {
        circuit.add(Element::Fet {
            d: output,
            g: input,
            s: NodeId::GROUND,
            table: Arc::clone(&self.nfet),
        });
        circuit.add(Element::Fet {
            d: output,
            g: input,
            s: vdd_node,
            table: Arc::clone(&self.pfet),
        });
        // Extrinsic junction capacitances at the terminals.
        let p = &self.parasitics;
        if p.c_gs_e > 0.0 {
            // Both devices: gate-source caps (to gnd and to vdd).
            circuit.add(Element::Capacitor {
                a: input,
                b: NodeId::GROUND,
                farads: p.c_gs_e,
            });
            circuit.add(Element::Capacitor {
                a: input,
                b: vdd_node,
                farads: p.c_gs_e,
            });
        }
        if p.c_gd_e > 0.0 {
            // Both devices: gate-drain caps (input to output), Miller pair.
            circuit.add(Element::Capacitor {
                a: input,
                b: output,
                farads: 2.0 * p.c_gd_e,
            });
        }
    }
}

/// An inverter driving a fanout-of-4 load: the paper's standard gate-level
/// workload for delay/power measurements.
#[derive(Clone, Debug)]
pub struct InverterChain {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Driver input node.
    pub input: NodeId,
    /// Driver output node (loaded by 4 inverters).
    pub output: NodeId,
    /// Supply node.
    pub vdd_node: NodeId,
    /// Index of the input pulse source.
    pub input_source: usize,
    /// Index of the supply source.
    pub vdd_source: usize,
}

impl InverterChain {
    /// Builds a driver inverter with a fanout-of-4 load of identical
    /// inverters, an input source (initially DC 0) and a supply source.
    ///
    /// # Errors
    ///
    /// Propagates cell construction failures.
    pub fn fo4(cell: &InverterCell, vdd: f64) -> Result<Self, SpiceError> {
        let mut circuit = Circuit::new();
        let input = circuit.node("in");
        let output = circuit.node("out");
        let vdd_node = circuit.node("vdd");
        // Source 0: input; source 1: supply.
        circuit.add(Element::VSource {
            p: input,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.0),
        });
        circuit.add(Element::VSource {
            p: vdd_node,
            n: NodeId::GROUND,
            wave: Waveform::Dc(vdd),
        });
        cell.instantiate(&mut circuit, input, output, vdd_node);
        for k in 0..4 {
            let load_out = circuit.node(&format!("load{k}"));
            cell.instantiate(&mut circuit, output, load_out, vdd_node);
        }
        Ok(InverterChain {
            circuit,
            input,
            output,
            vdd_node,
            input_source: 0,
            vdd_source: 1,
        })
    }
}

/// An N-stage ring oscillator where every stage drives a fanout-of-4 load
/// (the next stage plus three dummy inverters), per the paper §3.1.
#[derive(Clone, Debug)]
pub struct RingOscillator {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Per-stage output nodes.
    pub stage_outputs: Vec<NodeId>,
    /// Supply node.
    pub vdd_node: NodeId,
    /// Index of the supply source.
    pub vdd_source: usize,
    /// Supply voltage \[V\].
    pub vdd: f64,
}

impl RingOscillator {
    /// Builds the oscillator with `stages` inverters (must be odd ≥ 3);
    /// `cells` supplies one cell per stage (cycled if shorter), enabling
    /// the per-stage variations of the Monte Carlo study.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Config`] for an even or too-small stage count
    /// or an empty cell list.
    pub fn with_cells(cells: &[InverterCell], stages: usize, vdd: f64) -> Result<Self, SpiceError> {
        if stages < 3 || stages.is_multiple_of(2) {
            return Err(SpiceError::config("ring oscillator needs odd stages >= 3"));
        }
        if cells.is_empty() {
            return Err(SpiceError::config("need at least one inverter cell"));
        }
        let mut circuit = Circuit::new();
        let vdd_node = circuit.node("vdd");
        circuit.add(Element::VSource {
            p: vdd_node,
            n: NodeId::GROUND,
            wave: Waveform::Dc(vdd),
        });
        let stage_outputs: Vec<NodeId> = (0..stages)
            .map(|i| circuit.node(&format!("s{i}")))
            .collect();
        for i in 0..stages {
            let cell = &cells[i % cells.len()];
            let input = stage_outputs[(i + stages - 1) % stages];
            let output = stage_outputs[i];
            cell.instantiate(&mut circuit, input, output, vdd_node);
            // Three dummy load inverters per stage (fanout-of-4 total).
            for k in 0..3 {
                let dummy = circuit.node(&format!("s{i}d{k}"));
                cell.instantiate(&mut circuit, output, dummy, vdd_node);
            }
        }
        Ok(RingOscillator {
            circuit,
            stage_outputs,
            vdd_node,
            vdd_source: 0,
            vdd,
        })
    }

    /// Convenience: identical cells in every stage.
    ///
    /// # Errors
    ///
    /// See [`RingOscillator::with_cells`].
    pub fn uniform(cell: &InverterCell, stages: usize, vdd: f64) -> Result<Self, SpiceError> {
        Self::with_cells(std::slice::from_ref(cell), stages, vdd)
    }
}

/// Two-input static logic gates built from the same device cells —
/// extensions of the paper's "representative circuits" set.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum GateKind {
    /// 2-input NAND: series n-stack, parallel p-pull-ups.
    Nand2,
    /// 2-input NOR: parallel n-pull-downs, series p-stack.
    Nor2,
}

/// An instantiated two-input gate test bench.
#[derive(Clone, Debug)]
pub struct Gate2 {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// First input node (driven by source 0).
    pub input_a: NodeId,
    /// Second input node (driven by source 1).
    pub input_b: NodeId,
    /// Output node.
    pub output: NodeId,
    /// Supply node (source 2).
    pub vdd_node: NodeId,
    /// Which gate this is.
    pub kind: GateKind,
}

impl Gate2 {
    /// Builds a 2-input gate from an inverter cell's devices (both stack
    /// transistors reuse the cell's folded n/p tables).
    ///
    /// The series stack is modelled with an explicit internal node, so
    /// stack resistance effects (the paper's R_S/R_D fold plus the upper
    /// device's body effect on its source) are captured.
    ///
    /// # Errors
    ///
    /// Propagates netlist failures.
    pub fn new(cell: &InverterCell, kind: GateKind, vdd: f64) -> Result<Self, SpiceError> {
        let mut circuit = Circuit::new();
        let input_a = circuit.node("a");
        let input_b = circuit.node("b");
        let output = circuit.node("out");
        let vdd_node = circuit.node("vdd");
        let mid = circuit.node("stack");
        for (p, wave) in [
            (input_a, Waveform::Dc(0.0)),
            (input_b, Waveform::Dc(0.0)),
            (vdd_node, Waveform::Dc(vdd)),
        ] {
            circuit.add(Element::VSource {
                p,
                n: NodeId::GROUND,
                wave,
            });
        }
        match kind {
            GateKind::Nand2 => {
                // n-stack: out -(A)- mid -(B)- gnd; p in parallel to vdd.
                circuit.add(Element::Fet {
                    d: output,
                    g: input_a,
                    s: mid,
                    table: Arc::clone(&cell.nfet),
                });
                circuit.add(Element::Fet {
                    d: mid,
                    g: input_b,
                    s: NodeId::GROUND,
                    table: Arc::clone(&cell.nfet),
                });
                for g in [input_a, input_b] {
                    circuit.add(Element::Fet {
                        d: output,
                        g,
                        s: vdd_node,
                        table: Arc::clone(&cell.pfet),
                    });
                }
            }
            GateKind::Nor2 => {
                // p-stack: vdd -(A)- mid -(B)- out; n in parallel to gnd.
                circuit.add(Element::Fet {
                    d: mid,
                    g: input_a,
                    s: vdd_node,
                    table: Arc::clone(&cell.pfet),
                });
                circuit.add(Element::Fet {
                    d: output,
                    g: input_b,
                    s: mid,
                    table: Arc::clone(&cell.pfet),
                });
                for g in [input_a, input_b] {
                    circuit.add(Element::Fet {
                        d: output,
                        g,
                        s: NodeId::GROUND,
                        table: Arc::clone(&cell.nfet),
                    });
                }
            }
        }
        // Output load: the cell's extrinsic junction capacitance.
        let c_out = (2.0 * cell.parasitics.c_gd_e).max(1e-18);
        circuit.add(Element::Capacitor {
            a: output,
            b: NodeId::GROUND,
            farads: c_out,
        });
        Ok(Gate2 {
            circuit,
            input_a,
            input_b,
            output,
            vdd_node,
            kind,
        })
    }

    /// Evaluates the gate's DC output for one input combination (logic
    /// levels 0/`vdd`).
    ///
    /// # Errors
    ///
    /// Propagates DC solve failures.
    pub fn dc_output(&self, a_high: bool, b_high: bool, vdd: f64) -> Result<f64, SpiceError> {
        let mut circuit = self.circuit.clone();
        crate::dc::set_source_value(&mut circuit, 0, if a_high { vdd } else { 0.0 })?;
        crate::dc::set_source_value(&mut circuit, 1, if b_high { vdd } else { 0.0 })?;
        let x = crate::dc::dc_operating_point(
            &circuit,
            None,
            crate::dc::DcOptions::default(),
            &gnr_num::budget::ExecLimits::none(),
        )?;
        Ok(circuit.voltage(&x, self.output))
    }
}

/// A cross-coupled inverter latch, exposed for butterfly-curve analysis.
#[derive(Clone, Debug)]
pub struct Latch {
    /// Left inverter (drives node R from node L).
    pub inv_a: InverterCell,
    /// Right inverter (drives node L from node R).
    pub inv_b: InverterCell,
    /// Supply voltage \[V\].
    pub vdd: f64,
}

impl Latch {
    /// Creates a latch description from two (possibly different) cells.
    pub fn new(inv_a: InverterCell, inv_b: InverterCell, vdd: f64) -> Self {
        Latch { inv_a, inv_b, vdd }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_parasitics_match_paper() {
        let p = ExtrinsicParasitics::nominal();
        assert_eq!(p.r_s, 10e3);
        assert_eq!(p.r_d, 10e3);
        // 0.05 aF/nm x 40 nm = 2 aF.
        assert!((p.c_gs_e - 2e-18).abs() < 1e-24);
    }

    #[test]
    fn ring_oscillator_validation() {
        let p = ExtrinsicParasitics::none();
        let _ = p;
        // Structural checks that don't need real tables are covered via
        // error paths: even stage count rejected before any table use.
        assert!(RingOscillator::with_cells(&[], 15, 0.4).is_err());
    }
}
