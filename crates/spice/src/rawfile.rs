//! `gnr-rawfile/v1` — a JSON result format for deck analyses.
//!
//! The classic SPICE rawfile reshaped onto [`gnr_num::json`]: a format
//! tag, the deck title, a plot name, a variable table, and a row-major
//! point matrix. Numbers use shortest-round-trip formatting, so a DC
//! solution survives `dump → parse` bit-for-bit. AC points carry
//! `[re, im]` pairs per variable.
//!
//! ```json
//! {
//!   "format": "gnr-rawfile/v1",
//!   "title": "6t sram cell",
//!   "plotname": "Transient Analysis",
//!   "variables": [
//!     {"name": "time", "kind": "time"},
//!     {"name": "v(q)", "kind": "voltage"},
//!     {"name": "i(vdd)", "kind": "current"}
//!   ],
//!   "points": [[0.0, 0.4, -1.2e-9], …]
//! }
//! ```

use crate::ac::AcSweep;
use crate::circuit::NodeId;
use crate::netlist::ElaboratedDeck;
use crate::transient::TransientResult;
use gnr_num::json::Json;

/// Format tag written into every rawfile.
pub const FORMAT: &str = "gnr-rawfile/v1";

/// The variable table for a deck: every named (plus synthesised
/// `_<id>` anonymous) non-ground node as `v(name)`, then every voltage
/// source as `i(name)`, in MNA unknown order.
fn variables(elab: &ElaboratedDeck) -> (Vec<Json>, Vec<String>) {
    let circuit = &elab.circuit;
    let names = circuit.node_names();
    let mut vars = Vec::new();
    let mut labels = Vec::new();
    for id in 1..circuit.node_count() {
        let name = match names.get(id).copied().flatten() {
            Some(n) => n.to_string(),
            None => format!("_{id}"),
        };
        labels.push(format!("v({name})"));
        vars.push(var(&format!("v({name})"), "voltage"));
    }
    for name in elab.source_names() {
        labels.push(format!("i({name})"));
        vars.push(var(&format!("i({name})"), "current"));
    }
    (vars, labels)
}

fn var(name: &str, kind: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("kind".into(), Json::Str(kind.into())),
    ])
}

fn header(elab: &ElaboratedDeck, plotname: &str, vars: Vec<Json>, points: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("format".into(), Json::Str(FORMAT.into())),
        ("title".into(), Json::Str(elab.title.clone())),
        ("plotname".into(), Json::Str(plotname.into())),
        ("variables".into(), Json::Arr(vars)),
        ("points".into(), Json::Arr(points)),
    ])
}

/// A DC operating point as a one-row rawfile.
pub fn dc_rawfile(elab: &ElaboratedDeck, x: &[f64]) -> Json {
    let (vars, _) = variables(elab);
    let row: Vec<Json> = x.iter().map(|&v| Json::Num(v)).collect();
    header(elab, "DC operating point", vars, vec![Json::Arr(row)])
}

/// A DC transfer sweep: the swept source's value is the leading variable,
/// each row holds one solved unknown vector.
pub fn sweep_rawfile(
    elab: &ElaboratedDeck,
    swept_source: &str,
    values: &[f64],
    solutions: &[Vec<f64>],
) -> Json {
    let (mut vars, _) = variables(elab);
    vars.insert(0, var(&format!("sweep({swept_source})"), "voltage"));
    let points = values
        .iter()
        .zip(solutions)
        .map(|(&v, x)| {
            let mut row = Vec::with_capacity(x.len() + 1);
            row.push(Json::Num(v));
            row.extend(x.iter().map(|&u| Json::Num(u)));
            Json::Arr(row)
        })
        .collect();
    header(elab, "DC transfer characteristic", vars, points)
}

/// A transient result: `time` plus every unknown per accepted step.
pub fn tran_rawfile(elab: &ElaboratedDeck, result: &TransientResult) -> Json {
    let circuit = &elab.circuit;
    let (mut vars, _) = variables(elab);
    vars.insert(0, var("time", "time"));
    let times = result.times();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for id in 1..circuit.node_count() {
        columns.push(result.voltage(circuit, NodeId(id)));
    }
    for k in 0..circuit.source_count() {
        columns.push(result.source_current(circuit, k));
    }
    let points = (0..times.len())
        .map(|i| {
            let mut row = Vec::with_capacity(columns.len() + 1);
            row.push(Json::Num(times[i]));
            row.extend(columns.iter().map(|c| Json::Num(c[i])));
            Json::Arr(row)
        })
        .collect();
    header(elab, "Transient Analysis", vars, points)
}

/// An AC sweep: `frequency` plus `[re, im]` phasor pairs per unknown.
pub fn ac_rawfile(elab: &ElaboratedDeck, sweep: &AcSweep) -> Json {
    let (mut vars, _) = variables(elab);
    vars.insert(0, var("frequency", "frequency"));
    let points = sweep
        .points
        .iter()
        .map(|p| {
            let mut row = Vec::with_capacity(p.phasors.len() + 1);
            row.push(Json::Num(p.frequency_hz));
            row.extend(
                p.phasors
                    .iter()
                    .map(|z| Json::Arr(vec![Json::Num(z.re), Json::Num(z.im)])),
            );
            Json::Arr(row)
        })
        .collect();
    header(elab, "AC Analysis", vars, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{parse_deck, ModelBindings};

    fn rc_elab() -> ElaboratedDeck {
        parse_deck("rc bench\nv1 in 0 dc 1.0\nr1 in out 1k\nc1 out 0 1p\n")
            .expect("parses")
            .elaborate(&ModelBindings::new())
            .expect("elaborates")
    }

    #[test]
    fn dc_rawfile_round_trips_bits() {
        let elab = rc_elab();
        let x = vec![1.0, 0.999_999_999_3, -2.718_281_828e-9];
        let json = dc_rawfile(&elab, &x);
        let back = Json::parse(&json.dump()).expect("reparses");
        assert_eq!(back.get("format").and_then(Json::as_str), Some(FORMAT));
        let points = back
            .get("points")
            .and_then(Json::as_array)
            .expect("points array");
        let row = points[0].as_array().expect("row");
        for (a, b) in x.iter().zip(row) {
            assert_eq!(*a, b.as_f64().expect("number"), "bit-exact round trip");
        }
        let vars = back
            .get("variables")
            .and_then(Json::as_array)
            .expect("vars");
        assert_eq!(vars.len(), x.len());
        assert_eq!(
            vars[0].get("name").and_then(Json::as_str),
            Some("v(in)"),
            "first unknown is node in"
        );
        assert_eq!(vars[2].get("name").and_then(Json::as_str), Some("i(v1)"));
    }

    #[test]
    fn sweep_rawfile_shape() {
        let elab = rc_elab();
        let values = vec![0.0, 0.5, 1.0];
        let solutions = vec![vec![0.0; 3], vec![0.5; 3], vec![1.0; 3]];
        let json = sweep_rawfile(&elab, "v1", &values, &solutions);
        let points = json.get("points").and_then(Json::as_array).expect("points");
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].as_array().expect("row").len(), 4);
    }
}
