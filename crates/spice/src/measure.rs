//! Circuit measurements: delay, power, frequency, EDP, and static noise
//! margins.
//!
//! These implement the paper's figures of merit (§3): FO4 inverter
//! propagation delay, static and dynamic power, ring-oscillator frequency,
//! the energy-delay product used for technology exploration, and the
//! butterfly-curve static noise margin used as the reliability metric.

use crate::builders::{ExtrinsicParasitics, InverterCell, InverterChain, Latch, RingOscillator};
use crate::circuit::{Element, NodeId, Waveform};
use crate::dc::{dc_operating_point, set_source_value, transfer_curve, DcOptions};
use crate::error::SpiceError;
use crate::transient::{transient_nominal, TransientOptions};
use gnr_device::DeviceTable;
use gnr_num::budget::ExecLimits;

/// Measured figures of merit of a FO4 inverter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InverterMetrics {
    /// Average propagation delay `(t_pHL + t_pLH)/2` \[s\].
    pub delay_s: f64,
    /// High-to-low output propagation delay \[s\].
    pub delay_fall_s: f64,
    /// Low-to-high output propagation delay \[s\].
    pub delay_rise_s: f64,
    /// Static power `V_DD · (I_leak(0) + I_leak(V_DD))/2` \[W\].
    pub static_power_w: f64,
    /// Dynamic power at the measurement frequency \[W\].
    pub dynamic_power_w: f64,
    /// Total supply energy per switching cycle \[J\].
    pub energy_per_cycle_j: f64,
    /// The input period used for the dynamic measurement \[s\].
    pub measure_period_s: f64,
}

/// Measured figures of merit of a ring oscillator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OscillatorMetrics {
    /// Oscillation frequency \[Hz\].
    pub frequency_hz: f64,
    /// Oscillation period \[s\].
    pub period_s: f64,
    /// Total supply power while oscillating \[W\].
    pub power_w: f64,
    /// Static (leakage) component of the power \[W\].
    pub static_power_w: f64,
    /// Dynamic component of the power \[W\].
    pub dynamic_power_w: f64,
    /// Per-stage propagation delay `T/(2N)` \[s\].
    pub stage_delay_s: f64,
    /// Dynamic energy per stage transition \[J\].
    pub energy_per_transition_j: f64,
    /// Energy-delay product per stage \[J·s\].
    pub edp_js: f64,
}

/// Static noise margins extracted from a butterfly plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseMargins {
    /// Side of the maximal square in the upper-left lobe \[V\].
    pub upper_v: f64,
    /// Side of the maximal square in the lower-right lobe \[V\].
    pub lower_v: f64,
}

impl NoiseMargins {
    /// The static noise margin: the smaller lobe.
    pub fn snm(&self) -> f64 {
        self.upper_v.min(self.lower_v)
    }
}

/// Interpolated 50 %-crossing times of a waveform.
///
/// Returns each time the waveform crosses `level` in the given direction.
pub fn crossing_times(times: &[f64], wave: &[f64], level: f64, rising: bool) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 1..wave.len() {
        let (a, b) = (wave[i - 1], wave[i]);
        let hit = if rising {
            a < level && b >= level
        } else {
            a > level && b <= level
        };
        if hit {
            let frac = (level - a) / (b - a);
            out.push(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    out
}

/// Static power of one inverter cell at `vdd`: the average of the two
/// stable-state leakage currents times the supply voltage.
///
/// # Errors
///
/// Propagates DC failures.
pub fn inverter_static_power(cell: &InverterCell, vdd: f64) -> Result<f64, SpiceError> {
    let chain = single_inverter(cell, vdd)?;
    let mut circuit = chain.circuit;
    let mut leak = 0.0;
    for vin in [0.0, vdd] {
        set_source_value(&mut circuit, chain.input_source, vin)?;
        let x = dc_operating_point(&circuit, None, DcOptions::default(), &ExecLimits::none())?;
        leak += circuit.source_current(&x, chain.vdd_source).abs();
    }
    Ok(vdd * leak / 2.0)
}

/// Builds a single unloaded inverter test bench (public handle for deck
/// conformance: the netlist suite emits this circuit as a golden deck and
/// pins the reparsed VTC bit-identically).
///
/// # Errors
///
/// Propagates construction failures.
pub fn single_inverter_circuit(cell: &InverterCell, vdd: f64) -> Result<InverterChain, SpiceError> {
    single_inverter(cell, vdd)
}

/// Builds a single unloaded inverter test bench.
fn single_inverter(cell: &InverterCell, vdd: f64) -> Result<InverterChain, SpiceError> {
    let mut circuit = crate::circuit::Circuit::new();
    let input = circuit.node("in");
    let output = circuit.node("out");
    let vdd_node = circuit.node("vdd");
    circuit.add(Element::VSource {
        p: input,
        n: NodeId::GROUND,
        wave: Waveform::Dc(0.0),
    });
    circuit.add(Element::VSource {
        p: vdd_node,
        n: NodeId::GROUND,
        wave: Waveform::Dc(vdd),
    });
    cell.instantiate(&mut circuit, input, output, vdd_node);
    Ok(InverterChain {
        circuit,
        input,
        output,
        vdd_node,
        input_source: 0,
        vdd_source: 1,
    })
}

/// Measures delay, power, and energy of a FO4 inverter built from raw
/// device tables at supply `vdd`.
///
/// # Errors
///
/// Propagates construction/analysis failures; returns
/// [`SpiceError::Measurement`] if the output never switches.
pub fn fo4_inverter_metrics(
    nfet: &DeviceTable,
    pfet: &DeviceTable,
    vdd: f64,
    parasitics: &ExtrinsicParasitics,
) -> Result<InverterMetrics, SpiceError> {
    let cell = InverterCell::new(nfet, pfet, parasitics)?;
    fo4_metrics_for_cell(&cell, vdd)
}

/// [`fo4_inverter_metrics`] for a pre-built cell.
///
/// # Errors
///
/// Propagates construction/analysis failures.
pub fn fo4_metrics_for_cell(cell: &InverterCell, vdd: f64) -> Result<InverterMetrics, SpiceError> {
    // The transient window is sized from an RC estimate; retry with longer
    // windows for slow corners (e.g. heavily mismatched variation studies)
    // whose weaker edge falls outside the first guess.
    let mut scale = 1.0;
    for attempt in 0..3 {
        match fo4_metrics_attempt(cell, vdd, scale) {
            Err(SpiceError::Measurement { .. }) if attempt < 2 => scale *= 6.0,
            other => return other,
        }
    }
    unreachable!("loop always returns on the final attempt")
}

fn fo4_metrics_attempt(
    cell: &InverterCell,
    vdd: f64,
    window_scale: f64,
) -> Result<InverterMetrics, SpiceError> {
    let chain = InverterChain::fo4(cell, vdd)?;
    let mut circuit = chain.circuit.clone();
    // --- static power (per driver inverter) ---
    let static_power_w = inverter_static_power(cell, vdd)?;

    // --- delay estimate to size the transient window: the weaker of the
    // pull-down and pull-up edges dominates ---
    let mid = vdd / 2.0;
    let i_n = cell.nfet.current(vdd, mid).abs();
    let i_p = cell.pfet.current(-vdd, -mid).abs();
    let i_drive = i_n.min(i_p).max(1e-12);
    let c_load = 4.0
        * (cell.nfet.cg_intrinsic(mid, mid)
            + cell.pfet.cg_intrinsic(-mid, -mid)
            + cell.parasitics.c_gs_e
            + cell.parasitics.c_gd_e)
        + 1e-18;
    let t_est = (c_load * vdd / i_drive).max(1e-13);
    let period = 80.0 * t_est * window_scale;
    let edge = period / 100.0;
    let wave = Waveform::Pulse {
        low: 0.0,
        high: vdd,
        delay: period / 10.0,
        rise: edge,
        fall: edge,
        width: period / 2.0 - edge,
        period,
    };
    set_pulse(&mut circuit, chain.input_source, wave)?;
    let opts = TransientOptions::new(2.0 * period, period / 3000.0);
    let result = transient_nominal(&circuit, &opts, &ExecLimits::none())?;
    let times = result.times();
    let vin = result.voltage(&circuit, chain.input);
    let vout = result.voltage(&circuit, chain.output);

    // Propagation delays from the second (steady) cycle where available.
    let in_rise = crossing_times(times, &vin, mid, true);
    let in_fall = crossing_times(times, &vin, mid, false);
    let out_fall = crossing_times(times, &vout, mid, false);
    let out_rise = crossing_times(times, &vout, mid, true);
    let delay_fall_s = pair_delay(&in_rise, &out_fall)
        .ok_or_else(|| SpiceError::measurement("output never fell; is the inverter wired?"))?;
    let delay_rise_s = pair_delay(&in_fall, &out_rise)
        .ok_or_else(|| SpiceError::measurement("output never rose"))?;

    // Energy: supply energy over the second input period.
    let i_vdd = result.source_current(&circuit, chain.vdd_source);
    let (t0, t1) = (period / 10.0 + period, period / 10.0 + 2.0 * period);
    let t_last = times.last().copied().unwrap_or(0.0);
    let mut energy = 0.0;
    for i in 1..times.len() {
        let t = times[i];
        if t <= t0 || t > t1.min(t_last) {
            continue;
        }
        let dt = times[i] - times[i - 1];
        energy += vdd * (-i_vdd[i]) * dt;
    }
    // The bench contains 5 inverters' static draw; subtract it over the
    // period to isolate the switching energy of the driver + its load.
    // Floor the result at the electrostatic minimum C·V² of the load so
    // long-window leakage-subtraction noise can never produce a degenerate
    // zero-energy (hence zero-EDP) measurement.
    let static_bench = 5.0 * static_power_w;
    let energy_floor = c_load * vdd * vdd;
    let energy_dyn = (energy - static_bench * period).max(energy_floor);
    let dynamic_power_w = energy_dyn / period;
    Ok(InverterMetrics {
        delay_s: 0.5 * (delay_fall_s + delay_rise_s),
        delay_fall_s,
        delay_rise_s,
        static_power_w,
        dynamic_power_w,
        energy_per_cycle_j: energy_dyn,
        measure_period_s: period,
    })
}

fn pair_delay(input_edges: &[f64], output_edges: &[f64]) -> Option<f64> {
    // Use the last input edge that has a following output edge.
    for &tin in input_edges.iter().rev() {
        if let Some(&tout) = output_edges.iter().find(|&&t| t > tin) {
            return Some(tout - tin);
        }
    }
    None
}

fn set_pulse(
    circuit: &mut crate::circuit::Circuit,
    source_index: usize,
    wave: Waveform,
) -> Result<(), SpiceError> {
    let mut idx = 0;
    for e in crate::dc::circuit_elements_mut(circuit) {
        if let Element::VSource { wave: w, .. } = e {
            if idx == source_index {
                *w = wave;
                return Ok(());
            }
            idx += 1;
        }
    }
    Err(SpiceError::config(format!("no source #{source_index}")))
}

/// Simulates a ring oscillator to steady oscillation and extracts its
/// metrics. `stage_delay_hint` sizes the simulation window (use the FO4
/// inverter delay; it only needs to be within ~10× of the truth).
///
/// # Errors
///
/// Returns [`SpiceError::Measurement`] if no stable oscillation appears.
pub fn ring_oscillator_metrics(
    ro: &RingOscillator,
    stage_delay_hint: f64,
    static_power_per_inverter: f64,
) -> Result<OscillatorMetrics, SpiceError> {
    let stages = ro.stage_outputs.len();
    let period_est = 2.0 * stages as f64 * stage_delay_hint;
    let mut opts = TransientOptions::new(6.0 * period_est, period_est / (stages as f64 * 60.0));
    // Kick the ring out of its metastable DC point.
    opts.initial_voltages = vec![(ro.stage_outputs[0], ro.vdd)];
    let result = transient_nominal(&ro.circuit, &opts, &ExecLimits::none())?;
    let times = result.times();
    let probe = result.voltage(&ro.circuit, ro.stage_outputs[stages / 2]);
    let rising = crossing_times(times, &probe, ro.vdd / 2.0, true);
    if rising.len() < 3 {
        return Err(SpiceError::measurement(format!(
            "ring oscillator produced only {} rising crossings",
            rising.len()
        )));
    }
    // Period: median of the last few cycles.
    let mut periods: Vec<f64> = rising.windows(2).map(|w| w[1] - w[0]).collect();
    let tail = periods.len().min(3);
    let start = periods.len() - tail;
    periods = periods[start..].to_vec();
    periods.sort_by(f64::total_cmp);
    let period_s = periods[periods.len() / 2];

    // Power over the last measured period.
    let i_vdd = result.source_current(&ro.circuit, ro.vdd_source);
    // A ring with ≥ 3 rising crossings necessarily has time points.
    let t_end = times.last().copied().unwrap_or(0.0);
    let t_begin = t_end - period_s;
    let mut energy = 0.0;
    for i in 1..times.len() {
        if times[i] <= t_begin {
            continue;
        }
        energy += ro.vdd * (-i_vdd[i]) * (times[i] - times[i - 1]);
    }
    let power_w = energy / period_s;
    // 4 inverters per stage (driver + 3 dummies). The static estimate is a
    // DC figure; during oscillation the true leakage is somewhat different,
    // so floor the dynamic component at a few percent of the total rather
    // than letting the subtraction collapse to zero.
    let static_power_w = static_power_per_inverter * 4.0 * stages as f64;
    let dynamic_power_w = (power_w - static_power_w).max(0.05 * power_w.abs());
    let stage_delay_s = period_s / (2.0 * stages as f64);
    let energy_per_transition_j = dynamic_power_w * period_s / (2.0 * stages as f64);
    Ok(OscillatorMetrics {
        frequency_hz: 1.0 / period_s,
        period_s,
        power_w,
        static_power_w,
        dynamic_power_w,
        stage_delay_s,
        energy_per_transition_j,
        edp_js: energy_per_transition_j * stage_delay_s,
    })
}

/// Estimates ring-oscillator metrics from FO4 inverter measurements — the
/// fast path used for the dense (V_DD, V_T) exploration grids. Validated
/// against the full transient in the integration tests.
pub fn estimate_oscillator_from_inverter(
    inv: &InverterMetrics,
    stages: usize,
) -> OscillatorMetrics {
    let period_s = 2.0 * stages as f64 * inv.delay_s;
    // Each stage dissipates the measured FO4 switching energy once per
    // oscillator period per edge pair.
    let energy_per_transition_j = inv.energy_per_cycle_j / 2.0;
    let dynamic_power_w = stages as f64 * inv.energy_per_cycle_j / period_s;
    let static_power_w = inv.static_power_w * 4.0 * stages as f64;
    OscillatorMetrics {
        frequency_hz: 1.0 / period_s,
        period_s,
        power_w: dynamic_power_w + static_power_w,
        static_power_w,
        dynamic_power_w,
        stage_delay_s: inv.delay_s,
        energy_per_transition_j,
        edp_js: energy_per_transition_j * inv.delay_s,
    }
}

/// Computes the DC voltage transfer curve of an inverter cell.
///
/// # Errors
///
/// Propagates DC sweep failures.
pub fn inverter_vtc(
    cell: &InverterCell,
    vdd: f64,
    points: usize,
) -> Result<Vec<(f64, f64)>, SpiceError> {
    let chain = single_inverter(cell, vdd)?;
    let values: Vec<f64> = (0..points.max(2))
        .map(|i| vdd * i as f64 / (points.max(2) - 1) as f64)
        .collect();
    transfer_curve(
        &chain.circuit,
        chain.input_source,
        &values,
        chain.output,
        DcOptions::default(),
    )
}

/// Extracts butterfly-curve noise margins from two inverter VTCs
/// (`vtc2` is mirrored across the diagonal), via a maximal-inscribed-square
/// search on a dense membership grid.
pub fn butterfly_snm(vtc1: &[(f64, f64)], vtc2: &[(f64, f64)], vdd: f64) -> NoiseMargins {
    let n = 220usize;
    let h = vdd / (n - 1) as f64;
    let f1 = |x: f64| interp_curve(vtc1, x);
    let f2 = |x: f64| interp_curve(vtc2, x);
    // Membership masks for the two lobes.
    let mut upper = vec![false; n * n];
    let mut lower = vec![false; n * n];
    for j in 0..n {
        let y = j as f64 * h;
        for i in 0..n {
            let x = i as f64 * h;
            // Upper-left eye: below curve-1, right of mirrored curve-2.
            upper[j * n + i] = y <= f1(x) && x >= f2(y);
            // Lower-right eye: above curve-1, left of mirrored curve-2.
            lower[j * n + i] = y >= f1(x) && x <= f2(y);
        }
    }
    NoiseMargins {
        upper_v: max_square(&upper, n) as f64 * h,
        lower_v: max_square(&lower, n) as f64 * h,
    }
}

/// Noise margins of a latch: butterfly of its two (possibly mismatched)
/// inverters, as in the paper's Fig. 7.
///
/// # Errors
///
/// Propagates VTC computation failures.
pub fn latch_noise_margins(latch: &Latch, points: usize) -> Result<NoiseMargins, SpiceError> {
    let vtc1 = inverter_vtc(&latch.inv_a, latch.vdd, points)?;
    let vtc2 = inverter_vtc(&latch.inv_b, latch.vdd, points)?;
    Ok(butterfly_snm(&vtc1, &vtc2, latch.vdd))
}

/// Static power of a latch holding a state: leakage of both inverters at
/// the stable operating point.
///
/// # Errors
///
/// Propagates DC failures.
pub fn latch_static_power(latch: &Latch) -> Result<f64, SpiceError> {
    Ok(inverter_static_power(&latch.inv_a, latch.vdd)?
        + inverter_static_power(&latch.inv_b, latch.vdd)?)
}

/// Butterfly-curve static noise margin of a bistable cell (e.g. the 6T
/// SRAM cell from the deck zoo) given its two storage nodes.
///
/// The loop is broken twice: a sweep source forces `q` while `V(qb)` is
/// recorded, then forces `qb` while `V(q)` is recorded; the two half
/// curves feed [`butterfly_snm`]. The input circuit is not modified — the
/// forcing source is appended to a clone. Works on any circuit, including
/// deck-elaborated ones (access transistors, word/bit lines and all).
///
/// # Errors
///
/// Propagates DC sweep failures.
pub fn sram_butterfly_snm(
    circuit: &crate::circuit::Circuit,
    q: NodeId,
    qb: NodeId,
    vdd: f64,
    points: usize,
) -> Result<NoiseMargins, SpiceError> {
    let points = points.max(2);
    let values: Vec<f64> = (0..points)
        .map(|i| vdd * i as f64 / (points - 1) as f64)
        .collect();
    let half_curve = |forced: NodeId, observed: NodeId| -> Result<Vec<(f64, f64)>, SpiceError> {
        let mut c = circuit.clone();
        let sweep_index = c.source_count();
        c.add(Element::VSource {
            p: forced,
            n: NodeId::GROUND,
            wave: Waveform::Dc(0.0),
        });
        transfer_curve(&c, sweep_index, &values, observed, DcOptions::default())
    };
    let vtc1 = half_curve(q, qb)?;
    let vtc2 = half_curve(qb, q)?;
    Ok(butterfly_snm(&vtc1, &vtc2, vdd))
}

/// Propagation delay between an input and an output waveform: the 50 %
/// crossing of the last input edge (of the given direction) to the first
/// later output crossing (of its direction). `None` if either waveform
/// never crosses `level` the right way.
pub fn propagation_delay(
    times: &[f64],
    vin: &[f64],
    vout: &[f64],
    level: f64,
    rising_in: bool,
    rising_out: bool,
) -> Option<f64> {
    let in_edges = crossing_times(times, vin, level, rising_in);
    let out_edges = crossing_times(times, vout, level, rising_out);
    pair_delay(&in_edges, &out_edges)
}

fn interp_curve(curve: &[(f64, f64)], x: f64) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    if x <= curve[0].0 {
        return curve[0].1;
    }
    for w in curve.windows(2) {
        if x <= w[1].0 {
            let t = (x - w[0].0) / (w[1].0 - w[0].0).max(1e-300);
            return w[0].1 + t * (w[1].1 - w[0].1);
        }
    }
    curve.last().map_or(0.0, |p| p.1)
}

/// Classic maximal-square dynamic program over a boolean mask.
fn max_square(mask: &[bool], n: usize) -> usize {
    let mut dp = vec![0u32; n * n];
    let mut best = 0u32;
    for j in 0..n {
        for i in 0..n {
            if !mask[j * n + i] {
                continue;
            }
            let v = if i == 0 || j == 0 {
                1
            } else {
                1 + dp[(j - 1) * n + i]
                    .min(dp[j * n + i - 1])
                    .min(dp[(j - 1) * n + i - 1])
            };
            dp[j * n + i] = v;
            best = best.max(v);
        }
    }
    best as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_detection() {
        let times: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let wave = vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0];
        let rises = crossing_times(&times, &wave, 0.5, true);
        assert_eq!(rises.len(), 2);
        assert!((rises[0] - 1.5).abs() < 1e-12);
        let falls = crossing_times(&times, &wave, 0.5, false);
        assert_eq!(falls.len(), 2);
    }

    #[test]
    fn ideal_step_inverters_snm_is_half_vdd() {
        // Two ideal inverters switching at VDD/2: each butterfly lobe is a
        // VDD/2 x VDD/2 square.
        let vdd = 1.0;
        let vtc: Vec<(f64, f64)> = (0..=400)
            .map(|i| {
                let x = i as f64 / 400.0;
                (x, if x < 0.5 { 1.0 } else { 0.0 })
            })
            .collect();
        let nm = butterfly_snm(&vtc, &vtc, vdd);
        assert!((nm.upper_v - 0.5).abs() < 0.02, "upper {}", nm.upper_v);
        assert!((nm.lower_v - 0.5).abs() < 0.02);
        assert!((nm.snm() - 0.5).abs() < 0.02);
    }

    #[test]
    fn skewed_inverters_collapse_one_eye() {
        // Inverter 1 switches at 0.2, inverter 2 at 0.8: the butterfly is
        // asymmetric and the smaller eye shrinks towards zero.
        let vdd = 1.0;
        let mk = |vth: f64| -> Vec<(f64, f64)> {
            (0..=400)
                .map(|i| {
                    let x = i as f64 / 400.0;
                    (x, if x < vth { 1.0 } else { 0.0 })
                })
                .collect()
        };
        let nm = butterfly_snm(&mk(0.2), &mk(0.2), vdd);
        // Mirror of a 0.2-threshold inverter: upper eye [0, 0.2] x [0.2, 1].
        // Max square = 0.2; lower eye = [0.2, 1] x [0, 0.2] -> 0.2 as well.
        assert!((nm.snm() - 0.2).abs() < 0.02, "snm {}", nm.snm());
        // A mismatched pair gives different lobes.
        let nm = butterfly_snm(&mk(0.8), &mk(0.2), vdd);
        assert!(nm.upper_v > nm.lower_v, "{nm:?}");
    }

    #[test]
    fn linear_vtc_has_zero_snm() {
        // A "wire" (unity-gain line) has no regenerative lobes.
        let vtc: Vec<(f64, f64)> = (0..=100)
            .map(|i| {
                let x = i as f64 / 100.0;
                (x, 1.0 - x)
            })
            .collect();
        let nm = butterfly_snm(&vtc, &vtc, 1.0);
        // Lobe squares degenerate to grid resolution.
        assert!(nm.snm() < 0.02, "snm {}", nm.snm());
    }

    #[test]
    fn estimate_matches_definition() {
        let inv = InverterMetrics {
            delay_s: 10e-12,
            delay_fall_s: 9e-12,
            delay_rise_s: 11e-12,
            static_power_w: 1e-7,
            dynamic_power_w: 5e-7,
            energy_per_cycle_j: 2e-16,
            measure_period_s: 4e-10,
        };
        let ro = estimate_oscillator_from_inverter(&inv, 15);
        assert!((ro.period_s - 3e-10).abs() < 1e-20);
        assert!((ro.frequency_hz - 1.0 / 3e-10).abs() < 1.0);
        assert!((ro.stage_delay_s - 10e-12).abs() < 1e-20);
        assert!((ro.edp_js - 1e-16 * 10e-12).abs() < 1e-40);
    }
}
