//! `gnr-spice` — run SPICE decks end-to-end without writing Rust.
//!
//! ```text
//! gnr-spice parse <deck.sp>            summarize a deck (or report errors)
//! gnr-spice dc    <deck.sp> [--out f]  .dc sweep if present, else .op
//! gnr-spice tran  <deck.sp> [--out f]  first .tran card
//! gnr-spice ac    <deck.sp> [--out f]  first .ac card
//! ```
//!
//! Results are `gnr-rawfile/v1` JSON on stdout (or `--out <file>`).
//! `.model … surrogate` cards resolve automatically; `.model … gnrfet`
//! cards build real ballistic tables through `gnr-device` (parameters:
//! `n` GNR index, `ribbons`, `config=small|paper`, `vdd`, grid bounds
//! `vgs0 vgs1 vds0 vds1 points`, `polarity`, `vgshift=auto|<v>`,
//! `rs`/`rd`). Exit codes: 0 ok, 1 usage/IO, 2 parse error, 3 analysis
//! failure.

use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnr_num::budget::ExecLimits;
use gnr_num::json::Json;
use gnr_num::par::ExecCtx;
use gnr_spice::dc::{dc_operating_point, set_source_value, DcOptions};
use gnr_spice::netlist::{parse_deck, AnalysisCard, Deck, ElaboratedDeck, ModelBindings};
use gnr_spice::rawfile;
use gnr_spice::transient::{transient, TransientOptions};
use gnr_spice::{ac::ac_analysis, SpiceError};
use std::sync::Arc;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn usage() -> i32 {
    eprintln!("usage: gnr-spice <parse|dc|tran|ac> <deck.sp> [--out <file>]");
    1
}

fn run(args: Vec<String>) -> i32 {
    let mut cmd = None;
    let mut deck_path = None;
    let mut out_path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            _ if cmd.is_none() => cmd = Some(a),
            _ if deck_path.is_none() => deck_path = Some(a),
            _ => return usage(),
        }
    }
    let (Some(cmd), Some(deck_path)) = (cmd, deck_path) else {
        return usage();
    };
    let text = match std::fs::read_to_string(&deck_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{deck_path}: {e}");
            return 1;
        }
    };
    let deck = match parse_deck(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{deck_path}:{}:{}: {e}", e.line, e.col);
            return 2;
        }
    };
    if cmd == "parse" {
        println!(
            "{}: '{}' — {} elements (flattened), {} models, {} analyses",
            deck_path,
            deck.title,
            deck.element_count(),
            deck.models().len(),
            deck.analyses.len()
        );
        for a in &deck.analyses {
            println!("  analysis: {a:?}");
        }
        return 0;
    }
    let bindings = match gnrfet_bindings(&deck) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{deck_path}: model resolution failed: {e}");
            return 3;
        }
    };
    let elab = match deck.elaborate(&bindings) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{deck_path}:{}:{}: {e}", e.line, e.col);
            return 2;
        }
    };
    if let Err(e) = elab.circuit.validate() {
        eprintln!("{deck_path}: {e}");
        return 2;
    }
    let result = match cmd.as_str() {
        "dc" => run_dc(&elab),
        "tran" => run_tran(&elab),
        "ac" => run_ac(&elab),
        _ => return usage(),
    };
    let json = match result {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{deck_path}: {e}");
            return 3;
        }
    };
    let dumped = json.dump();
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, dumped) {
                eprintln!("{p}: {e}");
                return 1;
            }
        }
        None => {
            // Tolerate a closed pipe (e.g. `gnr-spice dc deck.sp | head`).
            use std::io::Write;
            let _ = writeln!(std::io::stdout(), "{dumped}");
        }
    }
    0
}

fn run_dc(elab: &ElaboratedDeck) -> Result<Json, SpiceError> {
    let sweep = elab.analyses.iter().find_map(|a| match a {
        AnalysisCard::Dc {
            source,
            start,
            stop,
            step,
        } => Some((source.clone(), *start, *stop, *step)),
        _ => None,
    });
    match sweep {
        None => {
            let x = dc_operating_point(
                &elab.circuit,
                None,
                DcOptions::default(),
                &ExecLimits::none(),
            )?;
            Ok(rawfile::dc_rawfile(elab, &x))
        }
        Some((source, start, stop, step)) => {
            if step <= 0.0 || stop < start {
                return Err(SpiceError::config(".dc needs stop >= start and step > 0"));
            }
            let k = elab.source_index(&source).ok_or_else(|| {
                SpiceError::config(format!(".dc sweeps unknown source '{source}'"))
            })?;
            let n_steps = ((stop - start) / step).round() as usize;
            let values: Vec<f64> = (0..=n_steps).map(|i| start + i as f64 * step).collect();
            let mut circuit = elab.circuit.clone();
            let mut solutions = Vec::with_capacity(values.len());
            let mut x_prev: Option<Vec<f64>> = None;
            for &v in &values {
                set_source_value(&mut circuit, k, v)?;
                let x = dc_operating_point(
                    &circuit,
                    x_prev.as_deref(),
                    DcOptions::default(),
                    &ExecLimits::none(),
                )?;
                x_prev = Some(x.clone());
                solutions.push(x);
            }
            Ok(rawfile::sweep_rawfile(elab, &source, &values, &solutions))
        }
    }
}

fn run_tran(elab: &ElaboratedDeck) -> Result<Json, SpiceError> {
    let card = elab
        .analyses
        .iter()
        .find_map(|a| match a {
            AnalysisCard::Tran { dt, t_stop } => Some((*dt, *t_stop)),
            _ => None,
        })
        .ok_or_else(|| SpiceError::config("deck has no .tran card"))?;
    let ctx = ExecCtx::from_env();
    let (result, _report) = transient(&ctx, &elab.circuit, &TransientOptions::new(card.1, card.0))?;
    Ok(rawfile::tran_rawfile(elab, &result))
}

fn run_ac(elab: &ElaboratedDeck) -> Result<Json, SpiceError> {
    let card = elab
        .analyses
        .iter()
        .find_map(|a| match a {
            AnalysisCard::Ac {
                points_per_decade,
                f_start,
                f_stop,
            } => Some((*points_per_decade, *f_start, *f_stop)),
            _ => None,
        })
        .ok_or_else(|| SpiceError::config("deck has no .ac card"))?;
    let (ppd, f_start, f_stop) = card;
    if ppd == 0 || f_start <= 0.0 || f_stop < f_start {
        return Err(SpiceError::config(
            ".ac needs points/decade > 0 and 0 < fstart <= fstop",
        ));
    }
    let mut freqs = Vec::new();
    let mut i = 0usize;
    loop {
        let f = f_start * 10f64.powf(i as f64 / ppd as f64);
        if f > f_stop * (1.0 + 1e-12) {
            break;
        }
        freqs.push(f);
        i += 1;
    }
    // The source tagged `ac` in the deck, else the first source.
    let src = elab.ac_source.unwrap_or(0);
    let sweep = ac_analysis(&elab.circuit, src, &freqs, DcOptions::default())?;
    Ok(rawfile::ac_rawfile(elab, &sweep))
}

/// Builds tables for every `.model … gnrfet` card via `gnr-device` and
/// binds them by name. Surrogate cards are left to the elaborator.
fn gnrfet_bindings(deck: &Deck) -> Result<ModelBindings, String> {
    let mut bindings = ModelBindings::new();
    let ctx = ExecCtx::from_env();
    for card in deck.models() {
        if card.kind != "gnrfet" {
            continue;
        }
        let bad = |e: &dyn std::fmt::Display| format!("model '{}': {e}", card.name);
        let p = |key: &str, dflt: f64| card.param_f64(key, dflt).map_err(|e| bad(&e));
        let n = p("n", 12.0)? as usize;
        let ribbons = p("ribbons", 4.0)? as usize;
        let vdd = p("vdd", 0.4)?;
        let cfg = match card.param("config").unwrap_or("small") {
            "small" => DeviceConfig::test_small(n).map_err(|e| bad(&e))?,
            "paper" => DeviceConfig::paper_nominal(n).map_err(|e| bad(&e))?,
            other => return Err(bad(&format!("unknown config '{other}'"))),
        };
        let model = SbfetModel::new(&cfg).map_err(|e| bad(&e))?;
        let grid = TableGrid {
            vgs: (p("vgs0", -0.35)?, p("vgs1", 1.0)?),
            vds: (p("vds0", 0.0)?, p("vds1", 0.85)?),
            points: p("points", 21.0)? as usize,
        };
        let mut table = DeviceTable::from_model(&ctx, &model, Polarity::NType, grid, ribbons)
            .map_err(|e| bad(&e))?;
        match card.param("vgshift") {
            None => {}
            Some("auto") => {
                let vmin = model.minimum_leakage_vg(vdd).map_err(|e| bad(&e))?;
                table = table.with_vg_shift(-vmin);
            }
            Some(raw) => {
                let shift = gnr_num::json::Json::parse(raw)
                    .ok()
                    .and_then(|j| j.as_f64())
                    .ok_or_else(|| bad(&format!("bad vgshift '{raw}'")))?;
                table = table.with_vg_shift(shift);
            }
        }
        let rs = p("rs", 0.0)?;
        let rd = p("rd", 0.0)?;
        if rs != 0.0 || rd != 0.0 {
            table = table.fold_series_resistance(rs, rd).map_err(|e| bad(&e))?;
        }
        if card.param("polarity") == Some("p") {
            table = table.mirrored();
        }
        bindings = bindings.bind(&card.name, Arc::new(table));
    }
    Ok(bindings)
}
