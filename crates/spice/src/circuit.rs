//! Netlist representation and MNA stamping.
//!
//! Nodes are interned by name; node `"0"`/`"gnd"` is ground. Unknowns are
//! the non-ground node voltages plus one branch current per voltage source
//! (modified nodal analysis). [`Circuit::stamp`] assembles the Jacobian and
//! KCL residual at a trial solution, which both the DC and transient
//! engines drive with Newton's method.

use crate::error::SpiceError;
use crate::mna::MnaSink;
use gnr_device::DeviceTable;
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a circuit node; ground is `NodeId(0)`.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);
}

/// Time-dependent source value.
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// Constant value \[V\].
    Dc(f64),
    /// Periodic trapezoidal pulse.
    Pulse {
        /// Low level \[V\].
        low: f64,
        /// High level \[V\].
        high: f64,
        /// Delay before the first rising edge \[s\].
        delay: f64,
        /// Rise time \[s\].
        rise: f64,
        /// Fall time \[s\].
        fall: f64,
        /// High-level width \[s\].
        width: f64,
        /// Full period \[s\].
        period: f64,
    },
}

impl Waveform {
    /// Value at time `t` \[V\].
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < delay {
                    return low;
                }
                let tau = (t - delay) % period;
                if tau < rise {
                    low + (high - low) * tau / rise
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    high - (high - low) * (tau - rise - width) / fall
                } else {
                    low
                }
            }
        }
    }
}

/// A circuit element.
#[derive(Clone, Debug)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance \[Ω\].
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance \[F\].
        farads: f64,
    },
    /// Independent voltage source from `p` (positive) to `n`.
    VSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
    },
    /// Independent current source driving a fixed current from `p` to
    /// `n` through itself (SPICE convention: positive current flows
    /// through the source from `p` to `n`, i.e. it leaves node `p`).
    ISource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform (value in amperes).
        wave: Waveform,
    },
    /// A table-lookup FET (drain, gate, source); the gate is capacitive
    /// only, with the bias-dependent intrinsic C_GS/C_GD handled by the
    /// transient engine.
    Fet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Lookup-table device model.
        table: Arc<DeviceTable>,
    },
}

/// Callback that stamps a capacitor companion model into the MNA system
/// (element, trial solution, Jacobian sink, residual).
pub(crate) type CapStamp<'a> = &'a mut dyn FnMut(&Element, &[f64], &mut dyn MnaSink, &mut Vec<f64>);

/// A flat netlist plus node interning.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    names: HashMap<String, NodeId>,
    node_count: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit (ground pre-interned).
    pub fn new() -> Self {
        let mut names = HashMap::new();
        names.insert("0".to_string(), NodeId::GROUND);
        names.insert("gnd".to_string(), NodeId::GROUND);
        Circuit {
            names,
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Interns (or retrieves) a node by name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.names.insert(name.to_string(), id);
        id
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Canonical name of a node, if it has one (`"0"` for ground; nodes
    /// created via [`Circuit::fresh_node`] are anonymous). A node with
    /// several aliases reports the lexicographically smallest, which keeps
    /// the result deterministic regardless of hash-map iteration order.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.names
            .iter()
            .filter(|(_, &id)| id == node)
            .map(|(name, _)| name.as_str())
            .min()
    }

    /// Canonical names for every node in index order (`None` entries are
    /// anonymous nodes from [`Circuit::fresh_node`]).
    pub fn node_names(&self) -> Vec<Option<&str>> {
        let mut out: Vec<Option<&str>> = vec![None; self.node_count];
        for (name, &NodeId(i)) in &self.names {
            match out[i] {
                Some(existing) if existing <= name.as_str() => {}
                _ => out[i] = Some(name.as_str()),
            }
        }
        out
    }

    /// Adds an element.
    pub fn add(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// All elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the elements (crate-internal; used by the sweep
    /// engines to retarget source values).
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Number of voltage sources (each owns one MNA branch unknown).
    pub fn source_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Size of the MNA unknown vector: non-ground nodes + source branches.
    pub fn unknowns(&self) -> usize {
        (self.node_count - 1) + self.source_count()
    }

    /// Maps a node to its row/column in the MNA system (`None` = ground).
    pub fn mna_index(&self, node: NodeId) -> Option<usize> {
        if node == NodeId::GROUND {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    /// Validates the netlist: every non-ground node must be touched by at
    /// least one element, and element values must be physical.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Config`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let mut touched = vec![false; self.node_count];
        touched[0] = true;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    if ohms.is_nan() || *ohms <= 0.0 {
                        return Err(SpiceError::config("resistor must have R > 0"));
                    }
                    touched[a.0] = true;
                    touched[b.0] = true;
                }
                Element::Capacitor { a, b, farads } => {
                    if farads.is_nan() || *farads < 0.0 {
                        return Err(SpiceError::config("capacitor must have C >= 0"));
                    }
                    touched[a.0] = true;
                    touched[b.0] = true;
                }
                Element::VSource { p, n, .. } => {
                    touched[p.0] = true;
                    touched[n.0] = true;
                }
                Element::ISource { p, n, wave } => {
                    if let Waveform::Dc(v) = wave {
                        if v.is_nan() {
                            return Err(SpiceError::config("current source value is NaN"));
                        }
                    }
                    touched[p.0] = true;
                    touched[n.0] = true;
                }
                Element::Fet { d, g, s, .. } => {
                    touched[d.0] = true;
                    touched[g.0] = true;
                    touched[s.0] = true;
                }
            }
        }
        if let Some(idx) = touched.iter().position(|&t| !t) {
            return Err(SpiceError::config(format!("node {idx} is floating")));
        }
        Ok(())
    }

    /// Assembles the MNA Jacobian and residual at trial solution `x`
    /// (node voltages then source branch currents) and time `t`.
    ///
    /// The residual convention is `f(x) = 0` with `f[node] = Σ currents
    /// leaving the node`. Capacitors are stamped by the caller-provided
    /// `cap_stamp` (empty in DC, companion model in transient); `gmin` adds
    /// a small conductance to ground at every node for convergence aid.
    ///
    /// The Jacobian goes through the [`MnaSink`] abstraction (dense
    /// matrix, fixed-pattern sparse matrix, or residual-only); residual
    /// values are identical across sinks, and Jacobian-only device
    /// `gm`/`gds` lookups are skipped when the sink discards matrix
    /// entries.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stamp(
        &self,
        x: &[f64],
        t: f64,
        gmin: f64,
        mut cap_stamp: Option<CapStamp<'_>>,
        jac: &mut dyn MnaSink,
        res: &mut Vec<f64>,
    ) {
        let n_nodes = self.node_count - 1;
        debug_assert_eq!(x.len(), self.unknowns());
        let volt = |node: NodeId, x: &[f64]| -> f64 {
            match self.mna_index(node) {
                None => 0.0,
                Some(i) => x[i],
            }
        };
        // Reset.
        for v in res.iter_mut() {
            *v = 0.0;
        }
        jac.clear();
        // gmin to ground on every node.
        for i in 0..n_nodes {
            jac.add(i, i, gmin);
            res[i] += gmin * x[i];
        }
        let mut src_idx = 0usize;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let (va, vb) = (volt(*a, x), volt(*b, x));
                    let i_ab = g * (va - vb);
                    if let Some(ia) = self.mna_index(*a) {
                        res[ia] += i_ab;
                        jac.add(ia, ia, g);
                        if let Some(ib) = self.mna_index(*b) {
                            jac.add(ia, ib, -g);
                        }
                    }
                    if let Some(ib) = self.mna_index(*b) {
                        res[ib] -= i_ab;
                        jac.add(ib, ib, g);
                        if let Some(ia) = self.mna_index(*a) {
                            jac.add(ib, ia, -g);
                        }
                    }
                }
                Element::Capacitor { .. } => {
                    if let Some(f) = cap_stamp.as_deref_mut() {
                        f(e, x, &mut *jac, res);
                    }
                }
                Element::VSource { p, n, wave } => {
                    let row = n_nodes + src_idx;
                    let v_target = wave.value(t);
                    // Branch equation: V(p) - V(n) - v_target = 0.
                    res[row] = volt(*p, x) - volt(*n, x) - v_target;
                    if let Some(ip) = self.mna_index(*p) {
                        jac.add(row, ip, 1.0);
                        // Branch current flows out of p into the source.
                        res[ip] += x[row];
                        jac.add(ip, row, 1.0);
                    }
                    if let Some(in_) = self.mna_index(*n) {
                        jac.add(row, in_, -1.0);
                        res[in_] -= x[row];
                        jac.add(in_, row, -1.0);
                    }
                    src_idx += 1;
                }
                Element::ISource { p, n, wave } => {
                    // A known current leaving node p and entering node n;
                    // contributes to the residual only (no Jacobian terms,
                    // no branch unknown).
                    let i = wave.value(t);
                    if let Some(ip) = self.mna_index(*p) {
                        res[ip] += i;
                    }
                    if let Some(in_) = self.mna_index(*n) {
                        res[in_] -= i;
                    }
                }
                Element::Fet { d, g, s, table } => {
                    let (vd, vg, vs) = (volt(*d, x), volt(*g, x), volt(*s, x));
                    let vgs = vg - vs;
                    let vds = vd - vs;
                    // Current into drain = id; out of source = id.
                    let id = table.current(vgs, vds);
                    if let Some(idd) = self.mna_index(*d) {
                        res[idd] += id;
                    }
                    if let Some(is) = self.mna_index(*s) {
                        res[is] -= id;
                    }
                    // The gm/gds table lookups only feed the Jacobian;
                    // residual-only sinks skip them entirely.
                    if jac.wants_matrix() {
                        let gm = table.gm(vgs, vds);
                        let gds = table.gds(vgs, vds);
                        if let Some(idd) = self.mna_index(*d) {
                            jac.add(idd, idd, gds);
                            if let Some(ig) = self.mna_index(*g) {
                                jac.add(idd, ig, gm);
                            }
                            if let Some(is) = self.mna_index(*s) {
                                jac.add(idd, is, -(gm + gds));
                            }
                        }
                        if let Some(is) = self.mna_index(*s) {
                            jac.add(is, is, gm + gds);
                            if let Some(idd) = self.mna_index(*d) {
                                jac.add(is, idd, -gds);
                            }
                            if let Some(ig) = self.mna_index(*g) {
                                jac.add(is, ig, -gm);
                            }
                        }
                    }
                    // The FET's capacitive gate current is handled by the
                    // transient companion models, not here.
                    if let Some(f) = cap_stamp.as_deref_mut() {
                        f(e, x, &mut *jac, res);
                    }
                }
            }
        }
    }

    /// Branch current of the `k`-th voltage source in a solved MNA vector.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the source count or `x` is too short.
    pub fn source_current(&self, x: &[f64], k: usize) -> f64 {
        assert!(k < self.source_count(), "source index out of range");
        x[(self.node_count - 1) + k]
    }

    /// Voltage of `node` in a solved MNA vector (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the unknown count.
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.mna_index(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("out");
        let b = c.node("out");
        assert_eq!(a, b);
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("0"), NodeId::GROUND);
        let f = c.fresh_node();
        assert_ne!(f, a);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn waveform_pulse_shape() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 4e-10,
            period: 1e-9,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1e-9 + 5e-11) - 0.5).abs() < 1e-9);
        assert_eq!(w.value(1e-9 + 3e-10), 1.0);
        assert!(w.value(1e-9 + 5.5e-10) < 1.0);
        assert_eq!(w.value(1e-9 + 8e-10), 0.0);
        // Periodicity.
        assert!((w.value(1e-9 + 3e-10) - w.value(2e-9 + 3e-10)).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_floating_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let _b = c.node("b"); // floating
        c.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        assert!(matches!(c.validate(), Err(SpiceError::Config { .. })));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: 0.0,
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn unknown_count_includes_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Element::VSource {
            p: a,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        c.add(Element::Resistor { a, b, ohms: 1e3 });
        c.add(Element::Resistor {
            a: b,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        assert_eq!(c.unknowns(), 3); // 2 nodes + 1 branch
        assert_eq!(c.source_count(), 1);
    }
}
