//! Transient analysis: backward-Euler or trapezoidal integration with
//! per-step Newton.
//!
//! Capacitors (linear and bias-dependent FET C_GS/C_GD from the lookup
//! tables) are replaced by their companion models each step; the FET
//! capacitances are evaluated at the previous step's bias, which keeps
//! each step's Newton problem smooth — the same
//! capacitance-from-lookup-table treatment the paper's simulator uses.
//! Backward Euler (default) is L-stable and damps the kinks the bilinear
//! tables introduce; trapezoidal integration offers second-order accuracy
//! for smooth waveforms.

use crate::circuit::{Circuit, Element, NodeId};
use crate::dc::{dc_operating_point, is_budget_stop, DcOptions};
use crate::error::SpiceError;
use crate::mna::{MnaSink, MnaSystem, ResidualOnly};
use gnr_num::budget::ExecLimits;
use gnr_num::par::{ExecCtx, RecoveryPolicy};
use gnr_num::recover::{AttemptReport, EscalationLadder, SolveReport};
use gnr_num::telemetry;
use std::collections::HashMap;

/// Time-integration method for the transient engine.
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub enum Integrator {
    /// First-order, L-stable backward Euler (default; robust against the
    /// derivative kinks of bilinear device tables).
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule (more accurate for smooth circuits;
    /// can ring on discontinuities).
    Trapezoidal,
}

/// Transient analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientOptions {
    /// Simulation stop time \[s\].
    pub t_stop: f64,
    /// Fixed time step \[s\].
    pub dt: f64,
    /// Newton controls per step.
    pub newton: DcOptions,
    /// Initial node voltages to impose instead of the DC operating point
    /// (used e.g. to kick a ring oscillator); nodes not listed start from
    /// the DC solution.
    pub initial_voltages: Vec<(NodeId, f64)>,
    /// Skip the initial DC solve and start from all-zeros (+ overrides).
    pub skip_dc: bool,
    /// Time-integration method.
    pub integrator: Integrator,
    /// Retry ladder used when the execution context's policy is
    /// [`RecoveryPolicy::Ladder`]; ignored under
    /// [`RecoveryPolicy::Strict`].
    pub recovery: TransientRecovery,
}

impl TransientOptions {
    /// A standard configuration integrating to `t_stop` with step `dt`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TransientOptions {
            t_stop,
            dt,
            newton: DcOptions {
                tolerance_a: 1e-11,
                gmin_ladder: &[1e-9],
                ..DcOptions::default()
            },
            initial_voltages: Vec::new(),
            skip_dc: false,
            integrator: Integrator::default(),
            recovery: TransientRecovery::default(),
        }
    }

    /// Switches to trapezoidal integration.
    pub fn trapezoidal(mut self) -> Self {
        self.integrator = Integrator::Trapezoidal;
        self
    }

    /// Sets the simulation stop time \[s\].
    pub fn with_t_stop(mut self, t_stop: f64) -> Self {
        self.t_stop = t_stop;
        self
    }

    /// Sets the fixed time step \[s\].
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Replaces the per-step Newton controls.
    pub fn with_newton(mut self, newton: DcOptions) -> Self {
        self.newton = newton;
        self
    }

    /// Sets the initial node-voltage overrides.
    pub fn with_initial_voltages(mut self, overrides: Vec<(NodeId, f64)>) -> Self {
        self.initial_voltages = overrides;
        self
    }

    /// Skips (or restores) the initial DC solve.
    pub fn with_skip_dc(mut self, skip: bool) -> Self {
        self.skip_dc = skip;
        self
    }

    /// Selects the time-integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Replaces the retry ladder used under [`RecoveryPolicy::Ladder`].
    pub fn with_recovery(mut self, recovery: TransientRecovery) -> Self {
        self.recovery = recovery;
        self
    }
}

impl Default for TransientOptions {
    /// A 1 ns window at a 1 ps step — override with
    /// [`with_t_stop`](TransientOptions::with_t_stop) /
    /// [`with_dt`](TransientOptions::with_dt).
    fn default() -> Self {
        TransientOptions::new(1e-9, 1e-12)
    }
}

/// Result of a transient run: the full solution vector at every accepted
/// time point.
#[derive(Clone, Debug)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    node_count: usize,
}

impl TransientResult {
    /// The time points \[s\].
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of `node` \[V\].
    pub fn voltage(&self, circuit: &Circuit, node: NodeId) -> Vec<f64> {
        self.solutions
            .iter()
            .map(|x| circuit.voltage(x, node))
            .collect()
    }

    /// Branch-current waveform of the `k`-th voltage source \[A\].
    pub fn source_current(&self, circuit: &Circuit, k: usize) -> Vec<f64> {
        self.solutions
            .iter()
            .map(|x| circuit.source_current(x, k))
            .collect()
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The final solution vector.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn final_solution(&self) -> &[f64] {
        self.solutions.last().expect("empty transient result")
    }

    fn push(&mut self, t: f64, x: Vec<f64>) {
        self.times.push(t);
        self.solutions.push(x);
    }

    /// Internal: node count snapshot for sanity checks.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// Runs a transient analysis under the execution context's recovery
/// policy.
///
/// With [`RecoveryPolicy::Strict`] exactly one integration runs and any
/// failure propagates — byte-for-byte the historic plain `transient`. With
/// [`RecoveryPolicy::Ladder`] the nominal run (identical when it succeeds)
/// is followed on Newton divergence by the `opts.recovery` ladder: timestep
/// halvings down to `dt_floor`, then — when `source_ramp` is set — one
/// attempt seeded from a source-stepped DC solution. The report records
/// each attempt and the winning policy.
///
/// # Errors
///
/// Propagates netlist validation, DC, and per-step Newton failures; under
/// `Ladder`, returns the first attempt's error when every rung fails.
pub fn transient(
    ctx: &ExecCtx,
    circuit: &Circuit,
    opts: &TransientOptions,
) -> Result<(TransientResult, SolveReport), SpiceError> {
    telemetry::counter_inc("transient.solves");
    match ctx.recovery() {
        RecoveryPolicy::Strict => {
            let result = transient_nominal(circuit, opts, ctx.limits())?;
            let steps = result.len();
            Ok((result, SolveReport::single("nominal", steps, f64::NAN)))
        }
        RecoveryPolicy::Ladder => transient_laddered(circuit, opts, ctx.limits()),
    }
}

/// The plain single-attempt integration engine behind [`transient`] — also
/// used by the measurement layer, whose pinned figures must never be
/// silently rescued by a ladder rung. Probes `limits` at every time step;
/// pass [`ExecLimits::none`] when unbudgeted.
pub(crate) fn transient_nominal(
    circuit: &Circuit,
    opts: &TransientOptions,
    limits: &ExecLimits,
) -> Result<TransientResult, SpiceError> {
    circuit.validate()?;
    if opts.dt.is_nan() || opts.dt <= 0.0 || opts.t_stop.is_nan() || opts.t_stop <= 0.0 {
        return Err(SpiceError::config("transient needs dt > 0 and t_stop > 0"));
    }
    let n = circuit.unknowns();
    // Initial state.
    let mut x = if opts.skip_dc {
        vec![0.0; n]
    } else {
        dc_operating_point(circuit, None, opts.newton, limits)?
    };
    for &(node, v) in &opts.initial_voltages {
        if let Some(i) = circuit.mna_index(node) {
            x[i] = v;
        }
    }
    let mut result = TransientResult {
        times: Vec::new(),
        solutions: Vec::new(),
        node_count: circuit.node_count(),
    };
    result.push(0.0, x.clone());

    let steps = (opts.t_stop / opts.dt).ceil() as usize;
    let dt = opts.dt;
    // One linear system for the whole run: the sparse backend's symbolic
    // analysis is shared by every time step's Newton loop.
    let mut sys = MnaSystem::for_circuit(circuit, opts.newton.solver);
    let mut res = vec![0.0; n];
    // Per-branch capacitor current history (trapezoidal rule); zero at the
    // DC starting point by definition.
    let mut hist: BranchHistory = HashMap::new();
    let mut newton_iters: u64 = 0;

    for step in 1..=steps {
        limits.check("transient.step")?;
        let t = step as f64 * dt;
        let x_prev = x.clone();
        // Freeze the FET capacitances at the previous bias for this step.
        let caps = freeze_capacitances(circuit, &x_prev);
        let mut newton_ok = false;
        let mut clamp = opts.newton.step_clamp_v;
        let mut prev_worst = f64::INFINITY;
        for _ in 0..opts.newton.max_iterations {
            newton_iters += 1;
            stamp_with_caps(
                circuit,
                &x,
                &x_prev,
                t,
                dt,
                &caps,
                opts.integrator,
                &hist,
                sys.sink(),
                &mut res,
            );
            // `max` silently drops NaN: probe non-finite residuals
            // explicitly so divergence fails fast with a typed error.
            if res.iter().any(|v| !v.is_finite()) {
                telemetry::counter_add("transient.newton_iterations", newton_iters);
                return Err(gnr_num::NumError::non_finite(format!(
                    "transient newton residual at t = {t:.3e} s"
                ))
                .into());
            }
            let worst = res.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if worst < opts.newton.tolerance_a {
                newton_ok = true;
                break;
            }
            // Same kink-safe damping as the DC engine.
            if worst >= prev_worst {
                clamp = (clamp * 0.5).max(1e-5);
            }
            prev_worst = worst;
            let dx = sys.solve(&res)?;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi -= di.clamp(-clamp, clamp);
            }
        }
        if !newton_ok {
            // Accept with a softened tolerance before failing outright;
            // only the residual is needed here, so skip the Jacobian.
            stamp_with_caps(
                circuit,
                &x,
                &x_prev,
                t,
                dt,
                &caps,
                opts.integrator,
                &hist,
                &mut ResidualOnly,
                &mut res,
            );
            let worst = res.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if worst > opts.newton.tolerance_a * 1e3 {
                return Err(SpiceError::NewtonDiverged {
                    analysis: "transient step",
                    iterations: opts.newton.max_iterations,
                    residual: worst,
                });
            }
        }
        if opts.integrator == Integrator::Trapezoidal {
            update_history(circuit, &x, &x_prev, dt, &caps, &mut hist);
        }
        result.push(t, x.clone());
    }
    // Aggregated per run, not per inner iteration, so the disarmed cost
    // stays a pair of atomic loads per transient.
    telemetry::counter_add("transient.steps", steps as u64);
    telemetry::counter_add("transient.newton_iterations", newton_iters);
    Ok(result)
}

/// Retry policy for the [`RecoveryPolicy::Ladder`] path of [`transient`].
#[derive(Clone, Debug, PartialEq)]
pub struct TransientRecovery {
    /// Maximum number of timestep halvings tried after the nominal run
    /// fails with [`SpiceError::NewtonDiverged`].
    pub max_dt_halvings: usize,
    /// Smallest timestep the halving ladder may use \[s\]; rungs below it
    /// are skipped.
    pub dt_floor: f64,
    /// After the halving ladder, retry once from a source-stepped DC
    /// solution imposed as initial node voltages (source ramping).
    pub source_ramp: bool,
}

impl Default for TransientRecovery {
    fn default() -> Self {
        TransientRecovery {
            max_dt_halvings: 3,
            dt_floor: 0.0,
            source_ramp: true,
        }
    }
}

/// The escalation-ladder integration behind [`RecoveryPolicy::Ladder`].
fn transient_laddered(
    circuit: &Circuit,
    opts: &TransientOptions,
    limits: &ExecLimits,
) -> Result<(TransientResult, SolveReport), SpiceError> {
    let rec = &opts.recovery;
    #[derive(Clone)]
    enum Policy {
        Nominal,
        HalveDt(u32),
        SourceRamp,
    }
    let mut ladder = EscalationLadder::new().rung("nominal", Policy::Nominal);
    for k in 1..=rec.max_dt_halvings as u32 {
        ladder = ladder.rung(format!("dt/{}", 1u64 << k), Policy::HalveDt(k));
    }
    if rec.source_ramp {
        ladder = ladder.rung("source-ramp", Policy::SourceRamp);
    }

    let mut first_err: Option<SpiceError> = None;
    // A budget stop must short-circuit the remaining rungs rather than
    // re-integrate with smaller timesteps against an exhausted budget.
    let mut stop_err: Option<SpiceError> = None;
    let record_err =
        |err: SpiceError, first: &mut Option<SpiceError>| -> AttemptReport<TransientResult> {
            let msg = err.to_string();
            if first.is_none() {
                *first = Some(err);
            }
            AttemptReport::failed(msg)
        };
    let outcome = ladder.run(|_, policy| {
        if stop_err.is_some() {
            return AttemptReport::failed("skipped: budget stop");
        }
        let attempt_opts = match policy {
            Policy::Nominal => opts.clone(),
            Policy::HalveDt(k) => {
                let dt = opts.dt / f64::from(1u32 << *k);
                if dt < rec.dt_floor {
                    return AttemptReport::failed(format!(
                        "dt {dt:.3e} s below floor {:.3e} s",
                        rec.dt_floor
                    ));
                }
                TransientOptions { dt, ..opts.clone() }
            }
            Policy::SourceRamp => {
                // Solve the operating point by ramping the sources, then
                // impose it as the starting state instead of the (failing)
                // direct DC solve.
                let x = match crate::dc::source_stepping(circuit, opts.newton, limits) {
                    Ok(x) => x,
                    Err(e) if is_budget_stop(&e) => {
                        let msg = e.to_string();
                        stop_err = Some(e);
                        return AttemptReport::failed(msg);
                    }
                    Err(e) => return record_err(e, &mut first_err),
                };
                let initial_voltages: Vec<(NodeId, f64)> = (1..circuit.node_count())
                    .map(|i| (NodeId(i), circuit.voltage(&x, NodeId(i))))
                    .collect();
                TransientOptions {
                    skip_dc: true,
                    initial_voltages,
                    ..opts.clone()
                }
            }
        };
        // Fault injection (disarmed in production): only rungs that would
        // actually run probe the injector, so floor-rejected rungs don't
        // consume a draw.
        if gnr_num::fault::should_fail("newton") {
            if first_err.is_none() {
                first_err = Some(SpiceError::NewtonDiverged {
                    analysis: "transient step",
                    iterations: 0,
                    residual: f64::INFINITY,
                });
            }
            return AttemptReport::failed("injected fault: transient attempt suppressed");
        }
        match transient_nominal(circuit, &attempt_opts, limits) {
            Ok(result) => {
                let steps = result.len();
                AttemptReport::converged(result, steps, f64::NAN)
            }
            Err(err) if is_budget_stop(&err) => {
                let msg = err.to_string();
                stop_err = Some(err);
                AttemptReport::failed(msg)
            }
            Err(err) => record_err(err, &mut first_err),
        }
    });
    let halvings = outcome
        .report
        .attempts
        .iter()
        .filter(|a| a.policy.starts_with("dt/"))
        .count();
    if halvings > 0 {
        telemetry::counter_add("transient.dt_halvings", halvings as u64);
    }
    if outcome.report.converged() && outcome.report.policy_used.as_deref() == Some("source-ramp") {
        telemetry::counter_inc("transient.source_ramp_rescues");
    }
    match outcome.value {
        Some(result) => Ok((result, outcome.report)),
        None => Err(stop_err
            .or(first_err)
            .unwrap_or_else(|| SpiceError::config("transient ladder was empty"))),
    }
}

/// Per-branch capacitor current history keyed by `(element index, branch)`
/// where FETs carry two branches (0 = C_GS, 1 = C_GD).
type BranchHistory = HashMap<(usize, u8), f64>;

/// Trapezoidal branch current at the new solution:
/// `i_{n+1} = (2C/dt)·(v_{n+1} − v_n) − i_n`.
fn update_history(
    circuit: &Circuit,
    x: &[f64],
    x_prev: &[f64],
    dt: f64,
    caps: &FrozenCaps,
    hist: &mut BranchHistory,
) {
    let mut branch = |key: (usize, u8), a: NodeId, b: NodeId, c: f64| {
        if c <= 0.0 {
            return;
        }
        let dv = (circuit.voltage(x, a) - circuit.voltage(x, b))
            - (circuit.voltage(x_prev, a) - circuit.voltage(x_prev, b));
        let i_old = hist.get(&key).copied().unwrap_or(0.0);
        hist.insert(key, 2.0 * c / dt * dv - i_old);
    };
    for (idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Capacitor { a, b, farads } => branch((idx, 0), *a, *b, *farads),
            Element::Fet { d, g, s, .. } => {
                if let Some(&(cgs, cgd)) = caps.get(&idx) {
                    branch((idx, 0), *g, *s, cgs);
                    branch((idx, 1), *g, *d, cgd);
                }
            }
            _ => {}
        }
    }
}

/// Per-FET frozen capacitance pair `(C_GS, C_GD)` for one step.
type FrozenCaps = HashMap<usize, (f64, f64)>;

fn freeze_capacitances(circuit: &Circuit, x_prev: &[f64]) -> FrozenCaps {
    let mut caps = HashMap::new();
    for (idx, e) in circuit.elements().iter().enumerate() {
        if let Element::Fet { d, g, s, table } = e {
            let vg = circuit.voltage(x_prev, *g);
            let vd = circuit.voltage(x_prev, *d);
            let vs = circuit.voltage(x_prev, *s);
            let cgs = table.cgs_intrinsic(vg - vs, vd - vs);
            let cgd = table.cgd_intrinsic(vg - vs, vd - vs);
            caps.insert(idx, (cgs, cgd));
        }
    }
    caps
}

#[allow(clippy::too_many_arguments)]
fn stamp_with_caps(
    circuit: &Circuit,
    x: &[f64],
    x_prev: &[f64],
    t: f64,
    dt: f64,
    caps: &FrozenCaps,
    integrator: Integrator,
    hist: &BranchHistory,
    jac: &mut dyn MnaSink,
    res: &mut Vec<f64>,
) {
    // Companion models:
    //   backward Euler: i = (C/dt)·(v − v_prev)
    //   trapezoidal:    i = (2C/dt)·(v − v_prev) − i_prev
    let mut elem_index = 0usize;
    let indices: HashMap<*const Element, usize> = circuit
        .elements()
        .iter()
        .map(|e| {
            let r = (e as *const Element, elem_index);
            elem_index += 1;
            r
        })
        .collect();
    let mut cap_stamp = |e: &Element, x: &[f64], jac: &mut dyn MnaSink, res: &mut Vec<f64>| {
        let stamp_pair = |key: (usize, u8),
                          a: NodeId,
                          b: NodeId,
                          c: f64,
                          jac: &mut dyn MnaSink,
                          res: &mut Vec<f64>| {
            if c <= 0.0 {
                return;
            }
            let v_now = circuit.voltage(x, a) - circuit.voltage(x, b);
            let v_old = circuit.voltage(x_prev, a) - circuit.voltage(x_prev, b);
            let (geq, i) = match integrator {
                Integrator::BackwardEuler => {
                    let geq = c / dt;
                    (geq, geq * (v_now - v_old))
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * c / dt;
                    let i_prev = hist.get(&key).copied().unwrap_or(0.0);
                    (geq, geq * (v_now - v_old) - i_prev)
                }
            };
            if let Some(ia) = circuit.mna_index(a) {
                res[ia] += i;
                jac.add(ia, ia, geq);
                if let Some(ib) = circuit.mna_index(b) {
                    jac.add(ia, ib, -geq);
                }
            }
            if let Some(ib) = circuit.mna_index(b) {
                res[ib] -= i;
                jac.add(ib, ib, geq);
                if let Some(ia) = circuit.mna_index(a) {
                    jac.add(ib, ia, -geq);
                }
            }
        };
        match e {
            Element::Capacitor { a, b, farads } => {
                let idx = indices[&(e as *const Element)];
                stamp_pair((idx, 0), *a, *b, *farads, &mut *jac, res);
            }
            Element::Fet { d, g, s, .. } => {
                let idx = indices[&(e as *const Element)];
                if let Some(&(cgs, cgd)) = caps.get(&idx) {
                    stamp_pair((idx, 0), *g, *s, cgs, &mut *jac, res);
                    stamp_pair((idx, 1), *g, *d, cgd, &mut *jac, res);
                }
            }
            _ => {}
        }
    };
    circuit.stamp(x, t, 1e-9, Some(&mut cap_stamp), jac, res);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;

    fn strict() -> ExecCtx {
        ExecCtx::strict()
    }

    /// RC low-pass step response: v(t) = V (1 - e^{-t/RC}).
    #[test]
    fn rc_step_response() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let r = 1e3;
        let cap = 1e-12;
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-12,
                rise: 1e-13,
                fall: 1e-13,
                width: 1.0,
                period: 2.0,
            },
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: r,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: cap,
        });
        let tau = r * cap; // 1 ns
        let opts = TransientOptions::new(5.0 * tau, tau / 200.0);
        let (result, _) = transient(&strict(), &c, &opts).unwrap();
        let v = result.voltage(&c, out);
        let times = result.times();
        // Compare against the analytic charging curve at a few points.
        for &frac in &[1.0, 2.0, 3.0] {
            let t_target = 1e-12 + frac * tau;
            let idx = times.iter().position(|&t| t >= t_target).unwrap();
            let expect = 1.0 - (-frac).exp();
            assert!(
                (v[idx] - expect).abs() < 0.02,
                "t={frac}tau: {} vs {expect}",
                v[idx]
            );
        }
        // Fully charged at the end.
        assert!((v.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn capacitor_holds_initial_voltage_without_drive() {
        let mut c = Circuit::new();
        let out = c.node("out");
        c.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 1e12,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-12,
        });
        let mut opts = TransientOptions::new(1e-9, 1e-11);
        opts.skip_dc = true;
        opts.initial_voltages = vec![(out, 0.7)];
        let (result, _) = transient(&strict(), &c, &opts).unwrap();
        let v = result.voltage(&c, out);
        assert!((v[0] - 0.7).abs() < 1e-12);
        // Discharge through 1 TOhm over 1 ns is negligible.
        assert!((v.last().unwrap() - 0.7).abs() < 1e-3);
    }

    /// Trapezoidal integration is second-order on smooth waveforms:
    /// halving dt must cut the error ~4x, versus ~2x for backward Euler.
    /// The input is a resolved linear ramp (no discontinuity), for which
    /// the RC response has the closed form
    /// `v(t) = (t − τ(1 − e^{−t/τ})) / T_r`.
    #[test]
    fn trapezoidal_is_second_order() {
        let tau = 1e-9;
        let t_ramp = 2.0 * tau;
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(Element::VSource {
                p: vin,
                n: NodeId::GROUND,
                wave: Waveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.0,
                    rise: t_ramp,
                    fall: t_ramp,
                    width: 10.0 * tau,
                    period: 100.0 * tau,
                },
            });
            c.add(Element::Resistor {
                a: vin,
                b: out,
                ohms: 1e3,
            });
            c.add(Element::Capacitor {
                a: out,
                b: NodeId::GROUND,
                farads: 1e-12,
            });
            (c, out)
        };
        let error_at = |integrator: Integrator, dt: f64| -> f64 {
            let (c, out) = build();
            let mut opts = TransientOptions::new(t_ramp, dt);
            opts.integrator = integrator;
            opts.skip_dc = true;
            let (r, _) = transient(&strict(), &c, &opts).expect("simulates");
            let v = r.voltage(&c, out);
            let times = r.times();
            v.iter()
                .zip(times)
                .map(|(vi, &t)| {
                    let exact = (t - tau * (1.0 - (-t / tau).exp())) / t_ramp;
                    (vi - exact).abs()
                })
                .fold(0.0f64, f64::max)
        };
        let be_coarse = error_at(Integrator::BackwardEuler, tau / 20.0);
        let be_fine = error_at(Integrator::BackwardEuler, tau / 40.0);
        let tr_coarse = error_at(Integrator::Trapezoidal, tau / 20.0);
        let tr_fine = error_at(Integrator::Trapezoidal, tau / 40.0);
        let be_ratio = be_coarse / be_fine;
        let tr_ratio = tr_coarse / tr_fine;
        assert!(
            (1.5..3.0).contains(&be_ratio),
            "backward euler order ~1: ratio {be_ratio:.2}"
        );
        assert!(tr_ratio > 3.2, "trapezoidal order ~2: ratio {tr_ratio:.2}");
        // And trapezoidal is more accurate outright at equal step.
        assert!(tr_coarse < be_coarse, "{tr_coarse:.3e} vs {be_coarse:.3e}");
    }

    #[test]
    fn integrators_agree_on_smooth_response() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Pulse {
                low: 0.0,
                high: 0.5,
                delay: 1e-10,
                rise: 2e-10,
                fall: 2e-10,
                width: 5e-10,
                period: 2e-9,
            },
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 2e3,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 0.5e-12,
        });
        let opts_be = TransientOptions::new(2e-9, 2e-12);
        let opts_tr = TransientOptions::new(2e-9, 2e-12).trapezoidal();
        let (r_be, _) = transient(&strict(), &c, &opts_be).expect("be");
        let (r_tr, _) = transient(&strict(), &c, &opts_tr).expect("tr");
        let v_be = r_be.voltage(&c, out);
        let v_tr = r_tr.voltage(&c, out);
        for (a, b) in v_be.iter().zip(&v_tr) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn recovery_nominal_run_matches_plain_transient() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 1e3,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-12,
        });
        let opts = TransientOptions::new(2e-9, 2e-11);
        let (plain, strict_report) = transient(&strict(), &c, &opts).unwrap();
        assert!(strict_report.nominal());
        let (laddered, report) = transient(&ExecCtx::serial(), &c, &opts).unwrap();
        assert!(report.nominal());
        assert_eq!(report.policy_used.as_deref(), Some("nominal"));
        assert_eq!(plain.times(), laddered.times());
        assert_eq!(plain.final_solution(), laddered.final_solution());
    }

    #[test]
    fn transient_rejects_bad_options() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: 1.0,
        });
        c.add(Element::VSource {
            p: a,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        assert!(transient(&strict(), &c, &TransientOptions::new(0.0, 1e-12)).is_err());
        assert!(transient(&strict(), &c, &TransientOptions::new(1e-9, 0.0)).is_err());
        // The ladder cannot rescue a configuration error either.
        assert!(transient(&ExecCtx::serial(), &c, &TransientOptions::new(1e-9, 0.0)).is_err());
    }

    #[test]
    fn transient_stops_on_exhausted_budget() {
        use gnr_num::budget::Budget;
        use gnr_num::NumError;
        let mut c = Circuit::new();
        let out = c.node("out");
        c.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-12,
        });
        let mut opts = TransientOptions::new(1e-9, 1e-11);
        opts.skip_dc = true;
        opts.initial_voltages = vec![(out, 1.0)];
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(2));
        let ctx = ExecCtx::strict().with_limits(limits);
        let err = transient(&ctx, &c, &opts).unwrap_err();
        match err {
            SpiceError::Linear(NumError::BudgetExhausted { site }) => {
                assert_eq!(site, "transient.step");
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        // The ladder must not burn dt-halving rungs on an exhausted budget
        // either: same typed error, no rescue.
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(2));
        let ctx = ExecCtx::serial().with_limits(limits);
        let err = transient(&ctx, &c, &opts).unwrap_err();
        assert!(
            matches!(err, SpiceError::Linear(NumError::BudgetExhausted { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn non_finite_transient_residual_fails_fast() {
        use gnr_num::NumError;
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Dc(f64::NAN),
        });
        c.add(Element::Resistor {
            a: vin,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let mut opts = TransientOptions::new(1e-10, 1e-11);
        opts.skip_dc = true;
        let err = transient(&strict(), &c, &opts).unwrap_err();
        assert!(
            matches!(err, SpiceError::Linear(NumError::NonFinite { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn rc_discharge_from_initial_condition() {
        let mut c = Circuit::new();
        let out = c.node("out");
        let r = 1e3;
        let cap = 1e-12;
        c.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: r,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: cap,
        });
        let tau = r * cap;
        let mut opts = TransientOptions::new(3.0 * tau, tau / 100.0);
        opts.skip_dc = true;
        opts.initial_voltages = vec![(out, 1.0)];
        let (result, _) = transient(&strict(), &c, &opts).unwrap();
        let v = result.voltage(&c, out);
        let times = result.times();
        let idx = times.iter().position(|&t| t >= tau).unwrap();
        assert!(
            (v[idx] - (-1.0f64).exp()).abs() < 0.02,
            "v(tau) = {}",
            v[idx]
        );
    }
}
