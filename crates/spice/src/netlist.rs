//! SPICE-deck front end: parse, flatten, and elaborate to [`Circuit`].
//!
//! The grammar is the practical core of SPICE: element cards (`r`, `c`,
//! `v`, `i`, `m`, `x`), `.model` cards, `.subckt`/`.ends` definitions with
//! full flattening, `+` line continuations, `*` comment lines and `;`/`$`
//! inline comments, scale suffixes (`f p n u m k meg g t`), and the
//! `.op`/`.dc`/`.tran`/`.ac` analysis cards. Two house extensions keep
//! parsed circuits bit-identical to hand-built ones:
//!
//! * `.nodes a b c …` pre-interns nodes in the listed order, pinning the
//!   MNA row order (and therefore the exact floating-point solve) to the
//!   builder's interning order;
//! * `.model <name> extern` declares a model resolved purely through
//!   [`ModelBindings`] — the deck names the device, Rust supplies the
//!   [`DeviceTable`] handle (e.g. from the content-addressed store).
//!
//! [`emit_deck`] is the inverse: it serialises any [`Circuit`] to deck
//! text using shortest-round-trip float formatting, so
//! `parse(emit(c))` elaborates to a circuit whose solve is bit-identical
//! to `c`'s. The conformance suite pins every builder circuit this way.
//!
//! Parsing never panics on malformed input: every failure is a typed
//! [`ParseError`] carrying the 1-based line and column of the offending
//! token.

use crate::circuit::{Circuit, Element, NodeId, Waveform};
use crate::error::SpiceError;
use gnr_device::table::TableGrid;
use gnr_device::{DeviceTable, Polarity};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Maximum `.subckt` expansion depth before the parser declares a cycle.
const MAX_SUBCKT_DEPTH: usize = 32;

/// What went wrong while parsing or elaborating a deck.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum ParseErrorKind {
    /// Malformed card syntax (wrong arity, missing token, stray token).
    Syntax,
    /// A numeric field failed to parse (bad digits or unknown suffix).
    BadNumber,
    /// First token of a card does not start a known element or directive.
    UnknownElement,
    /// A `.`-directive the parser does not understand.
    UnknownDirective,
    /// `.subckt` without a matching `.ends` before end of deck.
    UnclosedSubckt,
    /// `x` instance referencing an undefined subcircuit.
    UnknownSubckt,
    /// Two `.subckt` definitions with the same name.
    DuplicateSubckt,
    /// Subcircuit expansion exceeded the nesting limit (a cycle).
    RecursiveSubckt,
    /// `.alias` redefining a name that is already aliased.
    DuplicateAlias,
    /// FET instance referencing a model with no card and no binding.
    UnknownModel,
    /// Two `.model` cards with the same name.
    DuplicateModel,
    /// A `.model` card whose parameters cannot build a table.
    BadModel,
}

/// Typed deck parse/elaboration failure with source position.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based line in the deck text.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Failure category (stable for tests; see [`ParseErrorKind`]).
    pub kind: ParseErrorKind,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, col {}: {} ({:?})",
            self.line, self.col, self.detail, self.kind
        )
    }
}

impl Error for ParseError {}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
struct Tok {
    text: String,
    line: usize,
    col: usize,
}

impl Tok {
    fn err(&self, kind: ParseErrorKind, detail: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            kind,
            detail: detail.into(),
        }
    }
}

/// A parsed element after subcircuit flattening; nodes are still names.
#[derive(Clone, Debug)]
struct ElemStmt {
    name: String,
    kind: ElemKind,
    line: usize,
    col: usize,
}

#[derive(Clone, Debug)]
enum ElemKind {
    Resistor {
        a: String,
        b: String,
        ohms: f64,
    },
    Capacitor {
        a: String,
        b: String,
        farads: f64,
    },
    VSource {
        p: String,
        n: String,
        wave: Waveform,
        ac_mag: Option<f64>,
    },
    ISource {
        p: String,
        n: String,
        wave: Waveform,
    },
    Fet {
        d: String,
        g: String,
        s: String,
        model: String,
    },
}

/// An unexpanded `x` instance.
#[derive(Clone, Debug)]
struct Inst {
    name: String,
    nodes: Vec<String>,
    subckt: String,
    line: usize,
    col: usize,
}

#[derive(Clone, Debug)]
enum BodyItem {
    Elem(ElemStmt),
    Inst(Inst),
}

#[derive(Clone, Debug)]
struct Subckt {
    ports: Vec<String>,
    body: Vec<BodyItem>,
}

/// A `.model` card. Parameters are kept as raw strings; numeric access
/// goes through [`ModelCard::param_f64`] so suffix errors carry the card's
/// position.
#[derive(Clone, Debug)]
pub struct ModelCard {
    /// Model name (lower-cased).
    pub name: String,
    /// Model kind: `surrogate`, `gnrfet`, or `extern`.
    pub kind: String,
    /// Raw `key=value` parameters in card order.
    pub params: Vec<(String, String)>,
    /// 1-based line of the card.
    pub line: usize,
}

impl ModelCard {
    /// Raw string value of a parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Numeric parameter with SPICE suffixes, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseErrorKind::BadNumber`] at the card's line when the
    /// value does not parse.
    pub fn param_f64(&self, key: &str, default: f64) -> Result<f64, ParseError> {
        match self.param(key) {
            None => Ok(default),
            Some(raw) => parse_spice_number(raw).map_err(|detail| ParseError {
                line: self.line,
                col: 1,
                kind: ParseErrorKind::BadNumber,
                detail: format!("model '{}' param '{key}': {detail}", self.name),
            }),
        }
    }
}

/// A parsed analysis card.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalysisCard {
    /// `.op` — DC operating point only.
    Op,
    /// `.dc <vsource> <start> <stop> <step>` — DC transfer sweep.
    Dc {
        /// Name of the swept voltage source.
        source: String,
        /// Sweep start \[V\].
        start: f64,
        /// Sweep stop \[V\].
        stop: f64,
        /// Sweep increment \[V\] (must be > 0).
        step: f64,
    },
    /// `.tran <dt> <tstop>` — transient analysis.
    Tran {
        /// Time step \[s\].
        dt: f64,
        /// Stop time \[s\].
        t_stop: f64,
    },
    /// `.ac dec <points/decade> <fstart> <fstop>` — small-signal sweep.
    Ac {
        /// Frequency points per decade.
        points_per_decade: usize,
        /// Start frequency \[Hz\].
        f_start: f64,
        /// Stop frequency \[Hz\].
        f_stop: f64,
    },
}

/// A fully parsed (and flattened) deck, ready to elaborate.
#[derive(Clone, Debug)]
pub struct Deck {
    /// Title line (first line of the deck, verbatim).
    pub title: String,
    /// Analysis cards in deck order.
    pub analyses: Vec<AnalysisCard>,
    elements: Vec<ElemStmt>,
    models: Vec<ModelCard>,
    node_order: Vec<String>,
    aliases: HashMap<String, String>,
}

impl Deck {
    /// All `.model` cards in deck order.
    pub fn models(&self) -> &[ModelCard] {
        &self.models
    }

    /// Looks up a `.model` card by (lower-cased) name.
    pub fn model(&self, name: &str) -> Option<&ModelCard> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Number of flattened element cards.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Resolves a node name through the alias map.
    fn resolve_alias<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        for _ in 0..MAX_SUBCKT_DEPTH {
            match self.aliases.get(cur) {
                Some(next) => cur = next,
                None => return cur,
            }
        }
        cur
    }

    /// Elaborates the deck into a [`Circuit`].
    ///
    /// Model resolution order for each FET instance: an explicit entry in
    /// `bindings`, else an auto-built table from a `surrogate` model card,
    /// else [`ParseErrorKind::UnknownModel`]. Tables built from the same
    /// card are shared (one `Arc` per model name).
    ///
    /// # Errors
    ///
    /// Returns a positioned [`ParseError`] for unknown models or
    /// un-buildable model cards.
    pub fn elaborate(&self, bindings: &ModelBindings) -> Result<ElaboratedDeck, ParseError> {
        let mut circuit = Circuit::new();
        for name in &self.node_order {
            circuit.node(self.resolve_alias(name));
        }
        let mut tables: HashMap<String, Arc<DeviceTable>> = HashMap::new();
        let mut sources = Vec::new();
        let mut ac_source = None;
        for e in &self.elements {
            match &e.kind {
                ElemKind::Resistor { a, b, ohms } => {
                    let a = circuit.node(self.resolve_alias(a));
                    let b = circuit.node(self.resolve_alias(b));
                    circuit.add(Element::Resistor { a, b, ohms: *ohms });
                }
                ElemKind::Capacitor { a, b, farads } => {
                    let a = circuit.node(self.resolve_alias(a));
                    let b = circuit.node(self.resolve_alias(b));
                    circuit.add(Element::Capacitor {
                        a,
                        b,
                        farads: *farads,
                    });
                }
                ElemKind::VSource { p, n, wave, ac_mag } => {
                    let p = circuit.node(self.resolve_alias(p));
                    let n = circuit.node(self.resolve_alias(n));
                    if ac_mag.is_some() && ac_source.is_none() {
                        ac_source = Some(sources.len());
                    }
                    sources.push(e.name.clone());
                    circuit.add(Element::VSource {
                        p,
                        n,
                        wave: wave.clone(),
                    });
                }
                ElemKind::ISource { p, n, wave } => {
                    let p = circuit.node(self.resolve_alias(p));
                    let n = circuit.node(self.resolve_alias(n));
                    circuit.add(Element::ISource {
                        p,
                        n,
                        wave: wave.clone(),
                    });
                }
                ElemKind::Fet { d, g, s, model } => {
                    let table = match tables.get(model) {
                        Some(t) => t.clone(),
                        None => {
                            let t = self.resolve_model(model, bindings, e)?;
                            tables.insert(model.clone(), t.clone());
                            t
                        }
                    };
                    let d = circuit.node(self.resolve_alias(d));
                    let g = circuit.node(self.resolve_alias(g));
                    let s = circuit.node(self.resolve_alias(s));
                    circuit.add(Element::Fet { d, g, s, table });
                }
            }
        }
        Ok(ElaboratedDeck {
            title: self.title.clone(),
            circuit,
            analyses: self.analyses.clone(),
            sources,
            ac_source,
        })
    }

    fn resolve_model(
        &self,
        model: &str,
        bindings: &ModelBindings,
        at: &ElemStmt,
    ) -> Result<Arc<DeviceTable>, ParseError> {
        if let Some(t) = bindings.get(model) {
            return Ok(t);
        }
        match self.model(model) {
            Some(card) if card.kind == "surrogate" => build_surrogate_table(card),
            Some(card) => Err(ParseError {
                line: at.line,
                col: at.col,
                kind: ParseErrorKind::UnknownModel,
                detail: format!(
                    "model '{model}' has kind '{}' and no table binding (bind it via ModelBindings)",
                    card.kind
                ),
            }),
            None => Err(ParseError {
                line: at.line,
                col: at.col,
                kind: ParseErrorKind::UnknownModel,
                detail: format!("instance '{}' references unknown model '{model}'", at.name),
            }),
        }
    }
}

/// Builds a square-law surrogate [`DeviceTable`] from a
/// `.model <name> surrogate …` card — the cheap, fully deterministic
/// device used by the deck zoo and the CLI's quick mode.
///
/// Parameters (all optional): `polarity` (`n`/`p`), `vth` \[V\], `beta`
/// \[A/V²\], `vdsat` \[V\], `lambda` \[1/V\] (channel-length modulation —
/// a finite saturation `g_ds` keeps per-stage gain bounded so cascaded
/// logic decks converge under damped Newton), `alpha` \[V\] (softplus
/// overdrive width — smooths the square-law turn-on kink), `gleak` \[S\],
/// `cg` \[F/V\], `rs`/`rd` \[Ω\] (folded series resistance), grid bounds
/// `vgs0 vgs1 vds0 vds1` and `points`.
fn build_surrogate_table(card: &ModelCard) -> Result<Arc<DeviceTable>, ParseError> {
    let vth = card.param_f64("vth", 0.2)?;
    let beta = card.param_f64("beta", 4e-5)?;
    let vdsat = card.param_f64("vdsat", 0.08)?;
    let lambda = card.param_f64("lambda", 0.15)?;
    let alpha = card.param_f64("alpha", 0.04)?;
    let gleak = card.param_f64("gleak", 1e-9)?;
    let cg = card.param_f64("cg", 2e-16)?;
    let rs = card.param_f64("rs", 0.0)?;
    let rd = card.param_f64("rd", 0.0)?;
    let grid = TableGrid {
        vgs: (card.param_f64("vgs0", -0.3)?, card.param_f64("vgs1", 0.9)?),
        vds: (card.param_f64("vds0", 0.0)?, card.param_f64("vds1", 0.9)?),
        points: card.param_f64("points", 9.0)? as usize,
    };
    let bad_model = |detail: String| ParseError {
        line: card.line,
        col: 1,
        kind: ParseErrorKind::BadModel,
        detail,
    };
    let polarity = match card.param("polarity").unwrap_or("n") {
        "n" => Polarity::NType,
        "p" => Polarity::PType,
        other => {
            return Err(bad_model(format!(
                "model '{}': polarity must be n or p, got '{other}'",
                card.name
            )))
        }
    };
    let mut table = DeviceTable::from_samples(
        grid,
        Polarity::NType,
        |vg, vd| {
            // Softplus overdrive: smooth at vg = vth, asymptotically the
            // hard square-law far from it. The (1 + lambda*vd) factor keeps
            // saturation g_ds finite, bounding VTC gain per logic stage.
            let x = (vg - vth) / alpha;
            let vov = if x > 30.0 {
                vg - vth
            } else {
                alpha * x.exp().ln_1p()
            };
            beta * vov * vov * (vd / vdsat).tanh() * (1.0 + lambda * vd) + gleak * vd
        },
        |vg, _| cg * vg,
    )
    .map_err(|e| bad_model(format!("model '{}': {e}", card.name)))?;
    if rs != 0.0 || rd != 0.0 {
        table = table
            .fold_series_resistance(rs, rd)
            .map_err(|e| bad_model(format!("model '{}': {e}", card.name)))?;
    }
    if polarity == Polarity::PType {
        table = table.mirrored();
    }
    Ok(Arc::new(table))
}

/// Name → [`DeviceTable`] handles supplied by the caller; consulted before
/// any `.model` card during elaboration.
#[derive(Clone, Debug, Default)]
pub struct ModelBindings {
    map: HashMap<String, Arc<DeviceTable>>,
}

impl ModelBindings {
    /// An empty binding set (surrogate cards still auto-resolve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` (case-insensitive) to a table handle.
    pub fn bind(mut self, name: &str, table: Arc<DeviceTable>) -> Self {
        self.map.insert(name.to_lowercase(), table);
        self
    }

    /// Binds `mdl0`, `mdl1`, … to the tables of an [`EmittedDeck`] — the
    /// names [`emit_deck`] assigns in first-use order.
    pub fn from_tables(tables: &[Arc<DeviceTable>]) -> Self {
        let mut b = Self::new();
        for (k, t) in tables.iter().enumerate() {
            b = b.bind(&format!("mdl{k}"), t.clone());
        }
        b
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<Arc<DeviceTable>> {
        self.map.get(name).cloned()
    }
}

/// An elaborated deck: the circuit plus everything needed to drive it.
#[derive(Clone, Debug)]
pub struct ElaboratedDeck {
    /// Deck title.
    pub title: String,
    /// The elaborated circuit (same MNA path as the Rust builders).
    pub circuit: Circuit,
    /// Analysis cards in deck order.
    pub analyses: Vec<AnalysisCard>,
    /// Index of the first `ac`-tagged voltage source, for `.ac` sweeps.
    pub ac_source: Option<usize>,
    sources: Vec<String>,
}

impl ElaboratedDeck {
    /// MNA source index of a named voltage source (`v`-card name).
    pub fn source_index(&self, name: &str) -> Option<usize> {
        let name = name.to_lowercase();
        self.sources.iter().position(|s| *s == name)
    }

    /// Voltage-source names in MNA branch order.
    pub fn source_names(&self) -> &[String] {
        &self.sources
    }

    /// Looks up a node by deck name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.circuit.find_node(&name.to_lowercase())
    }
}

/// Parses SPICE deck text.
///
/// The first line is always the title (SPICE convention). Parsing stops at
/// `.end` or end of input. Subcircuits are flattened here, so the returned
/// [`Deck`] holds a flat element list.
///
/// # Errors
///
/// Returns a positioned [`ParseError`]; this function never panics on
/// malformed input.
pub fn parse_deck(text: &str) -> Result<Deck, ParseError> {
    let (title, stmts) = lex(text)?;
    let mut models: Vec<ModelCard> = Vec::new();
    let mut analyses = Vec::new();
    let mut node_order = Vec::new();
    let mut aliases: HashMap<String, String> = HashMap::new();
    let mut subckts: HashMap<String, Subckt> = HashMap::new();
    let mut top: Vec<BodyItem> = Vec::new();
    // (name, ports, body, defining token) while inside .subckt … .ends.
    let mut open: Option<(String, Vec<String>, Vec<BodyItem>, Tok)> = None;

    for stmt in &stmts {
        let head = &stmt[0];
        let first = head.text.chars().next().unwrap_or(' ');
        if first == '.' {
            match head.text.as_str() {
                ".subckt" => {
                    if open.is_some() {
                        return Err(head.err(
                            ParseErrorKind::Syntax,
                            "nested .subckt definitions are not supported",
                        ));
                    }
                    if stmt.len() < 2 {
                        return Err(head.err(ParseErrorKind::Syntax, ".subckt needs a name"));
                    }
                    let name = stmt[1].text.clone();
                    if subckts.contains_key(&name) {
                        return Err(stmt[1].err(
                            ParseErrorKind::DuplicateSubckt,
                            format!("subcircuit '{name}' is already defined"),
                        ));
                    }
                    let ports = stmt[2..].iter().map(|t| t.text.clone()).collect();
                    open = Some((name, ports, Vec::new(), head.clone()));
                }
                ".ends" => match open.take() {
                    Some((name, ports, body, _)) => {
                        subckts.insert(name, Subckt { ports, body });
                    }
                    None => {
                        return Err(
                            head.err(ParseErrorKind::Syntax, ".ends without an open .subckt")
                        )
                    }
                },
                ".model" => {
                    if stmt.len() < 3 {
                        return Err(
                            head.err(ParseErrorKind::Syntax, ".model needs a name and a kind")
                        );
                    }
                    let name = stmt[1].text.clone();
                    if models.iter().any(|m| m.name == name) {
                        return Err(stmt[1].err(
                            ParseErrorKind::DuplicateModel,
                            format!("model '{name}' is already defined"),
                        ));
                    }
                    models.push(ModelCard {
                        name,
                        kind: stmt[2].text.clone(),
                        params: parse_params(&stmt[3..])?,
                        line: head.line,
                    });
                }
                ".alias" => {
                    if stmt.len() != 3 {
                        return Err(
                            head.err(ParseErrorKind::Syntax, ".alias needs <new> <existing>")
                        );
                    }
                    let new = stmt[1].text.clone();
                    let old = stmt[2].text.clone();
                    if new == old {
                        return Err(
                            stmt[1].err(ParseErrorKind::Syntax, "alias cannot reference itself")
                        );
                    }
                    if aliases.contains_key(&new) {
                        return Err(stmt[1].err(
                            ParseErrorKind::DuplicateAlias,
                            format!("node alias '{new}' is already defined"),
                        ));
                    }
                    aliases.insert(new, old);
                }
                ".nodes" => {
                    for t in &stmt[1..] {
                        node_order.push(t.text.clone());
                    }
                }
                ".op" => analyses.push(AnalysisCard::Op),
                ".dc" => {
                    if stmt.len() != 5 {
                        return Err(head.err(
                            ParseErrorKind::Syntax,
                            ".dc needs <source> <start> <stop> <step>",
                        ));
                    }
                    analyses.push(AnalysisCard::Dc {
                        source: stmt[1].text.clone(),
                        start: number(&stmt[2])?,
                        stop: number(&stmt[3])?,
                        step: number(&stmt[4])?,
                    });
                }
                ".tran" => {
                    if stmt.len() != 3 {
                        return Err(head.err(ParseErrorKind::Syntax, ".tran needs <dt> <tstop>"));
                    }
                    analyses.push(AnalysisCard::Tran {
                        dt: number(&stmt[1])?,
                        t_stop: number(&stmt[2])?,
                    });
                }
                ".ac" => {
                    if stmt.len() != 5 || stmt[1].text != "dec" {
                        return Err(head.err(
                            ParseErrorKind::Syntax,
                            ".ac needs dec <points/decade> <fstart> <fstop>",
                        ));
                    }
                    analyses.push(AnalysisCard::Ac {
                        points_per_decade: number(&stmt[2])? as usize,
                        f_start: number(&stmt[3])?,
                        f_stop: number(&stmt[4])?,
                    });
                }
                other => {
                    return Err(head.err(
                        ParseErrorKind::UnknownDirective,
                        format!("unknown directive '{other}'"),
                    ))
                }
            }
            continue;
        }
        // Element or instance card; goes to the open subckt body or top.
        let item = match first {
            'x' => BodyItem::Inst(parse_instance(stmt)?),
            'r' | 'c' | 'v' | 'i' | 'm' => BodyItem::Elem(parse_element(stmt)?),
            _ => {
                return Err(head.err(
                    ParseErrorKind::UnknownElement,
                    format!("'{}' does not start a known card", head.text),
                ))
            }
        };
        match open.as_mut() {
            Some((_, _, body, _)) => body.push(item),
            None => top.push(item),
        }
    }
    if let Some((name, _, _, tok)) = open {
        return Err(tok.err(
            ParseErrorKind::UnclosedSubckt,
            format!("subcircuit '{name}' has no .ends"),
        ));
    }

    let mut elements = Vec::new();
    flatten(&top, &subckts, "", &HashMap::new(), 0, &mut elements)?;
    Ok(Deck {
        title,
        analyses,
        elements,
        models,
        node_order,
        aliases,
    })
}

/// Lexes deck text into (title, statements); handles comments and `+`
/// continuations. Tokens carry the physical line/column they came from.
fn lex(text: &str) -> Result<(String, Vec<Vec<Tok>>), ParseError> {
    let mut lines = text.lines();
    let title = lines.next().unwrap_or("").trim().to_string();
    let mut stmts: Vec<Vec<Tok>> = Vec::new();
    let mut ended = false;
    for (i, raw) in lines.enumerate() {
        let lineno = i + 2; // 1-based, after the title line
        if ended {
            break;
        }
        let trimmed = raw.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let continuation = trimmed.starts_with('+');
        let toks = tokenize(raw, lineno, continuation);
        if continuation {
            match stmts.last_mut() {
                Some(last) => last.extend(toks),
                None => {
                    return Err(ParseError {
                        line: lineno,
                        col: 1,
                        kind: ParseErrorKind::Syntax,
                        detail: "continuation line with nothing to continue".into(),
                    })
                }
            }
            continue;
        }
        if toks.is_empty() {
            continue;
        }
        if toks[0].text == ".end" {
            ended = true;
            continue;
        }
        stmts.push(toks);
    }
    Ok((title, stmts))
}

/// Tokenizes one physical line: strips inline comments, lower-cases,
/// splits on whitespace and on the single-char tokens `(` `)` `=`.
/// `skip_plus` drops the leading continuation marker.
fn tokenize(raw: &str, line: usize, skip_plus: bool) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let mut cur_col = 0usize;
    let mut plus_skipped = !skip_plus;
    let flush = |cur: &mut String, col: usize, toks: &mut Vec<Tok>| {
        if !cur.is_empty() {
            toks.push(Tok {
                text: std::mem::take(cur),
                line,
                col,
            });
        }
    };
    for (idx, ch) in raw.char_indices() {
        let col = idx + 1;
        if ch == ';' || ch == '$' {
            break;
        }
        if !plus_skipped {
            if ch.is_whitespace() {
                continue;
            }
            if ch == '+' {
                plus_skipped = true;
                continue;
            }
            plus_skipped = true;
        }
        if ch.is_whitespace() {
            flush(&mut cur, cur_col, &mut toks);
        } else if ch == '(' || ch == ')' || ch == '=' {
            flush(&mut cur, cur_col, &mut toks);
            toks.push(Tok {
                text: ch.to_string(),
                line,
                col,
            });
        } else {
            if cur.is_empty() {
                cur_col = col;
            }
            cur.extend(ch.to_lowercase());
        }
    }
    flush(&mut cur, cur_col, &mut toks);
    toks
}

/// Parses `key = value` sequences (used by `.model` cards).
fn parse_params(toks: &[Tok]) -> Result<Vec<(String, String)>, ParseError> {
    let mut params = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let key = &toks[i];
        if key.text == "=" || key.text == "(" || key.text == ")" {
            i += 1;
            continue;
        }
        if i + 2 < toks.len() && toks[i + 1].text == "=" {
            params.push((key.text.clone(), toks[i + 2].text.clone()));
            i += 3;
        } else if i + 1 < toks.len() && toks[i + 1].text == "=" {
            return Err(key.err(
                ParseErrorKind::Syntax,
                format!("parameter '{}' has no value", key.text),
            ));
        } else {
            return Err(key.err(
                ParseErrorKind::Syntax,
                format!("expected 'key = value', got bare '{}'", key.text),
            ));
        }
    }
    Ok(params)
}

/// Parses the numeric value of a token (with suffix support).
fn number(tok: &Tok) -> Result<f64, ParseError> {
    parse_spice_number(&tok.text).map_err(|detail| tok.err(ParseErrorKind::BadNumber, detail))
}

/// SPICE number grammar: float with optional exponent, then an optional
/// scale suffix (`f p n u m k meg g t`), then an optional unit word
/// (`s`, `v`, `a`, `f`, `hz`, `ohm`, `ohms`, `h`). Anything else after the
/// digits is an error — unlike ngspice, which silently ignores trailing
/// letters, so `3k3` or `10x` are caught instead of misread.
fn parse_spice_number(text: &str) -> Result<f64, String> {
    let bytes = text.as_bytes();
    let mut i = 0;
    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
        i += 1;
    }
    let digits_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i == digits_start {
        return Err(format!("'{text}' is not a number"));
    }
    // Exponent, if the 'e' is followed by digits (else it is a suffix
    // letter — there is no 'e' scale, so bare 'e' tails fail below).
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        let exp_digits = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > exp_digits {
            i = j;
        }
    }
    let mantissa: f64 = text[..i]
        .parse()
        .map_err(|_| format!("'{text}' is not a number"))?;
    let tail = &text[i..];
    let (scale, unit) = if let Some(rest) = tail.strip_prefix("meg") {
        (1e6, rest)
    } else {
        match tail.as_bytes().first() {
            Some(b'f') => (1e-15, &tail[1..]),
            Some(b'p') => (1e-12, &tail[1..]),
            Some(b'n') => (1e-9, &tail[1..]),
            Some(b'u') => (1e-6, &tail[1..]),
            Some(b'm') => (1e-3, &tail[1..]),
            Some(b'k') => (1e3, &tail[1..]),
            Some(b'g') => (1e9, &tail[1..]),
            Some(b't') => (1e12, &tail[1..]),
            _ => (1.0, tail),
        }
    };
    const UNITS: &[&str] = &["", "s", "v", "a", "f", "hz", "ohm", "ohms", "h"];
    if !UNITS.contains(&unit) {
        return Err(format!("'{text}' has an invalid suffix '{tail}'"));
    }
    Ok(mantissa * scale)
}

/// Parses an `r`/`c`/`v`/`i`/`m` element card.
fn parse_element(stmt: &[Tok]) -> Result<ElemStmt, ParseError> {
    let head = &stmt[0];
    let name = head.text.clone();
    let arity_err = |want: &str| {
        head.err(
            ParseErrorKind::Syntax,
            format!("'{}' needs {want}", head.text),
        )
    };
    let kind = match name.as_bytes()[0] {
        b'r' => {
            if stmt.len() != 4 {
                return Err(arity_err("<a> <b> <ohms>"));
            }
            ElemKind::Resistor {
                a: stmt[1].text.clone(),
                b: stmt[2].text.clone(),
                ohms: number(&stmt[3])?,
            }
        }
        b'c' => {
            if stmt.len() != 4 {
                return Err(arity_err("<a> <b> <farads>"));
            }
            ElemKind::Capacitor {
                a: stmt[1].text.clone(),
                b: stmt[2].text.clone(),
                farads: number(&stmt[3])?,
            }
        }
        b'v' => {
            if stmt.len() < 3 {
                return Err(arity_err("<p> <n> <value | dc v | pulse(…)>"));
            }
            let (wave, ac_mag) = parse_source_spec(head, &stmt[3..])?;
            ElemKind::VSource {
                p: stmt[1].text.clone(),
                n: stmt[2].text.clone(),
                wave,
                ac_mag,
            }
        }
        b'i' => {
            if stmt.len() < 3 {
                return Err(arity_err("<p> <n> <value | dc v | pulse(…)>"));
            }
            let (wave, _) = parse_source_spec(head, &stmt[3..])?;
            ElemKind::ISource {
                p: stmt[1].text.clone(),
                n: stmt[2].text.clone(),
                wave,
            }
        }
        b'm' => {
            if stmt.len() != 5 {
                return Err(arity_err("<d> <g> <s> <model>"));
            }
            ElemKind::Fet {
                d: stmt[1].text.clone(),
                g: stmt[2].text.clone(),
                s: stmt[3].text.clone(),
                model: stmt[4].text.clone(),
            }
        }
        _ => unreachable!("dispatched on first char"),
    };
    Ok(ElemStmt {
        name,
        kind,
        line: head.line,
        col: head.col,
    })
}

/// Parses a source value spec: `[dc] <v>`, `pulse( … 7 values … )`, and
/// an optional `ac <mag>` tag (voltage sources only; ignored on `i`).
fn parse_source_spec(head: &Tok, toks: &[Tok]) -> Result<(Waveform, Option<f64>), ParseError> {
    let mut wave: Option<Waveform> = None;
    let mut ac_mag = None;
    let mut i = 0;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "dc" => {
                let v = toks
                    .get(i + 1)
                    .ok_or_else(|| toks[i].err(ParseErrorKind::Syntax, "dc needs a value"))?;
                wave = Some(Waveform::Dc(number(v)?));
                i += 2;
            }
            "ac" => {
                let v = toks
                    .get(i + 1)
                    .ok_or_else(|| toks[i].err(ParseErrorKind::Syntax, "ac needs a magnitude"))?;
                ac_mag = Some(number(v)?);
                i += 2;
            }
            "pulse" => {
                let mut vals = Vec::new();
                let mut j = i + 1;
                while j < toks.len() && vals.len() < 7 {
                    let t = &toks[j].text;
                    if t == "(" || t == ")" {
                        j += 1;
                        continue;
                    }
                    vals.push(number(&toks[j])?);
                    j += 1;
                }
                if vals.len() != 7 {
                    return Err(toks[i].err(
                        ParseErrorKind::Syntax,
                        "pulse needs 7 values: v1 v2 delay rise fall width period",
                    ));
                }
                wave = Some(Waveform::Pulse {
                    low: vals[0],
                    high: vals[1],
                    delay: vals[2],
                    rise: vals[3],
                    fall: vals[4],
                    width: vals[5],
                    period: vals[6],
                });
                // Skip the trailing ')' if present.
                if j < toks.len() && toks[j].text == ")" {
                    j += 1;
                }
                i = j;
            }
            _ if wave.is_none() => {
                wave = Some(Waveform::Dc(number(&toks[i])?));
                i += 1;
            }
            other => {
                return Err(toks[i].err(
                    ParseErrorKind::Syntax,
                    format!("unexpected token '{other}' in source '{}'", head.text),
                ))
            }
        }
    }
    Ok((wave.unwrap_or(Waveform::Dc(0.0)), ac_mag))
}

/// Parses an `x` instance card: `x<name> <node>… <subckt>`.
fn parse_instance(stmt: &[Tok]) -> Result<Inst, ParseError> {
    let head = &stmt[0];
    if stmt.len() < 2 {
        return Err(head.err(
            ParseErrorKind::Syntax,
            format!("'{}' needs nodes and a subcircuit name", head.text),
        ));
    }
    let subckt = stmt[stmt.len() - 1].text.clone();
    let nodes = stmt[1..stmt.len() - 1]
        .iter()
        .map(|t| t.text.clone())
        .collect();
    Ok(Inst {
        name: head.text.clone(),
        nodes,
        subckt,
        line: head.line,
        col: head.col,
    })
}

fn is_ground(name: &str) -> bool {
    name == "0" || name == "gnd"
}

/// Recursively expands instances. Internal subcircuit nodes and element
/// names get the `x<inst>.` hierarchical prefix; ports map to the caller's
/// nodes; ground is never remapped.
fn flatten(
    items: &[BodyItem],
    subckts: &HashMap<String, Subckt>,
    prefix: &str,
    port_map: &HashMap<String, String>,
    depth: usize,
    out: &mut Vec<ElemStmt>,
) -> Result<(), ParseError> {
    let map_node = |name: &str| -> String {
        if is_ground(name) {
            "0".to_string()
        } else if let Some(mapped) = port_map.get(name) {
            mapped.clone()
        } else {
            format!("{prefix}{name}")
        }
    };
    for item in items {
        match item {
            BodyItem::Elem(e) => {
                let kind = match &e.kind {
                    ElemKind::Resistor { a, b, ohms } => ElemKind::Resistor {
                        a: map_node(a),
                        b: map_node(b),
                        ohms: *ohms,
                    },
                    ElemKind::Capacitor { a, b, farads } => ElemKind::Capacitor {
                        a: map_node(a),
                        b: map_node(b),
                        farads: *farads,
                    },
                    ElemKind::VSource { p, n, wave, ac_mag } => ElemKind::VSource {
                        p: map_node(p),
                        n: map_node(n),
                        wave: wave.clone(),
                        ac_mag: *ac_mag,
                    },
                    ElemKind::ISource { p, n, wave } => ElemKind::ISource {
                        p: map_node(p),
                        n: map_node(n),
                        wave: wave.clone(),
                    },
                    ElemKind::Fet { d, g, s, model } => ElemKind::Fet {
                        d: map_node(d),
                        g: map_node(g),
                        s: map_node(s),
                        model: model.clone(),
                    },
                };
                out.push(ElemStmt {
                    name: format!("{prefix}{}", e.name),
                    kind,
                    line: e.line,
                    col: e.col,
                });
            }
            BodyItem::Inst(inst) => {
                if depth >= MAX_SUBCKT_DEPTH {
                    return Err(ParseError {
                        line: inst.line,
                        col: inst.col,
                        kind: ParseErrorKind::RecursiveSubckt,
                        detail: format!(
                            "subcircuit expansion deeper than {MAX_SUBCKT_DEPTH} at '{}' (cycle?)",
                            inst.name
                        ),
                    });
                }
                let def = subckts.get(&inst.subckt).ok_or_else(|| ParseError {
                    line: inst.line,
                    col: inst.col,
                    kind: ParseErrorKind::UnknownSubckt,
                    detail: format!("unknown subcircuit '{}'", inst.subckt),
                })?;
                if def.ports.len() != inst.nodes.len() {
                    return Err(ParseError {
                        line: inst.line,
                        col: inst.col,
                        kind: ParseErrorKind::Syntax,
                        detail: format!(
                            "'{}' connects {} nodes but '{}' has {} ports",
                            inst.name,
                            inst.nodes.len(),
                            inst.subckt,
                            def.ports.len()
                        ),
                    });
                }
                let inner_map: HashMap<String, String> = def
                    .ports
                    .iter()
                    .cloned()
                    .zip(inst.nodes.iter().map(|n| map_node(n)))
                    .collect();
                let inner_prefix = format!("{prefix}{}.", inst.name);
                flatten(
                    &def.body,
                    subckts,
                    &inner_prefix,
                    &inner_map,
                    depth + 1,
                    out,
                )?;
            }
        }
    }
    Ok(())
}

/// A deck serialised by [`emit_deck`] plus the device-table handles its
/// `.model mdlK extern` cards must be bound to when reparsing.
#[derive(Clone, Debug)]
pub struct EmittedDeck {
    /// The deck text.
    pub text: String,
    /// Distinct FET tables in first-use order (`mdl0`, `mdl1`, …).
    pub models: Vec<Arc<DeviceTable>>,
}

impl EmittedDeck {
    /// Bindings that map the emitted model names back to their tables.
    pub fn bindings(&self) -> ModelBindings {
        ModelBindings::from_tables(&self.models)
    }
}

/// Serialises a circuit to deck text whose reparse elaborates to a
/// bit-identical circuit: a `.nodes` directive pins the interning order,
/// floats print with shortest round-trip formatting, and FET models are
/// deduplicated by `Arc` identity into `extern` cards.
///
/// # Errors
///
/// Returns [`SpiceError::Config`] for non-finite element values or for
/// anonymous nodes whose synthesised `_<id>` name collides with a real
/// node name.
pub fn emit_deck(circuit: &Circuit, title: &str) -> Result<EmittedDeck, SpiceError> {
    let names = circuit.node_names();
    let node_name = |id: NodeId| -> Result<String, SpiceError> {
        if id == NodeId::GROUND {
            return Ok("0".to_string());
        }
        match names.get(id.0).copied().flatten() {
            Some(n) => Ok(n.to_string()),
            None => {
                let synth = format!("_{}", id.0);
                if circuit.find_node(&synth).is_some() {
                    return Err(SpiceError::config(format!(
                        "anonymous node {} collides with existing node '{synth}'",
                        id.0
                    )));
                }
                Ok(synth)
            }
        }
    };
    let num = |v: f64| -> Result<String, SpiceError> {
        if !v.is_finite() {
            return Err(SpiceError::config(format!("non-finite value {v} in deck")));
        }
        Ok(format!("{v:?}"))
    };
    let wave_str = |w: &Waveform| -> Result<String, SpiceError> {
        Ok(match w {
            Waveform::Dc(v) => format!("dc {}", num(*v)?),
            Waveform::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => format!(
                "pulse( {} {} {} {} {} {} {} )",
                num(*low)?,
                num(*high)?,
                num(*delay)?,
                num(*rise)?,
                num(*fall)?,
                num(*width)?,
                num(*period)?
            ),
        })
    };

    let mut text = format!("* {title}\n");
    let mut order = String::from(".nodes");
    for id in 1..circuit.node_count() {
        order.push(' ');
        order.push_str(&node_name(NodeId(id))?);
    }
    text.push_str(&order);
    text.push('\n');

    let mut models: Vec<Arc<DeviceTable>> = Vec::new();
    let model_name = |table: &Arc<DeviceTable>, models: &mut Vec<Arc<DeviceTable>>| match models
        .iter()
        .position(|t| Arc::ptr_eq(t, table))
    {
        Some(k) => format!("mdl{k}"),
        None => {
            models.push(table.clone());
            format!("mdl{}", models.len() - 1)
        }
    };
    for (k, e) in circuit.elements().iter().enumerate() {
        let card = match e {
            Element::Resistor { a, b, ohms } => {
                format!("r{k} {} {} {}", node_name(*a)?, node_name(*b)?, num(*ohms)?)
            }
            Element::Capacitor { a, b, farads } => {
                format!(
                    "c{k} {} {} {}",
                    node_name(*a)?,
                    node_name(*b)?,
                    num(*farads)?
                )
            }
            Element::VSource { p, n, wave } => {
                format!(
                    "v{k} {} {} {}",
                    node_name(*p)?,
                    node_name(*n)?,
                    wave_str(wave)?
                )
            }
            Element::ISource { p, n, wave } => {
                format!(
                    "i{k} {} {} {}",
                    node_name(*p)?,
                    node_name(*n)?,
                    wave_str(wave)?
                )
            }
            Element::Fet { d, g, s, table } => {
                let model = model_name(table, &mut models);
                format!(
                    "m{k} {} {} {} {model}",
                    node_name(*d)?,
                    node_name(*g)?,
                    node_name(*s)?
                )
            }
        };
        text.push_str(&card);
        text.push('\n');
    }
    for k in 0..models.len() {
        text.push_str(&format!(".model mdl{k} extern\n"));
    }
    text.push_str(".end\n");
    Ok(EmittedDeck { text, models })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Deck {
        parse_deck(text).expect("deck parses")
    }

    /// Scaled values are `mantissa * scale` products, which can sit one
    /// ulp away from the equivalent literal — pin to within 1e-15 rel.
    fn close(text: &str, expect: f64) {
        let got = parse_spice_number(text).expect(text);
        assert!(
            (got / expect - 1.0).abs() < 1e-15,
            "{text}: got {got:e}, expected {expect:e}"
        );
    }

    #[test]
    fn suffix_goldens() {
        close("10u", 1e-5);
        close("100n", 1e-7);
        close("2meg", 2e6);
        close("1.5k", 1500.0);
        close("3p", 3e-12);
        close("4f", 4e-15);
        close("0.5m", 5e-4);
        close("2g", 2e9);
        close("1t", 1e12);
        // Units after the scale (or alone) are fine.
        close("10nf", 1e-8);
        close("1kohm", 1e3);
        close("5v", 5.0);
        close("1meghz", 1e6);
        // Exponents are not suffixes.
        assert_eq!(parse_spice_number("2e-18").unwrap(), 2e-18);
        assert_eq!(parse_spice_number("-0.35").unwrap(), -0.35);
        // Rejections.
        assert!(parse_spice_number("3k3").is_err());
        assert!(parse_spice_number("10x").is_err());
        assert!(parse_spice_number("q").is_err());
        assert!(parse_spice_number("1e").is_err());
    }

    #[test]
    fn parses_rc_divider_with_continuation_and_comments() {
        let deck = parse(
            "rc divider\n\
             * a comment line\n\
             v1 in 0 dc 1.0 ; inline comment\n\
             r1 in mid 2K\n\
             + \n\
             r2 mid 0 1k $ trailing\n\
             c1 mid 0 1u\n\
             .op\n\
             .end\n\
             r_ignored after end 1k\n",
        );
        assert_eq!(deck.title, "rc divider");
        assert_eq!(deck.element_count(), 4);
        assert_eq!(deck.analyses, vec![AnalysisCard::Op]);
        let elab = deck.elaborate(&ModelBindings::new()).expect("elaborates");
        assert_eq!(elab.circuit.node_count(), 3);
        assert_eq!(elab.source_index("v1"), Some(0));
    }

    #[test]
    fn subckt_flattening_prefixes_internal_nodes() {
        let deck = parse(
            "flatten test\n\
             .subckt divider top bot\n\
             r1 top mid 1k\n\
             r2 mid bot 1k\n\
             .ends\n\
             v1 in 0 1.0\n\
             x1 in 0 divider\n\
             x2 in 0 divider\n",
        );
        let elab = deck.elaborate(&ModelBindings::new()).expect("elaborates");
        assert!(elab.node("x1.mid").is_some());
        assert!(elab.node("x2.mid").is_some());
        assert_eq!(deck.element_count(), 5);
    }

    #[test]
    fn malformed_decks_are_typed_errors() {
        // Unclosed subckt — error points at the .subckt line.
        let e = parse_deck("t\n.subckt foo a b\nr1 a b 1k\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnclosedSubckt);
        assert_eq!(e.line, 2);
        // Duplicate alias.
        let e = parse_deck("t\n.alias s q\n.alias s qb\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateAlias);
        assert_eq!(e.line, 3);
        // Bad number suffix with column.
        let e = parse_deck("t\nr1 a 0 3k3\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::BadNumber);
        assert_eq!((e.line, e.col), (2, 8));
        // Unknown model surfaces at elaboration with the instance line.
        let deck = parse("t\nv1 d 0 1.0\nm1 d g 0 nosuch\nr1 g 0 1k\n");
        let e = deck.elaborate(&ModelBindings::new()).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownModel);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn alias_merges_nodes() {
        let deck = parse("t\n.alias vddint vdd\nv1 vdd 0 1.0\nr1 vddint 0 1k\n");
        let elab = deck.elaborate(&ModelBindings::new()).expect("elaborates");
        assert_eq!(elab.circuit.node_count(), 2); // ground + vdd only
    }

    #[test]
    fn surrogate_model_elaborates_and_is_shared() {
        let deck = parse(
            "surrogate\n\
             .model nmos surrogate vth=0.2 beta=4e-5\n\
             vdd vdd 0 0.8\n\
             vin in 0 0.8\n\
             m1 out in 0 nmos\n\
             m2 out2 in 0 nmos\n\
             r1 vdd out 100k\n\
             r2 vdd out2 100k\n",
        );
        let elab = deck.elaborate(&ModelBindings::new()).expect("elaborates");
        let tables: Vec<_> = elab
            .circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::Fet { table, .. } => Some(table.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(tables.len(), 2);
        assert!(Arc::ptr_eq(&tables[0], &tables[1]));
        assert!(tables[0].current(0.8, 0.4) > 1e-6);
    }

    #[test]
    fn pulse_and_ac_specs() {
        let deck = parse(
            "pulses\n\
             vin in 0 pulse( 0 0.8 1n 10p 10p 400p 1n ) ac 1.0\n\
             r1 in 0 1k\n\
             .tran 10p 2n\n\
             .ac dec 10 1meg 1g\n",
        );
        let elab = deck.elaborate(&ModelBindings::new()).expect("elaborates");
        assert_eq!(elab.ac_source, Some(0));
        match &elab.circuit.elements()[0] {
            Element::VSource {
                wave: Waveform::Pulse { high, period, .. },
                ..
            } => {
                assert_eq!(*high, 0.8);
                assert_eq!(*period, 1e-9);
            }
            other => panic!("expected pulse source, got {other:?}"),
        }
        assert_eq!(
            deck.analyses,
            vec![
                AnalysisCard::Tran {
                    dt: 1e-11,
                    t_stop: 2e-9
                },
                AnalysisCard::Ac {
                    points_per_decade: 10,
                    f_start: 1e6,
                    f_stop: 1e9
                }
            ]
        );
    }

    #[test]
    fn emit_roundtrip_is_bit_identical() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Pulse {
                low: 0.0,
                high: 0.4,
                delay: 1e-10,
                rise: 2e-11,
                fall: 2e-11,
                width: 4e-10,
                period: 1e-9,
            },
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 12_345.678_9,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 3.7e-18,
        });
        c.add(Element::ISource {
            p: out,
            n: NodeId::GROUND,
            wave: Waveform::Dc(1e-9),
        });
        let emitted = emit_deck(&c, "roundtrip").expect("emits");
        let deck = parse_deck(&emitted.text).expect("reparses");
        let elab = deck.elaborate(&emitted.bindings()).expect("elaborates");
        assert_eq!(elab.circuit.node_count(), c.node_count());
        assert_eq!(elab.circuit.elements().len(), c.elements().len());
        for (a, b) in c.elements().iter().zip(elab.circuit.elements()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
