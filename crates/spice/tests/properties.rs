//! Property-based tests of the circuit-simulation invariants, driven by
//! the in-house seeded RNG (deterministic across runs).

use gnr_num::budget::ExecLimits;
use gnr_num::rng::Rng;
use gnr_spice::circuit::{Circuit, Element, NodeId, Waveform};
use gnr_spice::dc::{dc_operating_point, DcOptions};
use gnr_spice::measure::{butterfly_snm, crossing_times};

/// Resistor ladders obey the analytic voltage-divider solution for any
/// positive resistances and source value.
#[test]
fn resistor_ladder_divider() {
    let mut rng = Rng::seed_from_u64(0x5350_4901);
    for _ in 0..32 {
        let v = rng.uniform_in(-5.0, 5.0);
        let r1 = rng.uniform_in(10.0, 1e5);
        let r2 = rng.uniform_in(10.0, 1e5);
        let r3 = rng.uniform_in(10.0, 1e5);
        let mut c = Circuit::new();
        let top = c.node("top");
        let m1 = c.node("m1");
        let m2 = c.node("m2");
        c.add(Element::VSource {
            p: top,
            n: NodeId::GROUND,
            wave: Waveform::Dc(v),
        });
        c.add(Element::Resistor {
            a: top,
            b: m1,
            ohms: r1,
        });
        c.add(Element::Resistor {
            a: m1,
            b: m2,
            ohms: r2,
        });
        c.add(Element::Resistor {
            a: m2,
            b: NodeId::GROUND,
            ohms: r3,
        });
        let x = dc_operating_point(&c, None, DcOptions::default(), &ExecLimits::none())
            .expect("solves");
        let total = r1 + r2 + r3;
        let expect_m1 = v * (r2 + r3) / total;
        let expect_m2 = v * r3 / total;
        assert!((c.voltage(&x, m1) - expect_m1).abs() < 1e-6 * (1.0 + v.abs()));
        assert!((c.voltage(&x, m2) - expect_m2).abs() < 1e-6 * (1.0 + v.abs()));
        // KCL at the source: branch current = -V/R_total.
        let i = c.source_current(&x, 0);
        assert!((i + v / total).abs() < 1e-9 * (1.0 + (v / total).abs()));
    }
}

/// The pulse waveform is periodic and bounded by its levels.
#[test]
fn pulse_waveform_invariants() {
    let mut rng = Rng::seed_from_u64(0x5350_4902);
    for _ in 0..32 {
        let t = rng.uniform_in(0.0, 1e-8);
        let low = rng.uniform_in(-1.0, 0.5);
        let high = rng.uniform_in(0.6, 2.0);
        let w = Waveform::Pulse {
            low,
            high,
            delay: 1e-10,
            rise: 5e-11,
            fall: 5e-11,
            width: 4e-10,
            period: 1e-9,
        };
        let v = w.value(t);
        assert!(v >= low - 1e-12 && v <= high + 1e-12);
        if t > 1e-10 {
            assert!((w.value(t) - w.value(t + 1e-9)).abs() < 1e-9);
        }
    }
}

/// Crossing detection finds exactly the crossings of a synthetic
/// square-ish wave, with interpolated times inside the sample interval.
#[test]
fn crossings_are_bracketed() {
    for edges in 1usize..6 {
        let mut times = Vec::new();
        let mut wave = Vec::new();
        for k in 0..(edges * 10) {
            times.push(k as f64);
            wave.push(if (k / 10) % 2 == 0 { 0.0 } else { 1.0 });
        }
        let rises = crossing_times(&times, &wave, 0.5, true);
        let falls = crossing_times(&times, &wave, 0.5, false);
        assert!(rises.len() + falls.len() <= edges);
        for t in rises.iter().chain(&falls) {
            assert!(*t >= times[0] && *t <= *times.last().unwrap());
        }
    }
}

/// Butterfly SNM is symmetric under swapping identical curves, bounded
/// by VDD/2, and scales with the supply for ideal inverters.
#[test]
fn snm_bounds() {
    let mut rng = Rng::seed_from_u64(0x5350_4903);
    for _ in 0..32 {
        let vth_frac = rng.uniform_in(0.2, 0.8);
        let vdd = rng.uniform_in(0.2, 1.0);
        let vtc: Vec<(f64, f64)> = (0..=200)
            .map(|i| {
                let x = vdd * i as f64 / 200.0;
                (x, if x < vth_frac * vdd { vdd } else { 0.0 })
            })
            .collect();
        let nm = butterfly_snm(&vtc, &vtc, vdd);
        let expect = vdd * vth_frac.min(1.0 - vth_frac);
        assert!(nm.snm() <= vdd / 2.0 + 0.02 * vdd);
        assert!(
            (nm.snm() - expect).abs() < 0.03 * vdd,
            "snm {} vs expected {expect}",
            nm.snm()
        );
    }
}
