//! Error type for the electrostatics solver.

use gnr_num::NumError;
use std::error::Error;
use std::fmt;

/// Errors produced while setting up or solving a Poisson problem.
#[derive(Clone, Debug, PartialEq)]
pub enum PoissonError {
    /// Grid dimensions or spacing invalid.
    BadGrid {
        /// Human-readable description.
        detail: String,
    },
    /// A region or coordinate is outside the grid.
    OutOfBounds {
        /// Human-readable description.
        detail: String,
    },
    /// The problem has no interior unknowns (everything is electrode).
    NoUnknowns,
    /// The linear solve failed.
    Solve(NumError),
}

impl fmt::Display for PoissonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoissonError::BadGrid { detail } => write!(f, "invalid grid: {detail}"),
            PoissonError::OutOfBounds { detail } => write!(f, "out of bounds: {detail}"),
            PoissonError::NoUnknowns => write!(f, "problem has no interior cells to solve for"),
            PoissonError::Solve(e) => write!(f, "poisson solve failed: {e}"),
        }
    }
}

impl Error for PoissonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoissonError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for PoissonError {
    fn from(e: NumError) -> Self {
        PoissonError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PoissonError::NoUnknowns.to_string().contains("interior"));
        let e = PoissonError::BadGrid {
            detail: "nx = 0".into(),
        };
        assert!(e.to_string().contains("nx = 0"));
    }
}
