//! Solved potential fields with sampling helpers.

use crate::grid::Grid3;

/// A solved potential field on a [`Grid3`], in volts.
#[derive(Clone, Debug, PartialEq)]
pub struct PoissonSolution {
    grid: Grid3,
    potential: Vec<f64>,
    iterations: usize,
}

impl PoissonSolution {
    pub(crate) fn new(grid: Grid3, potential: Vec<f64>, iterations: usize) -> Self {
        PoissonSolution {
            grid,
            potential,
            iterations,
        }
    }

    /// The grid the solution lives on.
    pub fn grid(&self) -> Grid3 {
        self.grid
    }

    /// CG iterations used by the solve.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Raw cell-centre potentials (linear indexing); suitable as a warm
    /// start for the next solve.
    pub fn raw(&self) -> &[f64] {
        &self.potential
    }

    /// Potential of cell `(i, j, k)` \[V\].
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn potential_index(&self, i: usize, j: usize, k: usize) -> f64 {
        self.potential[self.grid.index(i, j, k)]
    }

    /// Trilinearly interpolated potential at `(x, y, z)` nm (clamped to the
    /// cell-centre lattice at the boundaries).
    pub fn potential_at(&self, x: f64, y: f64, z: f64) -> f64 {
        let h = self.grid.spacing();
        let fx = (x / h - 0.5).clamp(0.0, (self.grid.nx() - 1) as f64);
        let fy = (y / h - 0.5).clamp(0.0, (self.grid.ny() - 1) as f64);
        let fz = (z / h - 0.5).clamp(0.0, (self.grid.nz() - 1) as f64);
        let (i0, j0, k0) = (
            fx.floor() as usize,
            fy.floor() as usize,
            fz.floor() as usize,
        );
        let (tx, ty, tz) = (fx - i0 as f64, fy - j0 as f64, fz - k0 as f64);
        let mut acc = 0.0;
        for (di, wx) in [(0usize, 1.0 - tx), (1, tx)] {
            for (dj, wy) in [(0usize, 1.0 - ty), (1, ty)] {
                for (dk, wz) in [(0usize, 1.0 - tz), (1, tz)] {
                    let (i, j, k) = (
                        (i0 + di).min(self.grid.nx() - 1),
                        (j0 + dj).min(self.grid.ny() - 1),
                        (k0 + dk).min(self.grid.nz() - 1),
                    );
                    acc += wx * wy * wz * self.potential_index(i, j, k);
                }
            }
        }
        acc
    }

    /// Potential profile along x at fixed `(y, z)` nm, one sample per cell
    /// column — the paper's Fig. 5(a) band-profile diagnostic.
    pub fn profile_x(&self, y: f64, z: f64) -> Vec<f64> {
        let h = self.grid.spacing();
        (0..self.grid.nx())
            .map(|i| self.potential_at((i as f64 + 0.5) * h, y, z))
            .collect()
    }

    /// Maximum absolute potential difference to another solution on the
    /// same grid; the self-consistency convergence measure.
    ///
    /// # Panics
    ///
    /// Panics if grids differ.
    pub fn max_delta(&self, other: &PoissonSolution) -> f64 {
        assert_eq!(self.grid, other.grid, "solutions on different grids");
        self.potential
            .iter()
            .zip(&other.potential)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Region;
    use crate::problem::PoissonProblem;

    fn capacitor() -> PoissonSolution {
        let grid = Grid3::new(11, 3, 3, 0.5).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(10, 10), 1.0);
        p.solve(None, &gnr_num::budget::ExecLimits::none()).unwrap()
    }

    #[test]
    fn trilinear_interpolation_between_cells() {
        let sol = capacitor();
        // Between cell centres the potential is linear.
        let a = sol.potential_at(2.25, 0.75, 0.75);
        let b = sol.potential_index(4, 1, 1);
        assert!((a - b).abs() < 1e-12);
        let mid = sol.potential_at(2.0, 0.75, 0.75);
        let c1 = sol.potential_index(3, 1, 1);
        let c2 = sol.potential_index(4, 1, 1);
        assert!((mid - 0.5 * (c1 + c2)).abs() < 1e-12);
    }

    #[test]
    fn profile_is_monotone_for_capacitor() {
        let sol = capacitor();
        let prof = sol.profile_x(0.75, 0.75);
        assert_eq!(prof.len(), 11);
        assert!(prof.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn max_delta_zero_for_identical() {
        let sol = capacitor();
        assert_eq!(sol.max_delta(&sol.clone()), 0.0);
    }
}
