//! `gnr-poisson` — 3D electrostatics for gated nanoscale devices.
//!
//! The paper solves the 3D Poisson equation `∇·(ε∇φ) = −ρ` self-consistently
//! with NEGF transport because "the electric field varies in all dimensions
//! for the simulated device structure". The double-gate GNRFET stack
//! (gate metal / 1.5 nm SiO₂ / GNR plane / 1.5 nm SiO₂ / gate metal, with
//! metal source/drain blocks) is a rectilinear geometry, so a structured
//! finite-volume discretization represents it exactly; see DESIGN.md for the
//! FEM→FVM substitution note.
//!
//! * [`Grid3`] — uniform structured grid (spacings in nm);
//! * [`PoissonProblem`] — per-cell dielectrics, Dirichlet electrodes,
//!   volume charge, and point charges (cloud-in-cell deposition);
//! * [`PoissonSolution`] — potential field with trilinear sampling and
//!   Gauss-law diagnostics.
//!
//! Units: lengths in nm, potential in volts, charge in elementary charges.
//!
//! # Example
//!
//! ```
//! use gnr_poisson::{Grid3, PoissonProblem, Region};
//!
//! # fn main() -> Result<(), gnr_poisson::PoissonError> {
//! // A 1D parallel-plate capacitor: potential varies linearly.
//! let grid = Grid3::new(11, 3, 3, 0.5)?;
//! let mut p = PoissonProblem::new(grid);
//! p.set_electrode(Region::slab_x(0, 0), 0.0);
//! p.set_electrode(Region::slab_x(10, 10), 1.0);
//! let sol = p.solve(None, &gnr_num::budget::ExecLimits::none())?;
//! let mid = sol.potential_index(5, 1, 1);
//! assert!((mid - 0.5).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod error;
pub mod grid;
pub mod problem;
pub mod solution;

pub use error::PoissonError;
pub use grid::{Grid3, Region};
pub use problem::{CellKind, PoissonProblem};
pub use solution::PoissonSolution;
