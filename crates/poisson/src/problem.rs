//! Poisson problem definition and finite-volume assembly.

use crate::error::PoissonError;
use crate::grid::{Grid3, Region};
use crate::solution::PoissonSolution;
use gnr_num::budget::ExecLimits;
use gnr_num::consts::{EPS_0, Q_E};
use gnr_num::recover::solve_linear_robust;
use gnr_num::solver::IterControl;
use gnr_num::telemetry;
use gnr_num::TripletBuilder;

/// Vacuum permittivity in F/nm (the solver works in nm).
const EPS0_PER_NM: f64 = EPS_0 * 1e-9;

/// The material/boundary role of one grid cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellKind {
    /// A dielectric cell with relative permittivity `eps_r`; its potential
    /// is an unknown.
    Dielectric {
        /// Relative permittivity.
        eps_r: f64,
    },
    /// A metal electrode held at a fixed potential (Dirichlet).
    Electrode {
        /// Electrode potential \[V\].
        potential_v: f64,
    },
}

/// A 3D Poisson problem `∇·(ε∇φ) = −ρ` on a [`Grid3`], with zero-normal-flux
/// (Neumann) outer boundaries except where electrodes impose Dirichlet
/// values.
///
/// Charge is tracked in units of the elementary charge per cell; positive
/// values raise the local potential.
#[derive(Clone, Debug)]
pub struct PoissonProblem {
    grid: Grid3,
    cells: Vec<CellKind>,
    /// Charge per cell in elementary charges.
    charge_q: Vec<f64>,
}

impl PoissonProblem {
    /// Creates a problem with every cell a vacuum dielectric and no charge.
    pub fn new(grid: Grid3) -> Self {
        PoissonProblem {
            grid,
            cells: vec![CellKind::Dielectric { eps_r: 1.0 }; grid.len()],
            charge_q: vec![0.0; grid.len()],
        }
    }

    /// The grid.
    pub fn grid(&self) -> Grid3 {
        self.grid
    }

    /// Sets the relative permittivity of every cell in `region`.
    pub fn set_dielectric(&mut self, region: Region, eps_r: f64) {
        for (i, j, k) in region.cells(&self.grid) {
            self.cells[self.grid.index(i, j, k)] = CellKind::Dielectric { eps_r };
        }
    }

    /// Declares every cell in `region` an electrode at `potential_v`.
    pub fn set_electrode(&mut self, region: Region, potential_v: f64) {
        for (i, j, k) in region.cells(&self.grid) {
            self.cells[self.grid.index(i, j, k)] = CellKind::Electrode { potential_v };
        }
    }

    /// The kind of cell `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn cell(&self, i: usize, j: usize, k: usize) -> CellKind {
        self.cells[self.grid.index(i, j, k)]
    }

    /// Sets the charge (elementary charges) stored in cell `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn set_charge(&mut self, i: usize, j: usize, k: usize, q: f64) {
        let idx = self.grid.index(i, j, k);
        self.charge_q[idx] = q;
    }

    /// Clears all stored charge.
    pub fn clear_charge(&mut self) {
        self.charge_q.fill(0.0);
    }

    /// Deposits a point charge of `q` elementary charges at position
    /// `(x, y, z)` nm using cloud-in-cell (trilinear) weighting, which keeps
    /// the deposited monopole moment exact and avoids grid-alignment
    /// artifacts for the paper's oxide charge impurities.
    pub fn add_point_charge(&mut self, x: f64, y: f64, z: f64, q: f64) {
        let h = self.grid.spacing();
        // Work in cell-centre coordinates: cell (i,j,k) centre at (i+1/2)h.
        let fx = (x / h - 0.5).clamp(0.0, (self.grid.nx() - 1) as f64);
        let fy = (y / h - 0.5).clamp(0.0, (self.grid.ny() - 1) as f64);
        let fz = (z / h - 0.5).clamp(0.0, (self.grid.nz() - 1) as f64);
        let (i0, j0, k0) = (
            fx.floor() as usize,
            fy.floor() as usize,
            fz.floor() as usize,
        );
        let (tx, ty, tz) = (fx - i0 as f64, fy - j0 as f64, fz - k0 as f64);
        for (di, wx) in [(0usize, 1.0 - tx), (1, tx)] {
            for (dj, wy) in [(0usize, 1.0 - ty), (1, ty)] {
                for (dk, wz) in [(0usize, 1.0 - tz), (1, tz)] {
                    let (i, j, k) = (
                        (i0 + di).min(self.grid.nx() - 1),
                        (j0 + dj).min(self.grid.ny() - 1),
                        (k0 + dk).min(self.grid.nz() - 1),
                    );
                    let idx = self.grid.index(i, j, k);
                    self.charge_q[idx] += q * wx * wy * wz;
                }
            }
        }
    }

    /// Total deposited charge in elementary charges.
    pub fn total_charge(&self) -> f64 {
        self.charge_q.iter().sum()
    }

    /// Solves the discretized problem by preconditioned conjugate gradients.
    /// `warm_start` (a previous full-grid potential) accelerates repeated
    /// solves inside self-consistent loops.
    ///
    /// The budget is probed once before assembly and threaded into the
    /// laddered linear solve, so a cancelled or expired run stops between CG
    /// rungs instead of burning the rescue chain. Pass [`ExecLimits::none`]
    /// (or `ctx.limits()` from an unlimited context) for the plain
    /// unbudgeted call.
    ///
    /// # Errors
    ///
    /// Returns [`PoissonError::NoUnknowns`] if every cell is an electrode,
    /// propagates CG failures, and surfaces
    /// [`gnr_num::NumError::BudgetExhausted`] / `Cancelled` (via
    /// [`PoissonError::Solve`]) when `limits` trips.
    pub fn solve(
        &self,
        warm_start: Option<&[f64]>,
        limits: &ExecLimits,
    ) -> Result<PoissonSolution, PoissonError> {
        limits.check("poisson.solve")?;
        let n = self.grid.len();
        // Map interior cells to unknown indices.
        let mut unknown_of = vec![usize::MAX; n];
        let mut interior = Vec::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            if matches!(cell, CellKind::Dielectric { .. }) {
                unknown_of[idx] = interior.len();
                interior.push(idx);
            }
        }
        if interior.is_empty() {
            return Err(PoissonError::NoUnknowns);
        }
        let m = interior.len();
        let mut builder = TripletBuilder::new(m, m);
        let mut rhs = vec![0.0; m];
        let h = self.grid.spacing();
        // Face area / distance = h for an isotropic grid; the coefficient of
        // a face between cells a and b is the harmonic-mean permittivity
        // times h (units: eps_r * nm).
        for (row, &idx) in interior.iter().enumerate() {
            let (i, j, k) = self.grid.coords(idx);
            let eps_c = match self.cells[idx] {
                CellKind::Dielectric { eps_r } => eps_r,
                CellKind::Electrode { .. } => unreachable!(),
            };
            // Charge source: q_cell * q_e / eps0  (V * nm).
            rhs[row] += self.charge_q[idx] * Q_E / EPS0_PER_NM;
            let neighbors = [
                (i > 0).then(|| self.grid.index(i - 1, j, k)),
                (i + 1 < self.grid.nx()).then(|| self.grid.index(i + 1, j, k)),
                (j > 0).then(|| self.grid.index(i, j - 1, k)),
                (j + 1 < self.grid.ny()).then(|| self.grid.index(i, j + 1, k)),
                (k > 0).then(|| self.grid.index(i, j, k - 1)),
                (k + 1 < self.grid.nz()).then(|| self.grid.index(i, j, k + 1)),
            ];
            for nb in neighbors.into_iter().flatten() {
                let coeff = match self.cells[nb] {
                    CellKind::Dielectric { eps_r } => 2.0 * eps_c * eps_r / (eps_c + eps_r) * h,
                    // Electrode face: the Dirichlet value sits half a cell
                    // away; use the interior permittivity over half spacing.
                    CellKind::Electrode { .. } => 2.0 * eps_c * h,
                };
                builder.push(row, row, coeff);
                match self.cells[nb] {
                    CellKind::Dielectric { .. } => {
                        builder.push(row, unknown_of[nb], -coeff);
                    }
                    CellKind::Electrode { potential_v } => {
                        rhs[row] += coeff * potential_v;
                    }
                }
            }
        }
        let a = builder.build();
        let x0: Vec<f64> = match warm_start {
            Some(prev) if prev.len() == n => interior.iter().map(|&idx| prev[idx]).collect(),
            _ => vec![0.0; m],
        };
        let ctrl = IterControl {
            rel_tol: 1e-10,
            abs_tol: 1e-12,
            max_iter: 20 * m + 100,
        };
        // Laddered solve: the first rung is the plain CG call (bit-identical
        // on the fault-free path); BiCGSTAB and, for small grids, dense LU
        // only run if CG errors out.
        let (solved, _report) = solve_linear_robust(&a, &rhs, &x0, ctrl, true, limits);
        let (x, stats) = solved?;
        telemetry::counter_inc("poisson.solves");
        telemetry::counter_add("poisson.iterations", stats.iterations as u64);
        // Scatter back to the full grid, electrodes keeping their values.
        let mut potential = vec![0.0; n];
        for (idx, cell) in self.cells.iter().enumerate() {
            potential[idx] = match *cell {
                CellKind::Electrode { potential_v } => potential_v,
                CellKind::Dielectric { .. } => x[unknown_of[idx]],
            };
        }
        Ok(PoissonSolution::new(self.grid, potential, stats.iterations))
    }

    /// Deprecated alias of [`PoissonProblem::solve`], kept for one release:
    /// the base method now takes the execution limits directly.
    ///
    /// # Errors
    ///
    /// As [`PoissonProblem::solve`].
    #[deprecated(since = "0.1.0", note = "use `solve` — it takes the limits directly")]
    pub fn solve_limited(
        &self,
        warm_start: Option<&[f64]>,
        limits: &ExecLimits,
    ) -> Result<PoissonSolution, PoissonError> {
        self.solve(warm_start, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_linear_profile() {
        let grid = Grid3::new(21, 4, 4, 0.25).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(20, 20), 2.0);
        let sol = p.solve(None, &ExecLimits::none()).unwrap();
        // Linear in x, uniform in y/z. The Dirichlet surfaces sit on the
        // electrode cell faces (x = h and x = 20h), so the profile through
        // the 19 interior cell centres is phi(i) = 2 (i - 1/2) / 19.
        for i in 1..20 {
            let expect = 2.0 * (i as f64 - 0.5) / 19.0;
            for j in 0..4 {
                for k in 0..4 {
                    assert!(
                        (sol.potential_index(i, j, k) - expect).abs() < 1e-7,
                        "phi({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn dielectric_interface_divides_voltage() {
        // Two dielectric slabs in series: eps1 = 1 (left half), eps2 = 3.9
        // (right half). Field ratio E1/E2 = eps2/eps1; voltage divides
        // accordingly.
        let grid = Grid3::new(22, 3, 3, 0.25).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(21, 21), 1.0);
        p.set_dielectric(Region::new((11, 20), (0, 2), (0, 2)), 3.9);
        let sol = p.solve(None, &ExecLimits::none()).unwrap();
        // Drop across left slab: eps2/(eps1+eps2) of total.
        let v_mid = sol.potential_index(11, 1, 1);
        let expect = 3.9 / (1.0 + 3.9);
        assert!((v_mid - expect).abs() < 0.03, "v_mid {v_mid} vs {expect}");
    }

    #[test]
    fn point_charge_raises_local_potential() {
        let grid = Grid3::new(15, 15, 15, 0.4).unwrap();
        let mut p = PoissonProblem::new(grid);
        // Grounded box walls.
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(14, 14), 0.0);
        p.set_electrode(Region::slab_z(0, 0), 0.0);
        p.set_electrode(Region::slab_z(14, 14), 0.0);
        p.add_point_charge(3.0, 3.0, 3.0, 1.0);
        assert!((p.total_charge() - 1.0).abs() < 1e-12);
        let sol = p.solve(None, &ExecLimits::none()).unwrap();
        let near = sol.potential_at(3.0, 3.0, 3.0);
        let far = sol.potential_at(5.5, 5.5, 5.5);
        assert!(near > far && far > 0.0, "near {near} far {far}");
        // Magnitude: the discrete self-potential of a unit charge on the
        // 7-point Laplacian is q/(eps0 h) * G(0) with Watson's lattice
        // Green's function G(0) ~ 0.2527 -> ~11.4 V at h = 0.4 nm; grounded
        // walls pull it down slightly.
        assert!(near > 5.0 && near < 15.0, "near {near}");
    }

    #[test]
    fn negative_charge_lowers_potential() {
        let grid = Grid3::new(11, 11, 11, 0.5).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_z(0, 0), 0.0);
        p.set_electrode(Region::slab_z(10, 10), 0.0);
        p.add_point_charge(2.75, 2.75, 2.75, -1.0);
        let sol = p.solve(None, &ExecLimits::none()).unwrap();
        assert!(sol.potential_at(2.75, 2.75, 2.75) < -0.05);
    }

    #[test]
    fn cloud_in_cell_splits_between_cells() {
        let grid = Grid3::new(4, 4, 4, 1.0).unwrap();
        let mut p = PoissonProblem::new(grid);
        // Exactly between cells 1 and 2 in x (centres at 1.5 and 2.5).
        p.add_point_charge(2.0, 1.5, 1.5, 1.0);
        let idx_a = grid.index(1, 1, 1);
        let idx_b = grid.index(2, 1, 1);
        assert!((p.charge_q[idx_a] - 0.5).abs() < 1e-12);
        assert!((p.charge_q[idx_b] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_electrode_problem_rejected() {
        let grid = Grid3::new(3, 3, 3, 1.0).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::new((0, 2), (0, 2), (0, 2)), 1.0);
        assert!(matches!(
            p.solve(None, &ExecLimits::none()),
            Err(PoissonError::NoUnknowns)
        ));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let grid = Grid3::new(16, 8, 8, 0.5).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(15, 15), 1.0);
        let cold = p.solve(None, &ExecLimits::none()).unwrap();
        let warm = p.solve(Some(cold.raw()), &ExecLimits::none()).unwrap();
        assert!(
            warm.iterations() <= 1,
            "warm start iters {}",
            warm.iterations()
        );
    }

    #[test]
    fn solve_limited_stops_on_exhausted_budget() {
        use gnr_num::budget::Budget;
        use gnr_num::NumError;
        let grid = Grid3::new(11, 3, 3, 0.5).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), 0.0);
        p.set_electrode(Region::slab_x(10, 10), 1.0);
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(0));
        match p.solve(None, &limits) {
            Err(PoissonError::Solve(NumError::BudgetExhausted { site })) => {
                assert_eq!(site, "poisson.solve");
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        // Unlimited solve_limited matches the plain path bit-for-bit.
        let plain = p.solve(None, &ExecLimits::none()).unwrap();
        #[allow(deprecated)]
        let limited = p.solve_limited(None, &ExecLimits::none()).unwrap();
        assert_eq!(plain.raw(), limited.raw());
    }

    #[test]
    fn neumann_walls_leave_uniform_field_untouched() {
        // With Neumann side walls, a 1D capacitor stays exactly 1D even in a
        // narrow channel (no spurious edge effects).
        let grid = Grid3::new(9, 2, 2, 0.5).unwrap();
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), -0.3);
        p.set_electrode(Region::slab_x(8, 8), 0.7);
        let sol = p.solve(None, &ExecLimits::none()).unwrap();
        for i in 0..9 {
            let a = sol.potential_index(i, 0, 0);
            let b = sol.potential_index(i, 1, 1);
            assert!((a - b).abs() < 1e-9);
        }
    }
}
