//! Structured 3D grid and axis-aligned regions.

use crate::error::PoissonError;

/// A uniform structured grid of `nx × ny × nz` cells with isotropic spacing
/// `h` (nm). Cell `(i, j, k)` is centred at `((i+½)h, (j+½)h, (k+½)h)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid3 {
    nx: usize,
    ny: usize,
    nz: usize,
    h: f64,
}

impl Grid3 {
    /// Creates a grid; all dimensions must be ≥ 1 and the spacing positive.
    ///
    /// # Errors
    ///
    /// Returns [`PoissonError::BadGrid`] for degenerate inputs.
    pub fn new(nx: usize, ny: usize, nz: usize, h_nm: f64) -> Result<Self, PoissonError> {
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(PoissonError::BadGrid {
                detail: format!("dimensions {nx}x{ny}x{nz} must all be >= 1"),
            });
        }
        if h_nm.is_nan() || h_nm <= 0.0 {
            return Err(PoissonError::BadGrid {
                detail: format!("spacing {h_nm} must be positive"),
            });
        }
        Ok(Grid3 {
            nx,
            ny,
            nz,
            h: h_nm,
        })
    }

    /// Cells along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cells along z.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Grid spacing in nm.
    #[inline]
    pub fn spacing(&self) -> f64 {
        self.h
    }

    /// Total cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `false`: valid grids have at least one cell.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of cell `(i, j, k)` (x fastest, z slowest).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        assert!(
            i < self.nx && j < self.ny && k < self.nz,
            "cell out of range"
        );
        (k * self.ny + j) * self.nx + i
    }

    /// Inverse of [`Grid3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let i = idx % self.nx;
        let j = (idx / self.nx) % self.ny;
        let k = idx / (self.nx * self.ny);
        (i, j, k)
    }

    /// Cell centre position in nm.
    pub fn center(&self, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
        (
            (i as f64 + 0.5) * self.h,
            (j as f64 + 0.5) * self.h,
            (k as f64 + 0.5) * self.h,
        )
    }

    /// The cell containing point `(x, y, z)` nm, clamped into the grid.
    pub fn locate(&self, x: f64, y: f64, z: f64) -> (usize, usize, usize) {
        let clamp = |v: f64, n: usize| -> usize {
            let c = (v / self.h).floor();
            (c.max(0.0) as usize).min(n - 1)
        };
        (clamp(x, self.nx), clamp(y, self.ny), clamp(z, self.nz))
    }

    /// Physical extents `(Lx, Ly, Lz)` nm.
    pub fn extent(&self) -> (f64, f64, f64) {
        (
            self.nx as f64 * self.h,
            self.ny as f64 * self.h,
            self.nz as f64 * self.h,
        )
    }
}

/// An axis-aligned box of cells, inclusive on both ends.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct Region {
    /// Inclusive x-range.
    pub x: (usize, usize),
    /// Inclusive y-range.
    pub y: (usize, usize),
    /// Inclusive z-range.
    pub z: (usize, usize),
}

impl Region {
    /// A box spanning the given inclusive index ranges.
    pub fn new(x: (usize, usize), y: (usize, usize), z: (usize, usize)) -> Self {
        Region { x, y, z }
    }

    /// A full-cross-section slab `x ∈ [x0, x1]` (used for source/drain
    /// blocks); y and z resolved against the grid at application time.
    pub fn slab_x(x0: usize, x1: usize) -> Self {
        Region {
            x: (x0, x1),
            y: (0, usize::MAX),
            z: (0, usize::MAX),
        }
    }

    /// A full-footprint slab `z ∈ [z0, z1]` (used for gate planes).
    pub fn slab_z(z0: usize, z1: usize) -> Self {
        Region {
            x: (0, usize::MAX),
            y: (0, usize::MAX),
            z: (z0, z1),
        }
    }

    /// Iterates the cells of this region clipped to `grid`.
    pub fn cells(&self, grid: &Grid3) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let cx = (self.x.0, self.x.1.min(grid.nx() - 1));
        let cy = (self.y.0, self.y.1.min(grid.ny() - 1));
        let cz = (self.z.0, self.z.1.min(grid.nz() - 1));
        (cz.0..=cz.1).flat_map(move |k| {
            (cy.0..=cy.1).flat_map(move |j| (cx.0..=cx.1).map(move |i| (i, j, k)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_validation() {
        assert!(Grid3::new(0, 2, 2, 0.5).is_err());
        assert!(Grid3::new(2, 2, 2, 0.0).is_err());
        assert!(Grid3::new(2, 2, 2, -1.0).is_err());
        assert!(Grid3::new(4, 5, 6, 0.25).is_ok());
    }

    #[test]
    fn index_roundtrip() {
        let g = Grid3::new(4, 5, 6, 0.5).unwrap();
        for idx in 0..g.len() {
            let (i, j, k) = g.coords(idx);
            assert_eq!(g.index(i, j, k), idx);
        }
    }

    #[test]
    fn centers_and_locate() {
        let g = Grid3::new(10, 10, 10, 0.5).unwrap();
        let (x, y, z) = g.center(3, 4, 5);
        assert_eq!((x, y, z), (1.75, 2.25, 2.75));
        assert_eq!(g.locate(x, y, z), (3, 4, 5));
        // Clamping.
        assert_eq!(g.locate(-1.0, 100.0, 2.6), (0, 9, 5));
    }

    #[test]
    fn region_clipping() {
        let g = Grid3::new(4, 3, 2, 1.0).unwrap();
        let r = Region::slab_x(1, 2);
        let cells: Vec<_> = r.cells(&g).collect();
        assert_eq!(cells.len(), 2 * 3 * 2);
        assert!(cells.iter().all(|&(i, _, _)| i == 1 || i == 2));
        let r = Region::slab_z(1, 1);
        assert_eq!(r.cells(&g).count(), 4 * 3);
    }

    #[test]
    fn extent() {
        let g = Grid3::new(30, 10, 8, 0.5).unwrap();
        assert_eq!(g.extent(), (15.0, 5.0, 4.0));
    }
}
