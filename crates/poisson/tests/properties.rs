//! Property-based tests of the electrostatics invariants.

use gnr_poisson::{Grid3, PoissonProblem, Region};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Superposition: the Laplace problem is linear in the electrode
    /// voltages.
    #[test]
    fn electrode_superposition(v1 in -2.0f64..2.0, v2 in -2.0f64..2.0) {
        let grid = Grid3::new(10, 4, 4, 0.5).expect("valid");
        let solve_at = |va: f64, vb: f64| {
            let mut p = PoissonProblem::new(grid);
            p.set_electrode(Region::slab_x(0, 0), va);
            p.set_electrode(Region::slab_x(9, 9), vb);
            p.solve(None).expect("solves")
        };
        let a = solve_at(v1, 0.0);
        let b = solve_at(0.0, v2);
        let c = solve_at(v1, v2);
        for i in 1..9 {
            let lhs = a.potential_index(i, 2, 2) + b.potential_index(i, 2, 2);
            let rhs = c.potential_index(i, 2, 2);
            prop_assert!((lhs - rhs).abs() < 1e-7, "{lhs} vs {rhs}");
        }
    }

    /// Charge superposition and sign: potentials scale linearly with the
    /// deposited charge.
    #[test]
    fn charge_linearity(q in 0.1f64..3.0) {
        let grid = Grid3::new(8, 8, 8, 0.5).expect("valid");
        let solve_with = |charge: f64| {
            let mut p = PoissonProblem::new(grid);
            p.set_electrode(Region::slab_z(0, 0), 0.0);
            p.set_electrode(Region::slab_z(7, 7), 0.0);
            p.add_point_charge(2.0, 2.0, 2.0, charge);
            p.solve(None).expect("solves")
        };
        let unit = solve_with(1.0);
        let scaled = solve_with(q);
        let a = unit.potential_at(2.0, 2.0, 2.0);
        let b = scaled.potential_at(2.0, 2.0, 2.0);
        prop_assert!((b - q * a).abs() < 1e-6 * (1.0 + b.abs()), "{b} vs {}", q * a);
    }

    /// The discrete maximum principle: with no charge, the potential is
    /// bounded by the electrode extremes everywhere.
    #[test]
    fn maximum_principle(v1 in -3.0f64..3.0, v2 in -3.0f64..3.0) {
        let grid = Grid3::new(8, 4, 4, 0.5).expect("valid");
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), v1);
        p.set_electrode(Region::slab_x(7, 7), v2);
        let sol = p.solve(None).expect("solves");
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        for &phi in sol.raw() {
            prop_assert!(phi >= lo - 1e-8 && phi <= hi + 1e-8, "phi = {phi}");
        }
    }

    /// Cloud-in-cell deposition conserves the total charge exactly for any
    /// in-domain position.
    #[test]
    fn cic_conserves_charge(
        x in 0.5f64..3.5,
        y in 0.5f64..3.5,
        z in 0.5f64..3.5,
        q in -5.0f64..5.0,
    ) {
        let grid = Grid3::new(8, 8, 8, 0.5).expect("valid");
        let mut p = PoissonProblem::new(grid);
        p.add_point_charge(x, y, z, q);
        prop_assert!((p.total_charge() - q).abs() < 1e-12);
    }
}
