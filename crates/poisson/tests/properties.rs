//! Property-based tests of the electrostatics invariants, driven by the
//! in-house seeded RNG (deterministic across runs).

use gnr_num::rng::Rng;
use gnr_poisson::{Grid3, PoissonProblem, Region};

/// Superposition: the Laplace problem is linear in the electrode
/// voltages.
#[test]
fn electrode_superposition() {
    let mut rng = Rng::seed_from_u64(0x504f_4901);
    for _ in 0..8 {
        let v1 = rng.uniform_in(-2.0, 2.0);
        let v2 = rng.uniform_in(-2.0, 2.0);
        let grid = Grid3::new(10, 4, 4, 0.5).expect("valid");
        let solve_at = |va: f64, vb: f64| {
            let mut p = PoissonProblem::new(grid);
            p.set_electrode(Region::slab_x(0, 0), va);
            p.set_electrode(Region::slab_x(9, 9), vb);
            p.solve(None, &gnr_num::budget::ExecLimits::none())
                .expect("solves")
        };
        let a = solve_at(v1, 0.0);
        let b = solve_at(0.0, v2);
        let c = solve_at(v1, v2);
        for i in 1..9 {
            let lhs = a.potential_index(i, 2, 2) + b.potential_index(i, 2, 2);
            let rhs = c.potential_index(i, 2, 2);
            assert!((lhs - rhs).abs() < 1e-7, "{lhs} vs {rhs}");
        }
    }
}

/// Charge superposition and sign: potentials scale linearly with the
/// deposited charge.
#[test]
fn charge_linearity() {
    let mut rng = Rng::seed_from_u64(0x504f_4902);
    for _ in 0..8 {
        let q = rng.uniform_in(0.1, 3.0);
        let grid = Grid3::new(8, 8, 8, 0.5).expect("valid");
        let solve_with = |charge: f64| {
            let mut p = PoissonProblem::new(grid);
            p.set_electrode(Region::slab_z(0, 0), 0.0);
            p.set_electrode(Region::slab_z(7, 7), 0.0);
            p.add_point_charge(2.0, 2.0, 2.0, charge);
            p.solve(None, &gnr_num::budget::ExecLimits::none())
                .expect("solves")
        };
        let unit = solve_with(1.0);
        let scaled = solve_with(q);
        let a = unit.potential_at(2.0, 2.0, 2.0);
        let b = scaled.potential_at(2.0, 2.0, 2.0);
        assert!(
            (b - q * a).abs() < 1e-6 * (1.0 + b.abs()),
            "{b} vs {}",
            q * a
        );
    }
}

/// The discrete maximum principle: with no charge, the potential is
/// bounded by the electrode extremes everywhere.
#[test]
fn maximum_principle() {
    let mut rng = Rng::seed_from_u64(0x504f_4903);
    for _ in 0..16 {
        let v1 = rng.uniform_in(-3.0, 3.0);
        let v2 = rng.uniform_in(-3.0, 3.0);
        let grid = Grid3::new(8, 4, 4, 0.5).expect("valid");
        let mut p = PoissonProblem::new(grid);
        p.set_electrode(Region::slab_x(0, 0), v1);
        p.set_electrode(Region::slab_x(7, 7), v2);
        let sol = p
            .solve(None, &gnr_num::budget::ExecLimits::none())
            .expect("solves");
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        for &phi in sol.raw() {
            assert!(phi >= lo - 1e-8 && phi <= hi + 1e-8, "phi = {phi}");
        }
    }
}

/// Cloud-in-cell deposition conserves the total charge exactly for any
/// in-domain position.
#[test]
fn cic_conserves_charge() {
    let mut rng = Rng::seed_from_u64(0x504f_4904);
    for _ in 0..16 {
        let x = rng.uniform_in(0.5, 3.5);
        let y = rng.uniform_in(0.5, 3.5);
        let z = rng.uniform_in(0.5, 3.5);
        let q = rng.uniform_in(-5.0, 5.0);
        let grid = Grid3::new(8, 8, 8, 0.5).expect("valid");
        let mut p = PoissonProblem::new(grid);
        p.add_point_charge(x, y, z, q);
        assert!((p.total_charge() - q).abs() < 1e-12);
    }
}
