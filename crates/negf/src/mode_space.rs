//! Mode-space NEGF — the third solver path alongside dense real-space RGF
//! and the circuit surrogate.
//!
//! Following the mode-space approach of Zhao & Guo (arXiv:0902.4621), the
//! transverse problem of the flat-band ribbon is diagonalized once per
//! device: the lead Bloch Hamiltonian `H(θ) = H00 + e^{iθ}H01 + e^{−iθ}H01†`
//! is sampled across the Brillouin zone, the eigenvectors whose band
//! energies can reach the transport window are accumulated into a real
//! projector, and its significant range becomes an orthonormal basis `V`
//! (`m × k`, `k ≪ m`). All device blocks — `H_l`, `H01`, and the periodic
//! lead cell — are transformed as `X' = VᵀXV`, and the *identical*
//! RGF/Sancho–Rubio machinery then runs on the reduced `k × k` blocks. The
//! surface-GF cache works unchanged because a rigid lead shift survives the
//! orthonormal projection exactly: `Vᵀ(H00 + pI)V = H00' + pI_k`.
//!
//! The approximation is controlled by a **separability monitor**: the
//! self-consistent potential enters the transverse problem as a per-atom
//! diagonal, and its component that couples kept modes to dropped modes —
//! `(I − VVᵀ)·diag(U_l)·V`, maximized over layers — measures how badly the
//! potential breaks mode decoupling. When the defect exceeds
//! [`ModeSpaceOptions::coupling_tol_ev`], the solver is *degraded*: every
//! energy point falls back to the full real-space solve. The same fallback
//! triggers per energy point under the [`FALLBACK_SITE`] fault injection,
//! mirroring the surface-cache fallback pattern — the fallback result is a
//! fresh real-space slice, never a cache entry, so forced fallback is
//! bit-identical to the uncached real-space path.

use crate::cache::SurfaceGfCache;
use crate::error::NegfError;
use crate::lead::Lead;
use crate::rgf::{RgfSolver, SpectralSlice};
use crate::transport::SpectralSolver;
use gnr_lattice::DeviceHamiltonian;
use gnr_num::budget::ExecLimits;
use gnr_num::checkpoint::KeyHasher;
use gnr_num::par::ExecCtx;
use gnr_num::{c64, fault, telemetry, CMatrix, Matrix, TelemetryShard};
use std::collections::HashMap;
use std::sync::Mutex;

/// Fault site probed once per energy point; an injection forces that point
/// through the real-space fallback (see [`gnr_num::fault::REGISTERED_SITES`]).
pub const FALLBACK_SITE: &str = "negf.mode_space.fallback";

/// Controls for the mode-space transform and its separability guard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModeSpaceOptions {
    /// Extra margin (eV) beyond the requested energy window when deciding
    /// which transverse modes can reach the transport integral. Doubled
    /// automatically (up to a few times) if the window selects no modes.
    pub window_margin_ev: f64,
    /// Degrade to full real-space solves when the potential-induced
    /// kept↔dropped mode coupling exceeds this (eV).
    pub coupling_tol_ev: f64,
    /// Bloch-phase samples in `[0, π]` used to accumulate the mode
    /// projector (band extrema between samples are covered by the margin).
    pub theta_samples: usize,
    /// Relative projector-eigenvalue threshold below which a direction is
    /// dropped from the basis.
    pub rank_tol: f64,
}

impl Default for ModeSpaceOptions {
    fn default() -> Self {
        ModeSpaceOptions {
            window_margin_ev: 0.3,
            coupling_tol_ev: 0.15,
            theta_samples: 17,
            rank_tol: 1e-9,
        }
    }
}

impl ModeSpaceOptions {
    /// Sets the mode-selection window margin \[eV\].
    pub fn with_window_margin_ev(mut self, margin: f64) -> Self {
        self.window_margin_ev = margin;
        self
    }

    /// Sets the separability (kept↔dropped coupling) tolerance \[eV\].
    pub fn with_coupling_tol_ev(mut self, tol: f64) -> Self {
        self.coupling_tol_ev = tol;
        self
    }

    /// Sets the number of Bloch-phase samples.
    pub fn with_theta_samples(mut self, samples: usize) -> Self {
        self.theta_samples = samples;
        self
    }
}

/// An orthonormal transverse mode basis for one ribbon, built from the
/// flat-band lead cell. Holds the real `m × k` basis matrix `V` whose
/// columns span every Bloch eigenvector with band energy inside the
/// (margin-inflated) window.
#[derive(Clone, Debug)]
pub struct ModeBasis {
    v: CMatrix,
    dim: usize,
    modes: usize,
    margin_ev: f64,
}

impl ModeBasis {
    /// Builds the basis from the periodic lead blocks `h00`/`h01` for band
    /// energies reachable inside `[window_lo, window_hi]` (eV). The caller
    /// absorbs potential shifts into the window (a band at energy `B`
    /// shifted by potential `U` appears at `B + U`); `opts.window_margin_ev`
    /// is added on both sides and doubled until at least one mode is kept.
    ///
    /// Emits `negf.mode_space.modes_kept` / `modes_dropped` telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] for invalid options or an empty
    /// window, and propagates eigensolver failures.
    pub fn build(
        h00: &CMatrix,
        h01: &CMatrix,
        window_lo: f64,
        window_hi: f64,
        opts: &ModeSpaceOptions,
    ) -> Result<Self, NegfError> {
        // "Once per ribbon": the basis is a pure function of the lead
        // blocks, the window, and the options, and the Bloch sweep costs
        // tens of milliseconds — a process-wide memo makes repeated table
        // builds (bias sweeps, benches, cache rebuilds) pay it once.
        static MEMO: Mutex<Option<HashMap<u64, ModeBasis>>> = Mutex::new(None);
        let key = {
            let mut h = KeyHasher::new();
            h.write_str("mode-basis/v1");
            for a in [h00, h01] {
                h.write_u64(a.rows() as u64);
                for i in 0..a.rows() {
                    for j in 0..a.cols() {
                        let v = a.get(i, j);
                        h.write_f64(v.re);
                        h.write_f64(v.im);
                    }
                }
            }
            h.write_f64(window_lo);
            h.write_f64(window_hi);
            h.write_f64(opts.window_margin_ev);
            h.write_u64(opts.theta_samples as u64);
            h.write_f64(opts.rank_tol);
            h.finish()
        };
        let cached = {
            let guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
            guard.as_ref().and_then(|m| m.get(&key).cloned())
        };
        if let Some(basis) = cached {
            telemetry::counter_add("negf.mode_space.modes_kept", basis.modes() as u64);
            telemetry::counter_add(
                "negf.mode_space.modes_dropped",
                (basis.dim() - basis.modes()) as u64,
            );
            return Ok(basis);
        }
        let basis = Self::build_uncached(h00, h01, window_lo, window_hi, opts)?;
        let mut guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
        guard
            .get_or_insert_with(HashMap::new)
            .insert(key, basis.clone());
        Ok(basis)
    }

    fn build_uncached(
        h00: &CMatrix,
        h01: &CMatrix,
        window_lo: f64,
        window_hi: f64,
        opts: &ModeSpaceOptions,
    ) -> Result<Self, NegfError> {
        let m = h00.rows();
        if h00.cols() != m || h01.rows() != m || h01.cols() != m {
            return Err(NegfError::Config {
                detail: "mode basis needs square lead blocks of equal size".into(),
            });
        }
        if !(window_lo.is_finite() && window_hi.is_finite()) || window_hi <= window_lo {
            return Err(NegfError::Config {
                detail: format!("mode window [{window_lo}, {window_hi}] is empty"),
            });
        }
        if opts.theta_samples < 2 || !opts.window_margin_ev.is_finite() {
            return Err(NegfError::Config {
                detail: "mode-space options need >= 2 theta samples and a finite margin".into(),
            });
        }
        let s = opts.theta_samples;
        let mut margin = opts.window_margin_ev.max(0.0);
        for _attempt in 0..8 {
            // Real projector onto the union of in-window Bloch eigenvectors;
            // Re(ψψ†) folds in the conjugate partner at −θ, so sampling
            // θ ∈ [0, π] covers the full zone.
            let mut p = Matrix::from_fn(m, m, |_, _| 0.0);
            for si in 0..s {
                let theta = std::f64::consts::PI * si as f64 / (s - 1) as f64;
                let phase = c64(theta.cos(), theta.sin());
                let h_theta = CMatrix::from_fn(m, m, |i, j| {
                    h00.get(i, j) + phase * h01.get(i, j) + phase.conj() * h01.get(j, i).conj()
                });
                let (evals, evecs) = h_theta.herm_eigen()?;
                for (c, &ev) in evals.iter().enumerate() {
                    if ev >= window_lo - margin && ev <= window_hi + margin {
                        for i in 0..m {
                            for j in 0..m {
                                let w = (evecs.get(i, c) * evecs.get(j, c).conj()).re;
                                p.set(i, j, p.get(i, j) + w);
                            }
                        }
                    }
                }
            }
            let (pvals, pvecs) = p.sym_eigen()?;
            let lam_max = pvals.last().copied().unwrap_or(0.0);
            let cut = (opts.rank_tol * lam_max).max(1e-12);
            // Descending projector weight: the most-occupied directions
            // lead the basis.
            let kept: Vec<usize> = (0..m).rev().filter(|&c| pvals[c] > cut).collect();
            if kept.is_empty() {
                margin = (2.0 * margin).max(0.05);
                continue;
            }
            let k = kept.len();
            let v = CMatrix::from_fn(m, k, |i, a| c64(pvecs.get(i, kept[a]), 0.0));
            telemetry::counter_add("negf.mode_space.modes_kept", k as u64);
            telemetry::counter_add("negf.mode_space.modes_dropped", (m - k) as u64);
            return Ok(ModeBasis {
                v,
                dim: m,
                modes: k,
                margin_ev: margin,
            });
        }
        Err(NegfError::Config {
            detail: "mode window selects no transverse modes".into(),
        })
    }

    /// Transverse dimension `m` of the full problem.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of kept modes `k`.
    pub fn modes(&self) -> usize {
        self.modes
    }

    /// The margin actually used (after any automatic widening) \[eV\].
    pub fn margin_ev(&self) -> f64 {
        self.margin_ev
    }

    /// The orthonormal basis matrix `V` (`m × k`, real entries).
    pub fn basis(&self) -> &CMatrix {
        &self.v
    }

    /// Projects an `m × m` block into mode space: `VᵀAV` (`k × k`).
    pub fn project(&self, a: &CMatrix) -> CMatrix {
        self.v.adjoint().matmul(a).matmul(&self.v)
    }
}

/// Mode-space NEGF solver: the reduced RGF solver plus the real-space
/// fallback it degrades to, sharing one device Hamiltonian.
#[derive(Clone, Debug)]
pub struct ModeSpaceSolver {
    reduced: RgfSolver,
    full: RgfSolver,
    basis: ModeBasis,
    /// `Vᵀ` (`k × m`), hoisted out of the per-energy expansion.
    vt: CMatrix,
    degraded: bool,
    defect_ev: f64,
}

impl ModeSpaceSolver {
    /// Binds a solver to `h` in the basis `basis`, with the same lead
    /// models on both the reduced and the fallback path.
    ///
    /// The separability defect is measured here, once, from the device's
    /// potential profile (the diagonal of `H_l` relative to the bare lead
    /// cell) — the verdict is therefore fixed per solver and deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] if `basis` does not match the layer
    /// dimension of `h`.
    pub fn new(
        h: &DeviceHamiltonian,
        lead1: Lead,
        lead2: Lead,
        basis: &ModeBasis,
        opts: &ModeSpaceOptions,
    ) -> Result<Self, NegfError> {
        let m = h.coupling_block().rows();
        if basis.dim() != m {
            return Err(NegfError::Config {
                detail: format!(
                    "mode basis dimension {} does not match layer dimension {m}",
                    basis.dim()
                ),
            });
        }
        let (lead_h00, lead_h01) = gnr_lattice::unit_cell_hamiltonian(h.gnr());
        let diag: Vec<CMatrix> = (0..h.layers())
            .map(|l| basis.project(h.diag_block(l)))
            .collect();
        let reduced = RgfSolver::from_blocks(
            diag,
            basis.project(h.coupling_block()),
            lead1.clone(),
            lead2.clone(),
            basis.project(&lead_h00),
            basis.project(&lead_h01),
        );
        let full = RgfSolver::new(h, lead1, lead2);

        // Separability monitor: per-layer potential relative to the bare
        // lead cell, applied to the kept modes; its out-of-span residual
        // `(I − VVᵀ)·diag(U_l)·V` is the kept↔dropped coupling the reduced
        // solve cannot see. A layer-uniform (rigid) shift projects to zero
        // automatically.
        let v = basis.basis();
        let mut defect_ev = 0.0f64;
        for l in 0..h.layers() {
            let block = h.diag_block(l);
            let w = CMatrix::from_fn(m, basis.modes(), |i, a| {
                c64((block.get(i, i) - lead_h00.get(i, i)).re, 0.0) * v.get(i, a)
            });
            let in_span = v.matmul(&v.adjoint().matmul(&w));
            let residual = &w - &in_span;
            defect_ev = defect_ev.max(residual.max_abs());
        }
        let degraded = defect_ev > opts.coupling_tol_ev;
        Ok(ModeSpaceSolver {
            reduced,
            full,
            basis: basis.clone(),
            vt: v.adjoint(),
            degraded,
            defect_ev,
        })
    }

    /// Number of kept modes `k`.
    pub fn modes(&self) -> usize {
        self.basis.modes()
    }

    /// `true` when the separability monitor routed every energy point to
    /// the real-space fallback.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The measured kept↔dropped coupling defect \[eV\].
    pub fn separability_defect_ev(&self) -> f64 {
        self.defect_ev
    }

    /// Expands reduced spectral blocks back to atom-space diagonals:
    /// `A_atom = diag(V·A'·Vᵀ)`, clamped non-negative like the real-space
    /// assembly.
    fn expand(&self, e: f64, transmission: f64, a1: &[CMatrix], a2: &[CMatrix]) -> SpectralSlice {
        let v = self.basis.basis();
        let m = self.basis.dim();
        let k = self.basis.modes();
        let mut a1_diag = Vec::with_capacity(a1.len() * m);
        let mut a2_diag = Vec::with_capacity(a2.len() * m);
        // Only the diagonal of V·A'·Vᵀ is needed: with W = A'·Vᵀ (k × m),
        // diag_i = Σ_a V_ia W_ai — O(mk²) instead of O(m²k) per block.
        for (b1, b2) in a1.iter().zip(a2) {
            let w1 = b1.matmul(&self.vt);
            let w2 = b2.matmul(&self.vt);
            for i in 0..m {
                let mut d1 = c64(0.0, 0.0);
                let mut d2 = c64(0.0, 0.0);
                for a in 0..k {
                    d1 += v.get(i, a) * w1.get(a, i);
                    d2 += v.get(i, a) * w2.get(a, i);
                }
                a1_diag.push(d1.re.max(0.0));
                a2_diag.push(d2.re.max(0.0));
            }
        }
        SpectralSlice {
            energy: e,
            transmission,
            a1_diag,
            a2_diag,
        }
    }

    /// One real-space fallback slice — always a *fresh* solve (the shared
    /// cache holds reduced-basis entries and must never serve the full
    /// problem), so forced fallback reproduces the uncached real-space
    /// path bit for bit.
    fn fallback_slice(&self, e: f64, limits: &ExecLimits) -> Result<SpectralSlice, NegfError> {
        self.full.spectral_slice(e, limits)
    }
}

impl SpectralSolver for ModeSpaceSolver {
    fn atoms(&self) -> usize {
        self.full.layers() * self.full.layer_dim()
    }

    fn prime_surface_cache(
        &self,
        ctx: &ExecCtx,
        cache: &SurfaceGfCache,
        energies: &[f64],
    ) -> Result<usize, NegfError> {
        if self.degraded {
            // Every energy point will take the (uncached) fallback.
            return Ok(0);
        }
        self.reduced.prime_surface_cache(ctx, cache, energies)
    }

    fn spectral_slice(&self, e: f64, limits: &ExecLimits) -> Result<SpectralSlice, NegfError> {
        if self.degraded || fault::should_fail(FALLBACK_SITE) {
            telemetry::counter_inc("negf.mode_space.fallbacks");
            return self.fallback_slice(e, limits);
        }
        let (sigma1, sigma2) = self.reduced.contact_self_energies(e, limits)?;
        let b = self
            .reduced
            .spectral_blocks_with_sigmas(e, &sigma1, &sigma2)?;
        Ok(self.expand(b.energy, b.transmission, &b.a1, &b.a2))
    }

    fn spectral_slice_cached(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError> {
        if self.degraded || fault::should_fail(FALLBACK_SITE) {
            shard.counter_inc("negf.mode_space.fallbacks");
            return self.fallback_slice(e, limits);
        }
        let (sigma1, sigma2) = self.reduced.cached_self_energies(cache, e, shard, limits)?;
        let b = self
            .reduced
            .spectral_blocks_with_sigmas(e, &sigma1, &sigma2)?;
        Ok(self.expand(b.energy, b.transmission, &b.a1, &b.a2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_lattice::{unit_cell_hamiltonian, AGnr};

    fn lead_blocks(n: usize) -> (CMatrix, CMatrix) {
        unit_cell_hamiltonian(AGnr::new(n).unwrap())
    }

    #[test]
    fn basis_is_orthonormal_and_truncated() {
        let (h00, h01) = lead_blocks(9);
        let basis = ModeBasis::build(&h00, &h01, -0.6, 0.6, &ModeSpaceOptions::default()).unwrap();
        let k = basis.modes();
        assert!(k >= 1, "window must keep at least one mode");
        assert!(k < basis.dim(), "window must drop modes: k = {k}");
        let gram = basis.basis().adjoint().matmul(basis.basis());
        for i in 0..k {
            for j in 0..k {
                let want = if i == j { 1.0 } else { 0.0 };
                let g = gram.get(i, j);
                assert!(
                    (g.re - want).abs() < 1e-9 && g.im.abs() < 1e-12,
                    "gram[{i}][{j}] = {g}"
                );
            }
        }
    }

    #[test]
    fn full_window_projection_preserves_spectrum() {
        // With a window spanning the whole bandwidth every mode is kept and
        // the projected lead cell is a unitary rotation of the original:
        // identical eigenvalues.
        let (h00, h01) = lead_blocks(7);
        let opts = ModeSpaceOptions::default().with_window_margin_ev(50.0);
        let basis = ModeBasis::build(&h00, &h01, -1.0, 1.0, &opts).unwrap();
        assert_eq!(basis.modes(), basis.dim());
        let (full, _) = h00.herm_eigen().unwrap();
        let (red, _) = basis.project(&h00).herm_eigen().unwrap();
        for (a, b) in full.iter().zip(&red) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_window_widens_margin_until_modes_appear() {
        let (h00, h01) = lead_blocks(12);
        // A midgap sliver with zero margin catches no bands initially.
        let opts = ModeSpaceOptions::default().with_window_margin_ev(0.0);
        let basis = ModeBasis::build(&h00, &h01, -0.01, 0.01, &opts).unwrap();
        assert!(basis.modes() >= 1);
        assert!(basis.margin_ev() > 0.0, "margin was widened");
    }

    #[test]
    fn rejects_bad_inputs() {
        let (h00, h01) = lead_blocks(7);
        let opts = ModeSpaceOptions::default();
        assert!(ModeBasis::build(&h00, &h01, 1.0, -1.0, &opts).is_err());
        assert!(ModeBasis::build(&h00, &h01, -1.0, 1.0, &opts.with_theta_samples(1)).is_err());
    }
}
