//! Error type for the NEGF solvers.

use gnr_num::NumError;
use std::error::Error;
use std::fmt;

/// Errors produced by the Green's-function solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum NegfError {
    /// A linear-algebra kernel failed (singular matrix, etc.).
    Linear(NumError),
    /// The Sancho–Rubio surface-GF iteration failed to converge.
    SurfaceGf {
        /// Iterations performed.
        iterations: usize,
        /// Residual coupling norm at the last iterate.
        residual: f64,
    },
    /// Inconsistent solver configuration.
    Config {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for NegfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegfError::Linear(e) => write!(f, "linear algebra failure: {e}"),
            NegfError::SurfaceGf {
                iterations,
                residual,
            } => write!(
                f,
                "surface green's function did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NegfError::Config { detail } => write!(f, "invalid solver configuration: {detail}"),
        }
    }
}

impl Error for NegfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NegfError::Linear(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for NegfError {
    fn from(e: NumError) -> Self {
        NegfError::Linear(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = NegfError::SurfaceGf {
            iterations: 7,
            residual: 0.5,
        };
        assert!(e.to_string().contains('7'));
        let e = NegfError::Config {
            detail: "bad eta".into(),
        };
        assert!(e.to_string().contains("bad eta"));
    }
}
