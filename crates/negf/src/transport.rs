//! Landauer current and charge integration over energy.
//!
//! For a ballistic two-terminal device the electron correlation function
//! splits exactly into contact-resolved spectral pieces,
//! `Gⁿ = A₁ f₁ + A₂ f₂`, so the charge at atom *i* and the terminal current
//! are energy integrals over the [`SpectralSlice`](crate::rgf::SpectralSlice)
//! data produced by the RGF sweeps:
//!
//! ```text
//! n_i = ∫ dE/2π [A₁,ii f₁ + A₂,ii f₂]          (E above the local midgap)
//! p_i = ∫ dE/2π [A₁,ii (1−f₁) + A₂,ii (1−f₂)]  (E below the local midgap)
//! I   = (2e/h)·q ∫ dE T(E) [f₁ − f₂]
//! ```

use crate::cache::SurfaceGfCache;
use crate::error::NegfError;
use crate::rgf::{RgfSolver, SpectralSlice};
use gnr_num::budget::ExecLimits;
use gnr_num::consts::LANDAUER_2E_OVER_H;
use gnr_num::fermi::fermi;
use gnr_num::par::ExecCtx;
use gnr_num::quad::trapezoid_samples;
use gnr_num::TelemetryShard;
use std::sync::Arc;

/// A per-energy spectral-function source the transport integrators can
/// drive: the dense real-space [`RgfSolver`] and the reduced
/// [`ModeSpaceSolver`](crate::mode_space::ModeSpaceSolver) both implement
/// it, so the Landauer integration, adaptive refinement, and surface-GF
/// cache plumbing are shared verbatim between the solver paths.
///
/// Contract: [`spectral_slice`](SpectralSolver::spectral_slice) and
/// [`spectral_slice_cached`](SpectralSolver::spectral_slice_cached) must
/// return diagonals with exactly [`atoms`](SpectralSolver::atoms) entries,
/// and every implementation must be deterministic per energy point — the
/// integrators' ordered merges then keep results bit-identical for any
/// `GNR_THREADS`.
pub trait SpectralSolver {
    /// Number of atoms (diagonal entries) in the device.
    fn atoms(&self) -> usize;

    /// Serially pre-indexes and solves the not-yet-cached surface-GF
    /// entries for `energies` (see [`RgfSolver::prime_surface_cache`]).
    ///
    /// # Errors
    ///
    /// Propagates surface-GF convergence failures and budget stops.
    fn prime_surface_cache(
        &self,
        ctx: &ExecCtx,
        cache: &SurfaceGfCache,
        energies: &[f64],
    ) -> Result<usize, NegfError>;

    /// Transmission and spectral-function diagonals at energy `e`.
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures and budget stops.
    fn spectral_slice(&self, e: f64, limits: &ExecLimits) -> Result<SpectralSlice, NegfError>;

    /// As [`spectral_slice`](SpectralSolver::spectral_slice), with lead
    /// self-energies served through `cache`.
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures and budget stops.
    fn spectral_slice_cached(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError>;
}

impl SpectralSolver for RgfSolver {
    fn atoms(&self) -> usize {
        self.layers() * self.layer_dim()
    }

    fn prime_surface_cache(
        &self,
        ctx: &ExecCtx,
        cache: &SurfaceGfCache,
        energies: &[f64],
    ) -> Result<usize, NegfError> {
        RgfSolver::prime_surface_cache(self, ctx, cache, energies)
    }

    fn spectral_slice(&self, e: f64, limits: &ExecLimits) -> Result<SpectralSlice, NegfError> {
        RgfSolver::spectral_slice(self, e, limits)
    }

    fn spectral_slice_cached(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError> {
        RgfSolver::spectral_slice_cached(self, e, cache, shard, limits)
    }
}

/// A uniform energy grid for transport integrals (eV).
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyGrid {
    lo: f64,
    hi: f64,
    points: usize,
}

impl EnergyGrid {
    /// Creates a grid of `points ≥ 2` energies spanning `[lo, hi]` eV.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] for a degenerate range or fewer than
    /// two points.
    pub fn new(lo: f64, hi: f64, points: usize) -> Result<Self, NegfError> {
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(NegfError::Config {
                detail: format!("energy range [{lo}, {hi}] is empty"),
            });
        }
        if points < 2 {
            return Err(NegfError::Config {
                detail: "energy grid needs at least 2 points".into(),
            });
        }
        Ok(EnergyGrid { lo, hi, points })
    }

    /// Creates the grid spanning `[lo, hi]` whose spacing is closest to
    /// `step_ev` (eV). Useful for bias sweeps that want one energy lattice
    /// shared across windows so cache keys collide maximally.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] for a degenerate range or a
    /// non-positive step.
    pub fn with_step(lo: f64, hi: f64, step_ev: f64) -> Result<Self, NegfError> {
        if step_ev.is_nan() || step_ev <= 0.0 {
            return Err(NegfError::Config {
                detail: format!("energy step {step_ev} must be positive"),
            });
        }
        let intervals = (((hi - lo) / step_ev).round() as usize).max(1);
        EnergyGrid::new(lo, hi, intervals + 1)
    }

    /// Grid spacing (eV).
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.points - 1) as f64
    }

    /// The `i`-th grid energy (eV).
    pub fn energy(&self, i: usize) -> f64 {
        self.lo + self.step() * i as f64
    }

    /// Iterator over the grid energies (no allocation).
    pub fn energies(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.points).map(|i| self.energy(i))
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// `false`: a valid grid has ≥ 2 points.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Net charge per atom (units of the elementary charge `q`; electrons
/// contribute negatively, holes positively).
#[derive(Clone, Debug, PartialEq)]
pub struct ChargeProfile {
    /// Per-atom net charge `p_i − n_i` in units of q.
    pub net: Vec<f64>,
    /// Per-atom electron occupation `n_i`.
    pub electrons: Vec<f64>,
    /// Per-atom hole occupation `p_i`.
    pub holes: Vec<f64>,
}

impl ChargeProfile {
    /// Total net charge of the device in units of q.
    pub fn total(&self) -> f64 {
        self.net.iter().sum()
    }

    /// Charge summed per layer (for coupling back into a coarser Poisson
    /// mesh), given the layer block size.
    ///
    /// # Panics
    ///
    /// Panics if `layer_dim` does not divide the atom count.
    pub fn per_layer(&self, layer_dim: usize) -> Vec<f64> {
        assert_eq!(self.net.len() % layer_dim, 0);
        self.net
            .chunks(layer_dim)
            .map(|chunk| chunk.iter().sum())
            .collect()
    }
}

/// Result of a bias-point transport calculation.
#[derive(Clone, Debug)]
pub struct TransportResult {
    /// Terminal current \[A\] (positive from contact 2 into contact 1 for
    /// `mu1 > mu2`).
    pub current_a: f64,
    /// Transmission sampled on the integration grid.
    pub transmission: Vec<(f64, f64)>,
    /// Self-consistent charge profile.
    pub charge: ChargeProfile,
}

/// One energy point's contribution, computed independently on a pool
/// worker and folded into the running integrals during the ordered merge.
struct EnergySample {
    e: f64,
    transmission: f64,
    kernel: f64,
    /// Summed spectral weight `Σ_i (A₁ + A₂)_ii` — the charge-structure
    /// signal the adaptive refinement watches alongside `T(E)`.
    dos: f64,
    filled: Vec<f64>,
    empty: Vec<f64>,
    /// Worker-local telemetry deltas, applied during the ordered merge so
    /// metric aggregation follows the same index order as the data.
    shard: TelemetryShard,
}

/// Integrates current and charge for the device bound to `solver`, with
/// source/drain Fermi levels `mu1`/`mu2` (eV), temperature `t_kelvin`, and
/// the per-atom local midgap reference `neutral_ev` that splits electron
/// from hole occupation (normally the local electrostatic potential).
///
/// The energy loop runs on `ctx`'s thread pool: each grid point's RGF
/// spectral slice is independent, and the per-energy contributions are
/// merged serially in energy order, so the result is bit-identical to the
/// serial loop for any thread count.
///
/// # Errors
///
/// Propagates RGF failures, and returns [`NegfError::Config`] if
/// `neutral_ev` has the wrong length.
pub fn integrate_transport<S: SpectralSolver + Sync>(
    ctx: &ExecCtx,
    solver: &S,
    grid: &EnergyGrid,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    neutral_ev: &[f64],
) -> Result<TransportResult, NegfError> {
    let atoms = solver.atoms();
    if neutral_ev.len() != atoms {
        return Err(NegfError::Config {
            detail: format!(
                "neutral point has {} entries for {} atoms",
                neutral_ev.len(),
                atoms
            ),
        });
    }
    let two_pi = 2.0 * std::f64::consts::PI;
    let de = grid.step();
    ctx.counter_inc("negf.transport.integrations");

    let samples =
        ctx.try_par_map_indexed(grid.len(), |idx| -> Result<EnergySample, NegfError> {
            ctx.check_budget("negf.energy_point")?;
            let mut shard = TelemetryShard::for_sink(ctx.telemetry());
            let e = grid.energy(idx);
            let slice = solver.spectral_slice(e, ctx.limits())?;
            shard.counter_inc("negf.energy_points");
            let f1 = fermi(e, mu1, t_kelvin);
            let f2 = fermi(e, mu2, t_kelvin);
            let mut filled = Vec::with_capacity(atoms);
            let mut empty = Vec::with_capacity(atoms);
            let mut dos = 0.0;
            for i in 0..atoms {
                filled.push(slice.a1_diag[i] * f1 + slice.a2_diag[i] * f2);
                empty.push(slice.a1_diag[i] * (1.0 - f1) + slice.a2_diag[i] * (1.0 - f2));
                dos += slice.a1_diag[i] + slice.a2_diag[i];
            }
            Ok(EnergySample {
                e,
                transmission: slice.transmission,
                kernel: slice.transmission * (f1 - f2),
                dos,
                filled,
                empty,
                shard,
            })
        })?;

    // Ordered serial merge: identical accumulation order and arithmetic to
    // the original serial energy loop (telemetry shards included).
    let mut t_of_e = Vec::with_capacity(grid.len());
    let mut current_kernel = Vec::with_capacity(grid.len());
    let mut electrons = vec![0.0; atoms];
    let mut holes = vec![0.0; atoms];
    for s in samples {
        t_of_e.push((s.e, s.transmission));
        current_kernel.push(s.kernel);
        for i in 0..atoms {
            if s.e >= neutral_ev[i] {
                electrons[i] += s.filled[i] / two_pi * de;
            } else {
                holes[i] += s.empty[i] / two_pi * de;
            }
        }
        s.shard.merge_into(ctx.telemetry());
    }
    let current_a = LANDAUER_2E_OVER_H * trapezoid_samples(&current_kernel, de);
    let net: Vec<f64> = holes.iter().zip(&electrons).map(|(p, n)| p - n).collect();
    Ok(TransportResult {
        current_a,
        transmission: t_of_e,
        charge: ChargeProfile {
            net,
            electrons,
            holes,
        },
    })
}

/// Adaptive-refinement controls for the transport energy grid.
///
/// Starting from the caller's (coarse) base [`EnergyGrid`], every interval
/// whose endpoint transmissions differ by more than `tol_t` is bisected,
/// round after round, until nothing exceeds the tolerance, `max_depth`
/// rounds have run (each round halves flagged intervals once, so no
/// interval shrinks below `base_step / 2^max_depth`), or the sample budget
/// `max_points` is reached. This resolves band-edge steps and resonances
/// without paying a dense uniform grid everywhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineOptions {
    /// Bisect an interval when `|T(e_{i+1}) − T(e_i)|` exceeds this.
    pub tol_t: f64,
    /// Bisect when the summed spectral weight (device DOS) changes by more
    /// than this relative fraction across an interval. The transmission
    /// criterion is blind to charge structure carried by states that do not
    /// conduct — quasi-bound well resonances in the off-state most of all —
    /// so the charge integral needs its own trigger. `f64::INFINITY`
    /// disables it. Intervals whose weight is below 1% of the base grid's
    /// peak are exempt (deep-gap evanescent tails refine forever otherwise).
    pub tol_dos_rel: f64,
    /// Maximum bisection rounds (= per-interval halvings).
    pub max_depth: usize,
    /// Hard cap on the total number of energy samples.
    pub max_points: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            tol_t: 0.02,
            tol_dos_rel: 0.25,
            max_depth: 6,
            max_points: 4096,
        }
    }
}

/// Toggles for the transport acceleration layer. The default (no refine,
/// no cache) routes through the exact legacy uniform-grid path, so A/B
/// pinning against the unaccelerated integrator is always available.
#[derive(Clone, Debug, Default)]
pub struct TransportOptions {
    /// Adaptive energy-grid refinement; `None` keeps the uniform grid.
    pub refine: Option<RefineOptions>,
    /// Shared surface-GF cache; `None` solves Sancho–Rubio per energy.
    pub cache: Option<Arc<SurfaceGfCache>>,
}

impl TransportOptions {
    /// The exact legacy path (uniform grid, fresh Sancho–Rubio solves).
    pub fn legacy() -> Self {
        TransportOptions::default()
    }

    /// Cache plus default adaptive refinement — the bias-sweep fast path.
    pub fn accelerated(cache: Arc<SurfaceGfCache>) -> Self {
        TransportOptions {
            refine: Some(RefineOptions::default()),
            cache: Some(cache),
        }
    }

    /// Sets (or replaces) the refinement controls.
    pub fn with_refine(mut self, refine: RefineOptions) -> Self {
        self.refine = Some(refine);
        self
    }

    /// Sets (or replaces) the shared surface-GF cache.
    pub fn with_cache(mut self, cache: Arc<SurfaceGfCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Evaluates one batch of energies on the pool (index-ordered), optionally
/// through the surface-GF cache. Shards ride inside the samples and are
/// merged by the caller in batch order.
#[allow(clippy::too_many_arguments)]
fn eval_samples<S: SpectralSolver + Sync>(
    ctx: &ExecCtx,
    solver: &S,
    energies: &[f64],
    cache: Option<&SurfaceGfCache>,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    atoms: usize,
) -> Result<Vec<EnergySample>, NegfError> {
    ctx.try_par_map_indexed(energies.len(), |idx| -> Result<EnergySample, NegfError> {
        ctx.check_budget("negf.energy_point")?;
        let mut shard = TelemetryShard::for_sink(ctx.telemetry());
        let e = energies[idx];
        let slice = match cache {
            Some(c) => solver.spectral_slice_cached(e, c, &mut shard, ctx.limits())?,
            None => solver.spectral_slice(e, ctx.limits())?,
        };
        shard.counter_inc("negf.energy_points");
        let f1 = fermi(e, mu1, t_kelvin);
        let f2 = fermi(e, mu2, t_kelvin);
        let mut filled = Vec::with_capacity(atoms);
        let mut empty = Vec::with_capacity(atoms);
        let mut dos = 0.0;
        for i in 0..atoms {
            filled.push(slice.a1_diag[i] * f1 + slice.a2_diag[i] * f2);
            empty.push(slice.a1_diag[i] * (1.0 - f1) + slice.a2_diag[i] * (1.0 - f2));
            dos += slice.a1_diag[i] + slice.a2_diag[i];
        }
        Ok(EnergySample {
            e,
            transmission: slice.transmission,
            kernel: slice.transmission * (f1 - f2),
            dos,
            filled,
            empty,
            shard,
        })
    })
}

/// Merges two energy-ascending sample runs into one (stable two-pointer
/// merge; midpoints interleave between their parent endpoints).
fn merge_by_energy(a: Vec<EnergySample>, b: Vec<EnergySample>) -> Vec<EnergySample> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ib = b.into_iter().peekable();
    for s in a {
        while ib.peek().is_some_and(|m| m.e < s.e) {
            out.push(ib.next().expect("peeked"));
        }
        out.push(s);
    }
    out.extend(ib);
    out
}

/// [`integrate_transport`] with the acceleration layer toggles. With
/// default (empty) options this *is* the legacy integrator — same code
/// path, bit-identical results. With `opts.cache` set, Sancho–Rubio lead
/// solves are served from the shared bias-sweep cache (priming any missing
/// base-grid entries through the serial pre-indexing path first). With
/// `opts.refine` set, `grid` is treated as the coarse base lattice and
/// intervals where `T(E)` jumps by more than the tolerance are bisected;
/// current and charge then integrate on the resulting non-uniform grid
/// (trapezoid weights), and the refinement telemetry lands on
/// `negf.transport.refined_points` / `refine_rounds`.
///
/// Refinement midpoints are deduplicated by construction (each round
/// bisects disjoint intervals), so cache hit/miss counters stay
/// bit-identical across `GNR_THREADS=1/2/4`.
///
/// # Errors
///
/// Propagates RGF failures, and returns [`NegfError::Config`] if
/// `neutral_ev` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn integrate_transport_with<S: SpectralSolver + Sync>(
    ctx: &ExecCtx,
    solver: &S,
    grid: &EnergyGrid,
    opts: &TransportOptions,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    neutral_ev: &[f64],
) -> Result<TransportResult, NegfError> {
    if opts.refine.is_none() && opts.cache.is_none() {
        return integrate_transport(ctx, solver, grid, mu1, mu2, t_kelvin, neutral_ev);
    }
    let atoms = solver.atoms();
    if neutral_ev.len() != atoms {
        return Err(NegfError::Config {
            detail: format!(
                "neutral point has {} entries for {} atoms",
                neutral_ev.len(),
                atoms
            ),
        });
    }
    ctx.counter_inc("negf.transport.integrations");

    let base: Vec<f64> = grid.energies().collect();
    if let Some(cache) = &opts.cache {
        solver.prime_surface_cache(ctx, cache, &base)?;
    }
    let cache = opts.cache.as_deref();
    let mut samples = eval_samples(ctx, solver, &base, cache, mu1, mu2, t_kelvin, atoms)?;

    let mut refined_points = 0u64;
    let mut rounds = 0u64;
    if let Some(refine) = opts.refine {
        // Fixed from the base grid (not per round) so the refinement
        // trajectory is independent of what earlier rounds discovered.
        let dos_floor = 0.01 * samples.iter().map(|s| s.dos).fold(0.0, f64::max);
        // Midpoints of one round are distinct energies (disjoint intervals
        // far wider than the cache quantum), so the serial scan below is
        // the pre-index that fixes cache order and counter totals.
        for _ in 0..refine.max_depth {
            let mut mids = Vec::new();
            for w in samples.windows(2) {
                if samples.len() + mids.len() >= refine.max_points {
                    break;
                }
                let span = w[1].e - w[0].e;
                let t_jump = (w[1].transmission - w[0].transmission).abs() > refine.tol_t;
                let pair = w[0].dos + w[1].dos;
                let dos_jump =
                    pair > dos_floor && (w[1].dos - w[0].dos).abs() > refine.tol_dos_rel * pair;
                if span > 1e-9 && (t_jump || dos_jump) {
                    mids.push(0.5 * (w[0].e + w[1].e));
                }
            }
            if mids.is_empty() {
                break;
            }
            if let Some(c) = cache {
                solver.prime_surface_cache(ctx, c, &mids)?;
            }
            let new = eval_samples(ctx, solver, &mids, cache, mu1, mu2, t_kelvin, atoms)?;
            refined_points += new.len() as u64;
            rounds += 1;
            samples = merge_by_energy(samples, new);
        }
        ctx.counter_add("negf.transport.refined_points", refined_points);
        ctx.counter_add("negf.transport.refine_rounds", rounds);
    }

    Ok(merge_samples(ctx, samples, neutral_ev, atoms))
}

/// Ordered serial merge on a (possibly non-uniform) energy-ascending
/// sample run: trapezoid weights for both the current kernel and the
/// charge integrals; each sample's shard lands in energy order.
fn merge_samples(
    ctx: &ExecCtx,
    samples: Vec<EnergySample>,
    neutral_ev: &[f64],
    atoms: usize,
) -> TransportResult {
    let two_pi = 2.0 * std::f64::consts::PI;
    let n = samples.len();
    let mut t_of_e = Vec::with_capacity(n);
    let mut electrons = vec![0.0; atoms];
    let mut holes = vec![0.0; atoms];
    let mut current = 0.0;
    for (j, s) in samples.iter().enumerate() {
        let left = if j > 0 { samples[j - 1].e } else { s.e };
        let right = if j + 1 < n { samples[j + 1].e } else { s.e };
        let w = 0.5 * (right - left);
        t_of_e.push((s.e, s.transmission));
        if j + 1 < n {
            current += 0.5 * (s.kernel + samples[j + 1].kernel) * (samples[j + 1].e - s.e);
        }
        for i in 0..atoms {
            if s.e >= neutral_ev[i] {
                electrons[i] += s.filled[i] / two_pi * w;
            } else {
                holes[i] += s.empty[i] / two_pi * w;
            }
        }
    }
    for s in samples {
        s.shard.merge_into(ctx.telemetry());
    }
    let net: Vec<f64> = holes.iter().zip(&electrons).map(|(p, n)| p - n).collect();
    TransportResult {
        current_a: LANDAUER_2E_OVER_H * current,
        transmission: t_of_e,
        charge: ChargeProfile {
            net,
            electrons,
            holes,
        },
    }
}

/// Transport on an explicit, energy-ascending sample list — the "frozen
/// grid" companion to adaptive refinement. An SCF loop that refined its
/// grid on the first iteration can re-integrate on exactly that grid for
/// every later iteration (energies come straight from
/// [`TransportResult::transmission`]), keeping the charge a *continuous*
/// function of the potential: re-deriving the refinement set each
/// iteration makes the charge jump whenever an interval flips across the
/// tolerance, and the self-consistent fixed point turns into a limit
/// cycle.
///
/// Only `opts.cache` is honored (`opts.refine` is ignored — the grid is
/// the caller's). Integration uses the same non-uniform trapezoid weights
/// as the refined path.
///
/// # Errors
///
/// Propagates RGF failures; returns [`NegfError::Config`] for an empty or
/// unsorted energy list, or a wrong-length `neutral_ev`.
#[allow(clippy::too_many_arguments)]
pub fn integrate_transport_frozen<S: SpectralSolver + Sync>(
    ctx: &ExecCtx,
    solver: &S,
    energies: &[f64],
    opts: &TransportOptions,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    neutral_ev: &[f64],
) -> Result<TransportResult, NegfError> {
    let atoms = solver.atoms();
    if neutral_ev.len() != atoms {
        return Err(NegfError::Config {
            detail: format!(
                "neutral point has {} entries for {} atoms",
                neutral_ev.len(),
                atoms
            ),
        });
    }
    if energies.len() < 2 || energies.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NegfError::Config {
            detail: "frozen energy grid must be >= 2 strictly ascending points".into(),
        });
    }
    ctx.counter_inc("negf.transport.integrations");
    if let Some(cache) = &opts.cache {
        solver.prime_surface_cache(ctx, cache, energies)?;
    }
    let samples = eval_samples(
        ctx,
        solver,
        energies,
        opts.cache.as_deref(),
        mu1,
        mu2,
        t_kelvin,
        atoms,
    )?;
    Ok(merge_samples(ctx, samples, neutral_ev, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::Lead;
    use gnr_lattice::{AGnr, DeviceHamiltonian};

    fn ideal(n: usize, cells: usize) -> RgfSolver {
        let gnr = AGnr::new(n).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
        RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
    }

    fn ctx() -> ExecCtx {
        ExecCtx::serial()
    }

    #[test]
    fn energy_grid_iterator_matches_closed_form() {
        let g = EnergyGrid::new(-0.5, 1.0, 16).unwrap();
        let es: Vec<f64> = g.energies().collect();
        assert_eq!(es.len(), g.len());
        for (i, &e) in es.iter().enumerate() {
            assert_eq!(e.to_bits(), g.energy(i).to_bits());
        }
        assert_eq!(es[0], -0.5);
        assert!((es[15] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_transport_bit_identical_to_serial() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 37).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let serial = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        for threads in [2, 4] {
            let par = integrate_transport(
                &ExecCtx::with_threads(threads),
                &solver,
                &grid,
                1.0,
                0.8,
                300.0,
                &zeros,
            )
            .unwrap();
            assert_eq!(
                serial.current_a.to_bits(),
                par.current_a.to_bits(),
                "threads={threads}"
            );
            assert_eq!(serial.transmission, par.transmission);
            assert_eq!(serial.charge, par.charge);
        }
    }

    #[test]
    fn energy_grid_validation() {
        assert!(EnergyGrid::new(1.0, 0.0, 10).is_err());
        assert!(EnergyGrid::new(0.0, 1.0, 1).is_err());
        let g = EnergyGrid::new(0.0, 1.0, 11).unwrap();
        assert_eq!(g.len(), 11);
        assert!((g.step() - 0.1).abs() < 1e-14);
    }

    #[test]
    fn zero_bias_zero_current() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.5, 1.2, 30).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.3, 0.3, 300.0, &vec![0.0; atoms])
            .unwrap();
        assert!(r.current_a.abs() < 1e-12);
    }

    #[test]
    fn ballistic_conductance_single_mode() {
        // With mu window fully inside the first subband, I = (2e^2/h) V.
        let gnr = AGnr::new(9).unwrap();
        let ec = gnr.band_structure(96).unwrap().conduction_edge();
        let solver = ideal(9, 4);
        let v = 0.05;
        let mu1 = ec + 0.15;
        let mu2 = mu1 - v;
        let grid = EnergyGrid::new(mu2 - 0.25, mu1 + 0.25, 160).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r =
            integrate_transport(&ctx(), &solver, &grid, mu1, mu2, 77.0, &vec![0.0; atoms]).unwrap();
        let g0 = gnr_num::consts::G_QUANTUM;
        let g = r.current_a / v;
        assert!((g - g0).abs() / g0 < 0.05, "G = {g} vs G0 = {g0}");
    }

    #[test]
    fn current_reverses_with_bias() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let fwd = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        let rev = integrate_transport(&ctx(), &solver, &grid, 0.8, 1.0, 300.0, &zeros).unwrap();
        assert!(fwd.current_a > 0.0);
        assert!((fwd.current_a + rev.current_a).abs() < 1e-9 * fwd.current_a.abs().max(1e-18));
    }

    #[test]
    fn charge_profile_neutral_device() {
        // Fermi level at midgap: electrons and holes balance.
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &vec![0.0; atoms])
            .unwrap();
        // Integration-window truncation leaves a small residual; net charge
        // per atom should be tiny compared to the separate e/h populations.
        let n_tot: f64 = r.charge.electrons.iter().sum();
        let p_tot: f64 = r.charge.holes.iter().sum();
        assert!(
            (n_tot - p_tot).abs() < 0.15 * (n_tot + p_tot).max(1e-6),
            "n {n_tot} p {p_tot}"
        );
    }

    #[test]
    fn raising_fermi_level_accumulates_electrons() {
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let neutral = integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &zeros).unwrap();
        let ntype = integrate_transport(&ctx(), &solver, &grid, 0.5, 0.5, 300.0, &zeros).unwrap();
        assert!(ntype.charge.total() < neutral.charge.total() - 0.01);
    }

    #[test]
    fn per_layer_charge_sums_to_total() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(-1.2, 1.2, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.2, 0.0, 300.0, &vec![0.0; atoms])
            .unwrap();
        let per_layer = r.charge.per_layer(solver.layer_dim());
        assert_eq!(per_layer.len(), 3);
        let s: f64 = per_layer.iter().sum();
        assert!((s - r.charge.total()).abs() < 1e-12);
    }

    #[test]
    fn neutral_length_validated() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.0, 1.0, 10).unwrap();
        assert!(integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &[0.0; 3]).is_err());
    }

    #[test]
    fn with_step_picks_closest_spacing() {
        let g = EnergyGrid::with_step(-0.5, 0.5, 0.1).unwrap();
        assert_eq!(g.len(), 11);
        assert!((g.step() - 0.1).abs() < 1e-14);
        assert!(EnergyGrid::with_step(0.0, 1.0, 0.0).is_err());
        assert!(EnergyGrid::with_step(0.0, 1.0, -0.1).is_err());
        // A step wider than the range degrades to a single interval.
        assert_eq!(EnergyGrid::with_step(0.0, 0.01, 0.1).unwrap().len(), 2);
    }

    #[test]
    fn default_options_route_through_legacy_bitwise() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 31).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let legacy = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        let via_opts = integrate_transport_with(
            &ctx(),
            &solver,
            &grid,
            &TransportOptions::legacy(),
            1.0,
            0.8,
            300.0,
            &zeros,
        )
        .unwrap();
        assert_eq!(legacy.current_a.to_bits(), via_opts.current_a.to_bits());
        assert_eq!(legacy.transmission, via_opts.transmission);
        assert_eq!(legacy.charge, via_opts.charge);
    }

    #[test]
    fn cached_uniform_matches_legacy_closely() {
        // Cache-served sigmas differ from fresh ones only through the key
        // snapping (≤ half a quantum ≈ 6e-8 eV), far below eta.
        let solver = ideal(9, 4);
        let grid = EnergyGrid::new(0.4, 1.4, 41).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let legacy = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        let opts = TransportOptions::legacy().with_cache(Arc::new(SurfaceGfCache::new()));
        let cached =
            integrate_transport_with(&ctx(), &solver, &grid, &opts, 1.0, 0.8, 300.0, &zeros)
                .unwrap();
        let scale = legacy.current_a.abs().max(1e-18);
        assert!(
            (legacy.current_a - cached.current_a).abs() / scale < 1e-6,
            "legacy {} cached {}",
            legacy.current_a,
            cached.current_a
        );
        for (l, c) in legacy.transmission.iter().zip(&cached.transmission) {
            assert_eq!(l.0.to_bits(), c.0.to_bits());
            assert!((l.1 - c.1).abs() < 1e-6);
        }
    }

    #[test]
    fn adaptive_refinement_matches_dense_uniform_current() {
        // Coarse base + refinement must reproduce a dense uniform grid's
        // current through the first subband edge.
        let gnr = AGnr::new(9).unwrap();
        let ec = gnr.band_structure(96).unwrap().conduction_edge();
        let solver = ideal(9, 4);
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let (mu1, mu2) = (ec + 0.12, ec - 0.08);
        let dense = EnergyGrid::new(ec - 0.3, ec + 0.3, 241).unwrap();
        let reference =
            integrate_transport(&ctx(), &solver, &dense, mu1, mu2, 300.0, &zeros).unwrap();
        let coarse = EnergyGrid::new(ec - 0.3, ec + 0.3, 16).unwrap();
        let opts = TransportOptions::legacy().with_refine(RefineOptions {
            tol_t: 0.02,
            max_depth: 7,
            ..RefineOptions::default()
        });
        let adaptive =
            integrate_transport_with(&ctx(), &solver, &coarse, &opts, mu1, mu2, 300.0, &zeros)
                .unwrap();
        assert!(
            adaptive.transmission.len() > coarse.len(),
            "refinement must add points"
        );
        assert!(
            adaptive.transmission.len() < dense.len(),
            "adaptive should stay cheaper than dense"
        );
        let scale = reference.current_a.abs().max(1e-18);
        assert!(
            (reference.current_a - adaptive.current_a).abs() / scale < 2e-3,
            "dense {} adaptive {}",
            reference.current_a,
            adaptive.current_a
        );
        // Samples stay sorted and unique after the merges.
        for w in adaptive.transmission.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn accelerated_path_bit_identical_across_thread_counts() {
        let gnr = AGnr::new(9).unwrap();
        let ec = gnr.band_structure(96).unwrap().conduction_edge();
        let solver = ideal(9, 3);
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let grid = EnergyGrid::new(ec - 0.25, ec + 0.25, 14).unwrap();
        let run = |threads: usize| {
            let cache = Arc::new(SurfaceGfCache::new());
            let opts = TransportOptions::accelerated(cache);
            integrate_transport_with(
                &ExecCtx::with_threads(threads),
                &solver,
                &grid,
                &opts,
                ec + 0.1,
                ec - 0.05,
                300.0,
                &zeros,
            )
            .unwrap()
        };
        let serial = run(1);
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(
                serial.current_a.to_bits(),
                par.current_a.to_bits(),
                "threads={threads}"
            );
            assert_eq!(serial.transmission, par.transmission);
            assert_eq!(serial.charge, par.charge);
        }
    }
}
