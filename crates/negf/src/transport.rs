//! Landauer current and charge integration over energy.
//!
//! For a ballistic two-terminal device the electron correlation function
//! splits exactly into contact-resolved spectral pieces,
//! `Gⁿ = A₁ f₁ + A₂ f₂`, so the charge at atom *i* and the terminal current
//! are energy integrals over the [`SpectralSlice`](crate::rgf::SpectralSlice)
//! data produced by the RGF sweeps:
//!
//! ```text
//! n_i = ∫ dE/2π [A₁,ii f₁ + A₂,ii f₂]          (E above the local midgap)
//! p_i = ∫ dE/2π [A₁,ii (1−f₁) + A₂,ii (1−f₂)]  (E below the local midgap)
//! I   = (2e/h)·q ∫ dE T(E) [f₁ − f₂]
//! ```

use crate::error::NegfError;
use crate::rgf::RgfSolver;
use gnr_num::consts::LANDAUER_2E_OVER_H;
use gnr_num::fermi::fermi;
use gnr_num::quad::trapezoid_samples;

/// A uniform energy grid for transport integrals (eV).
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyGrid {
    lo: f64,
    hi: f64,
    points: usize,
}

impl EnergyGrid {
    /// Creates a grid of `points ≥ 2` energies spanning `[lo, hi]` eV.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] for a degenerate range or fewer than
    /// two points.
    pub fn new(lo: f64, hi: f64, points: usize) -> Result<Self, NegfError> {
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(NegfError::Config {
                detail: format!("energy range [{lo}, {hi}] is empty"),
            });
        }
        if points < 2 {
            return Err(NegfError::Config {
                detail: "energy grid needs at least 2 points".into(),
            });
        }
        Ok(EnergyGrid { lo, hi, points })
    }

    /// Grid spacing (eV).
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.points - 1) as f64
    }

    /// The energies of the grid.
    pub fn energies(&self) -> Vec<f64> {
        (0..self.points)
            .map(|i| self.lo + self.step() * i as f64)
            .collect()
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// `false`: a valid grid has ≥ 2 points.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Net charge per atom (units of the elementary charge `q`; electrons
/// contribute negatively, holes positively).
#[derive(Clone, Debug, PartialEq)]
pub struct ChargeProfile {
    /// Per-atom net charge `p_i − n_i` in units of q.
    pub net: Vec<f64>,
    /// Per-atom electron occupation `n_i`.
    pub electrons: Vec<f64>,
    /// Per-atom hole occupation `p_i`.
    pub holes: Vec<f64>,
}

impl ChargeProfile {
    /// Total net charge of the device in units of q.
    pub fn total(&self) -> f64 {
        self.net.iter().sum()
    }

    /// Charge summed per layer (for coupling back into a coarser Poisson
    /// mesh), given the layer block size.
    ///
    /// # Panics
    ///
    /// Panics if `layer_dim` does not divide the atom count.
    pub fn per_layer(&self, layer_dim: usize) -> Vec<f64> {
        assert_eq!(self.net.len() % layer_dim, 0);
        self.net
            .chunks(layer_dim)
            .map(|chunk| chunk.iter().sum())
            .collect()
    }
}

/// Result of a bias-point transport calculation.
#[derive(Clone, Debug)]
pub struct TransportResult {
    /// Terminal current \[A\] (positive from contact 2 into contact 1 for
    /// `mu1 > mu2`).
    pub current_a: f64,
    /// Transmission sampled on the integration grid.
    pub transmission: Vec<(f64, f64)>,
    /// Self-consistent charge profile.
    pub charge: ChargeProfile,
}

/// Integrates current and charge for the device bound to `solver`, with
/// source/drain Fermi levels `mu1`/`mu2` (eV), temperature `t_kelvin`, and
/// the per-atom local midgap reference `neutral_ev` that splits electron
/// from hole occupation (normally the local electrostatic potential).
///
/// # Errors
///
/// Propagates RGF failures, and returns [`NegfError::Config`] if
/// `neutral_ev` has the wrong length.
pub fn integrate_transport(
    solver: &RgfSolver,
    grid: &EnergyGrid,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    neutral_ev: &[f64],
) -> Result<TransportResult, NegfError> {
    let atoms = solver.layers() * solver.layer_dim();
    if neutral_ev.len() != atoms {
        return Err(NegfError::Config {
            detail: format!(
                "neutral point has {} entries for {} atoms",
                neutral_ev.len(),
                atoms
            ),
        });
    }
    let energies = grid.energies();
    let mut t_of_e = Vec::with_capacity(energies.len());
    let mut current_kernel = Vec::with_capacity(energies.len());
    let mut electrons = vec![0.0; atoms];
    let mut holes = vec![0.0; atoms];
    let two_pi = 2.0 * std::f64::consts::PI;
    let de = grid.step();

    for &e in &energies {
        let slice = solver.spectral_slice(e)?;
        let f1 = fermi(e, mu1, t_kelvin);
        let f2 = fermi(e, mu2, t_kelvin);
        t_of_e.push((e, slice.transmission));
        current_kernel.push(slice.transmission * (f1 - f2));
        for i in 0..atoms {
            let filled = slice.a1_diag[i] * f1 + slice.a2_diag[i] * f2;
            let empty = slice.a1_diag[i] * (1.0 - f1) + slice.a2_diag[i] * (1.0 - f2);
            if e >= neutral_ev[i] {
                electrons[i] += filled / two_pi * de;
            } else {
                holes[i] += empty / two_pi * de;
            }
        }
    }
    let current_a = LANDAUER_2E_OVER_H * trapezoid_samples(&current_kernel, de);
    let net: Vec<f64> = holes.iter().zip(&electrons).map(|(p, n)| p - n).collect();
    Ok(TransportResult {
        current_a,
        transmission: t_of_e,
        charge: ChargeProfile {
            net,
            electrons,
            holes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::Lead;
    use gnr_lattice::{AGnr, DeviceHamiltonian};

    fn ideal(n: usize, cells: usize) -> RgfSolver {
        let gnr = AGnr::new(n).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
        RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
    }

    #[test]
    fn energy_grid_validation() {
        assert!(EnergyGrid::new(1.0, 0.0, 10).is_err());
        assert!(EnergyGrid::new(0.0, 1.0, 1).is_err());
        let g = EnergyGrid::new(0.0, 1.0, 11).unwrap();
        assert_eq!(g.len(), 11);
        assert!((g.step() - 0.1).abs() < 1e-14);
    }

    #[test]
    fn zero_bias_zero_current() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.5, 1.2, 30).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&solver, &grid, 0.3, 0.3, 300.0, &vec![0.0; atoms]).unwrap();
        assert!(r.current_a.abs() < 1e-12);
    }

    #[test]
    fn ballistic_conductance_single_mode() {
        // With mu window fully inside the first subband, I = (2e^2/h) V.
        let gnr = AGnr::new(9).unwrap();
        let ec = gnr.band_structure(96).unwrap().conduction_edge();
        let solver = ideal(9, 4);
        let v = 0.05;
        let mu1 = ec + 0.15;
        let mu2 = mu1 - v;
        let grid = EnergyGrid::new(mu2 - 0.25, mu1 + 0.25, 160).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&solver, &grid, mu1, mu2, 77.0, &vec![0.0; atoms]).unwrap();
        let g0 = gnr_num::consts::G_QUANTUM;
        let g = r.current_a / v;
        assert!((g - g0).abs() / g0 < 0.05, "G = {g} vs G0 = {g0}");
    }

    #[test]
    fn current_reverses_with_bias() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let fwd = integrate_transport(&solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        let rev = integrate_transport(&solver, &grid, 0.8, 1.0, 300.0, &zeros).unwrap();
        assert!(fwd.current_a > 0.0);
        assert!((fwd.current_a + rev.current_a).abs() < 1e-9 * fwd.current_a.abs().max(1e-18));
    }

    #[test]
    fn charge_profile_neutral_device() {
        // Fermi level at midgap: electrons and holes balance.
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&solver, &grid, 0.0, 0.0, 300.0, &vec![0.0; atoms]).unwrap();
        // Integration-window truncation leaves a small residual; net charge
        // per atom should be tiny compared to the separate e/h populations.
        let n_tot: f64 = r.charge.electrons.iter().sum();
        let p_tot: f64 = r.charge.holes.iter().sum();
        assert!(
            (n_tot - p_tot).abs() < 0.15 * (n_tot + p_tot).max(1e-6),
            "n {n_tot} p {p_tot}"
        );
    }

    #[test]
    fn raising_fermi_level_accumulates_electrons() {
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let neutral = integrate_transport(&solver, &grid, 0.0, 0.0, 300.0, &zeros).unwrap();
        let ntype = integrate_transport(&solver, &grid, 0.5, 0.5, 300.0, &zeros).unwrap();
        assert!(ntype.charge.total() < neutral.charge.total() - 0.01);
    }

    #[test]
    fn per_layer_charge_sums_to_total() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(-1.2, 1.2, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&solver, &grid, 0.2, 0.0, 300.0, &vec![0.0; atoms]).unwrap();
        let per_layer = r.charge.per_layer(solver.layer_dim());
        assert_eq!(per_layer.len(), 3);
        let s: f64 = per_layer.iter().sum();
        assert!((s - r.charge.total()).abs() < 1e-12);
    }

    #[test]
    fn neutral_length_validated() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.0, 1.0, 10).unwrap();
        assert!(integrate_transport(&solver, &grid, 0.0, 0.0, 300.0, &[0.0; 3]).is_err());
    }
}
