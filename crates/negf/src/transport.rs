//! Landauer current and charge integration over energy.
//!
//! For a ballistic two-terminal device the electron correlation function
//! splits exactly into contact-resolved spectral pieces,
//! `Gⁿ = A₁ f₁ + A₂ f₂`, so the charge at atom *i* and the terminal current
//! are energy integrals over the [`SpectralSlice`](crate::rgf::SpectralSlice)
//! data produced by the RGF sweeps:
//!
//! ```text
//! n_i = ∫ dE/2π [A₁,ii f₁ + A₂,ii f₂]          (E above the local midgap)
//! p_i = ∫ dE/2π [A₁,ii (1−f₁) + A₂,ii (1−f₂)]  (E below the local midgap)
//! I   = (2e/h)·q ∫ dE T(E) [f₁ − f₂]
//! ```

use crate::error::NegfError;
use crate::rgf::RgfSolver;
use gnr_num::consts::LANDAUER_2E_OVER_H;
use gnr_num::fermi::fermi;
use gnr_num::par::ExecCtx;
use gnr_num::quad::trapezoid_samples;
use gnr_num::TelemetryShard;

/// A uniform energy grid for transport integrals (eV).
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyGrid {
    lo: f64,
    hi: f64,
    points: usize,
}

impl EnergyGrid {
    /// Creates a grid of `points ≥ 2` energies spanning `[lo, hi]` eV.
    ///
    /// # Errors
    ///
    /// Returns [`NegfError::Config`] for a degenerate range or fewer than
    /// two points.
    pub fn new(lo: f64, hi: f64, points: usize) -> Result<Self, NegfError> {
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(NegfError::Config {
                detail: format!("energy range [{lo}, {hi}] is empty"),
            });
        }
        if points < 2 {
            return Err(NegfError::Config {
                detail: "energy grid needs at least 2 points".into(),
            });
        }
        Ok(EnergyGrid { lo, hi, points })
    }

    /// Grid spacing (eV).
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.points - 1) as f64
    }

    /// The `i`-th grid energy (eV).
    pub fn energy(&self, i: usize) -> f64 {
        self.lo + self.step() * i as f64
    }

    /// Iterator over the grid energies (no allocation).
    pub fn energies(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.points).map(|i| self.energy(i))
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// `false`: a valid grid has ≥ 2 points.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Net charge per atom (units of the elementary charge `q`; electrons
/// contribute negatively, holes positively).
#[derive(Clone, Debug, PartialEq)]
pub struct ChargeProfile {
    /// Per-atom net charge `p_i − n_i` in units of q.
    pub net: Vec<f64>,
    /// Per-atom electron occupation `n_i`.
    pub electrons: Vec<f64>,
    /// Per-atom hole occupation `p_i`.
    pub holes: Vec<f64>,
}

impl ChargeProfile {
    /// Total net charge of the device in units of q.
    pub fn total(&self) -> f64 {
        self.net.iter().sum()
    }

    /// Charge summed per layer (for coupling back into a coarser Poisson
    /// mesh), given the layer block size.
    ///
    /// # Panics
    ///
    /// Panics if `layer_dim` does not divide the atom count.
    pub fn per_layer(&self, layer_dim: usize) -> Vec<f64> {
        assert_eq!(self.net.len() % layer_dim, 0);
        self.net
            .chunks(layer_dim)
            .map(|chunk| chunk.iter().sum())
            .collect()
    }
}

/// Result of a bias-point transport calculation.
#[derive(Clone, Debug)]
pub struct TransportResult {
    /// Terminal current \[A\] (positive from contact 2 into contact 1 for
    /// `mu1 > mu2`).
    pub current_a: f64,
    /// Transmission sampled on the integration grid.
    pub transmission: Vec<(f64, f64)>,
    /// Self-consistent charge profile.
    pub charge: ChargeProfile,
}

/// One energy point's contribution, computed independently on a pool
/// worker and folded into the running integrals during the ordered merge.
struct EnergySample {
    e: f64,
    transmission: f64,
    kernel: f64,
    filled: Vec<f64>,
    empty: Vec<f64>,
    /// Worker-local telemetry deltas, applied during the ordered merge so
    /// metric aggregation follows the same index order as the data.
    shard: TelemetryShard,
}

/// Integrates current and charge for the device bound to `solver`, with
/// source/drain Fermi levels `mu1`/`mu2` (eV), temperature `t_kelvin`, and
/// the per-atom local midgap reference `neutral_ev` that splits electron
/// from hole occupation (normally the local electrostatic potential).
///
/// The energy loop runs on `ctx`'s thread pool: each grid point's RGF
/// spectral slice is independent, and the per-energy contributions are
/// merged serially in energy order, so the result is bit-identical to the
/// serial loop for any thread count.
///
/// # Errors
///
/// Propagates RGF failures, and returns [`NegfError::Config`] if
/// `neutral_ev` has the wrong length.
pub fn integrate_transport(
    ctx: &ExecCtx,
    solver: &RgfSolver,
    grid: &EnergyGrid,
    mu1: f64,
    mu2: f64,
    t_kelvin: f64,
    neutral_ev: &[f64],
) -> Result<TransportResult, NegfError> {
    let atoms = solver.layers() * solver.layer_dim();
    if neutral_ev.len() != atoms {
        return Err(NegfError::Config {
            detail: format!(
                "neutral point has {} entries for {} atoms",
                neutral_ev.len(),
                atoms
            ),
        });
    }
    let two_pi = 2.0 * std::f64::consts::PI;
    let de = grid.step();
    ctx.counter_inc("negf.transport.integrations");

    let samples =
        ctx.try_par_map_indexed(grid.len(), |idx| -> Result<EnergySample, NegfError> {
            let mut shard = TelemetryShard::for_sink(ctx.telemetry());
            let e = grid.energy(idx);
            let slice = solver.spectral_slice(e)?;
            shard.counter_inc("negf.energy_points");
            let f1 = fermi(e, mu1, t_kelvin);
            let f2 = fermi(e, mu2, t_kelvin);
            let mut filled = Vec::with_capacity(atoms);
            let mut empty = Vec::with_capacity(atoms);
            for i in 0..atoms {
                filled.push(slice.a1_diag[i] * f1 + slice.a2_diag[i] * f2);
                empty.push(slice.a1_diag[i] * (1.0 - f1) + slice.a2_diag[i] * (1.0 - f2));
            }
            Ok(EnergySample {
                e,
                transmission: slice.transmission,
                kernel: slice.transmission * (f1 - f2),
                filled,
                empty,
                shard,
            })
        })?;

    // Ordered serial merge: identical accumulation order and arithmetic to
    // the original serial energy loop (telemetry shards included).
    let mut t_of_e = Vec::with_capacity(grid.len());
    let mut current_kernel = Vec::with_capacity(grid.len());
    let mut electrons = vec![0.0; atoms];
    let mut holes = vec![0.0; atoms];
    for s in samples {
        t_of_e.push((s.e, s.transmission));
        current_kernel.push(s.kernel);
        for i in 0..atoms {
            if s.e >= neutral_ev[i] {
                electrons[i] += s.filled[i] / two_pi * de;
            } else {
                holes[i] += s.empty[i] / two_pi * de;
            }
        }
        s.shard.merge_into(ctx.telemetry());
    }
    let current_a = LANDAUER_2E_OVER_H * trapezoid_samples(&current_kernel, de);
    let net: Vec<f64> = holes.iter().zip(&electrons).map(|(p, n)| p - n).collect();
    Ok(TransportResult {
        current_a,
        transmission: t_of_e,
        charge: ChargeProfile {
            net,
            electrons,
            holes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::Lead;
    use gnr_lattice::{AGnr, DeviceHamiltonian};

    fn ideal(n: usize, cells: usize) -> RgfSolver {
        let gnr = AGnr::new(n).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
        RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
    }

    fn ctx() -> ExecCtx {
        ExecCtx::serial()
    }

    #[test]
    fn energy_grid_iterator_matches_closed_form() {
        let g = EnergyGrid::new(-0.5, 1.0, 16).unwrap();
        let es: Vec<f64> = g.energies().collect();
        assert_eq!(es.len(), g.len());
        for (i, &e) in es.iter().enumerate() {
            assert_eq!(e.to_bits(), g.energy(i).to_bits());
        }
        assert_eq!(es[0], -0.5);
        assert!((es[15] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_transport_bit_identical_to_serial() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 37).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let serial = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        for threads in [2, 4] {
            let par = integrate_transport(
                &ExecCtx::with_threads(threads),
                &solver,
                &grid,
                1.0,
                0.8,
                300.0,
                &zeros,
            )
            .unwrap();
            assert_eq!(
                serial.current_a.to_bits(),
                par.current_a.to_bits(),
                "threads={threads}"
            );
            assert_eq!(serial.transmission, par.transmission);
            assert_eq!(serial.charge, par.charge);
        }
    }

    #[test]
    fn energy_grid_validation() {
        assert!(EnergyGrid::new(1.0, 0.0, 10).is_err());
        assert!(EnergyGrid::new(0.0, 1.0, 1).is_err());
        let g = EnergyGrid::new(0.0, 1.0, 11).unwrap();
        assert_eq!(g.len(), 11);
        assert!((g.step() - 0.1).abs() < 1e-14);
    }

    #[test]
    fn zero_bias_zero_current() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.5, 1.2, 30).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.3, 0.3, 300.0, &vec![0.0; atoms])
            .unwrap();
        assert!(r.current_a.abs() < 1e-12);
    }

    #[test]
    fn ballistic_conductance_single_mode() {
        // With mu window fully inside the first subband, I = (2e^2/h) V.
        let gnr = AGnr::new(9).unwrap();
        let ec = gnr.band_structure(96).unwrap().conduction_edge();
        let solver = ideal(9, 4);
        let v = 0.05;
        let mu1 = ec + 0.15;
        let mu2 = mu1 - v;
        let grid = EnergyGrid::new(mu2 - 0.25, mu1 + 0.25, 160).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r =
            integrate_transport(&ctx(), &solver, &grid, mu1, mu2, 77.0, &vec![0.0; atoms]).unwrap();
        let g0 = gnr_num::consts::G_QUANTUM;
        let g = r.current_a / v;
        assert!((g - g0).abs() / g0 < 0.05, "G = {g} vs G0 = {g0}");
    }

    #[test]
    fn current_reverses_with_bias() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.4, 1.4, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let fwd = integrate_transport(&ctx(), &solver, &grid, 1.0, 0.8, 300.0, &zeros).unwrap();
        let rev = integrate_transport(&ctx(), &solver, &grid, 0.8, 1.0, 300.0, &zeros).unwrap();
        assert!(fwd.current_a > 0.0);
        assert!((fwd.current_a + rev.current_a).abs() < 1e-9 * fwd.current_a.abs().max(1e-18));
    }

    #[test]
    fn charge_profile_neutral_device() {
        // Fermi level at midgap: electrons and holes balance.
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &vec![0.0; atoms])
            .unwrap();
        // Integration-window truncation leaves a small residual; net charge
        // per atom should be tiny compared to the separate e/h populations.
        let n_tot: f64 = r.charge.electrons.iter().sum();
        let p_tot: f64 = r.charge.holes.iter().sum();
        assert!(
            (n_tot - p_tot).abs() < 0.15 * (n_tot + p_tot).max(1e-6),
            "n {n_tot} p {p_tot}"
        );
    }

    #[test]
    fn raising_fermi_level_accumulates_electrons() {
        let solver = ideal(12, 4);
        let grid = EnergyGrid::new(-1.5, 1.5, 120).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let zeros = vec![0.0; atoms];
        let neutral = integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &zeros).unwrap();
        let ntype = integrate_transport(&ctx(), &solver, &grid, 0.5, 0.5, 300.0, &zeros).unwrap();
        assert!(ntype.charge.total() < neutral.charge.total() - 0.01);
    }

    #[test]
    fn per_layer_charge_sums_to_total() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(-1.2, 1.2, 60).unwrap();
        let atoms = solver.layers() * solver.layer_dim();
        let r = integrate_transport(&ctx(), &solver, &grid, 0.2, 0.0, 300.0, &vec![0.0; atoms])
            .unwrap();
        let per_layer = r.charge.per_layer(solver.layer_dim());
        assert_eq!(per_layer.len(), 3);
        let s: f64 = per_layer.iter().sum();
        assert!((s - r.charge.total()).abs() < 1e-12);
    }

    #[test]
    fn neutral_length_validated() {
        let solver = ideal(9, 3);
        let grid = EnergyGrid::new(0.0, 1.0, 10).unwrap();
        assert!(integrate_transport(&ctx(), &solver, &grid, 0.0, 0.0, 300.0, &[0.0; 3]).is_err());
    }
}
