//! Recursive Green's function (RGF) solver for block-tridiagonal devices.
//!
//! Works layer-by-layer so the cost scales linearly with device length and
//! cubically only in the layer width — the "efficient computational
//! algorithms [that] make routine device simulation possible on a personal
//! computer" the paper refers to.
//!
//! Conventions: layers `0..L`, contact 1 (source) attached to layer 0,
//! contact 2 (drain) to layer `L−1`. `A(E) = (E + iη)I − H − Σ` is the
//! inverse Green's function; its blocks are
//! `D_l = (E + iη)I − H_l − δ_{l,0}Σ₁ − δ_{l,L−1}Σ₂`, `U = −H01`, `L = −H10`.

use crate::cache::{LeadSlot, Lookup, SurfaceGfCache};
use crate::error::NegfError;
use crate::lead::{broadening, surface_gf, Lead, DEFAULT_ETA, SURFACE_GF_MAX_ITER};
use gnr_lattice::DeviceHamiltonian;
use gnr_num::budget::ExecLimits;
use gnr_num::par::ExecCtx;
use gnr_num::telemetry;
use gnr_num::TelemetryShard;
use gnr_num::{c64, CMatrix};
use std::collections::HashSet;
use std::sync::Arc;

/// Small imaginary part added to the energy for retarded boundary behaviour.
pub const RGF_ETA: f64 = 1e-6;

/// Per-energy transport quantities resolved by the RGF sweeps.
#[derive(Clone, Debug)]
pub struct SpectralSlice {
    /// Energy (eV).
    pub energy: f64,
    /// Transmission `T(E) = Tr[Γ₂ G_{L−1,0} Γ₁ G_{L−1,0}†]`.
    pub transmission: f64,
    /// Diagonal of the source-injected spectral function `A₁ = GΓ₁G†`,
    /// one entry per atom (units 1/eV after the 2π normalization applied
    /// by the charge integrator).
    pub a1_diag: Vec<f64>,
    /// Diagonal of the drain-injected spectral function `A₂`.
    pub a2_diag: Vec<f64>,
}

impl SpectralSlice {
    /// Local density of states per atom, `(A₁ + A₂)/2π` (states/eV).
    pub fn ldos(&self) -> Vec<f64> {
        self.a1_diag
            .iter()
            .zip(&self.a2_diag)
            .map(|(a, b)| (a + b) / (2.0 * std::f64::consts::PI))
            .collect()
    }
}

/// Full per-layer spectral blocks resolved by the RGF sweeps — the matrix
/// form of [`SpectralSlice`], needed when the solve runs in a transformed
/// basis and the diagonals only become physical after rotating back.
#[derive(Clone, Debug)]
pub(crate) struct SpectralBlocks {
    pub(crate) energy: f64,
    pub(crate) transmission: f64,
    /// Per-layer source-injected spectral blocks `A₁(l) = G_{l,0}Γ₁G_{l,0}†`.
    pub(crate) a1: Vec<CMatrix>,
    /// Per-layer drain-injected spectral blocks `A₂(l)`.
    pub(crate) a2: Vec<CMatrix>,
}

impl SpectralBlocks {
    /// Collapses the blocks to their clamped real diagonals — the same
    /// arithmetic (and bit pattern) as the direct diagonal assembly.
    pub(crate) fn into_slice(self) -> SpectralSlice {
        let m = self.a1.first().map_or(0, CMatrix::rows);
        let mut a1_diag = Vec::with_capacity(self.a1.len() * m);
        let mut a2_diag = Vec::with_capacity(self.a2.len() * m);
        for (a1, a2) in self.a1.iter().zip(&self.a2) {
            for i in 0..m {
                a1_diag.push(a1.get(i, i).re.max(0.0));
                a2_diag.push(a2.get(i, i).re.max(0.0));
            }
        }
        SpectralSlice {
            energy: self.energy,
            transmission: self.transmission,
            a1_diag,
            a2_diag,
        }
    }
}

/// Recursive Green's-function solver bound to one device Hamiltonian and a
/// pair of contact models.
#[derive(Clone, Debug)]
pub struct RgfSolver {
    diag: Vec<CMatrix>,
    h01: CMatrix,
    h10: CMatrix,
    lead1: Lead,
    lead2: Lead,
    /// Bare lead blocks for self-energy evaluation (unshifted ribbon cell).
    lead_h00: CMatrix,
    lead_h01: CMatrix,
}

impl RgfSolver {
    /// Binds a solver to `h` with source lead `lead1` (layer 0 side) and
    /// drain lead `lead2` (last layer side).
    pub fn new(h: &DeviceHamiltonian, lead1: Lead, lead2: Lead) -> Self {
        let (lead_h00, lead_h01) = gnr_lattice::unit_cell_hamiltonian(h.gnr());
        RgfSolver {
            diag: (0..h.layers()).map(|l| h.diag_block(l).clone()).collect(),
            h01: h.coupling_block().clone(),
            h10: h.coupling_block().adjoint(),
            lead1,
            lead2,
            lead_h00,
            lead_h01,
        }
    }

    /// Binds a solver to explicit blocks — the hook the mode-space path
    /// uses to run the identical RGF/Sancho–Rubio machinery on reduced
    /// (basis-transformed) blocks. `diag` holds one square block per
    /// layer, `h01` the inter-layer coupling, and `lead_h00`/`lead_h01`
    /// the periodic lead cell in the same basis.
    pub(crate) fn from_blocks(
        diag: Vec<CMatrix>,
        h01: CMatrix,
        lead1: Lead,
        lead2: Lead,
        lead_h00: CMatrix,
        lead_h01: CMatrix,
    ) -> Self {
        RgfSolver {
            h10: h01.adjoint(),
            diag,
            h01,
            lead1,
            lead2,
            lead_h00,
            lead_h01,
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.diag.len()
    }

    /// Layer block dimension.
    pub fn layer_dim(&self) -> usize {
        self.h01.rows()
    }

    pub(crate) fn contact_self_energies(
        &self,
        e: f64,
        limits: &ExecLimits,
    ) -> Result<(CMatrix, CMatrix), NegfError> {
        // Source lead grows towards -x: its inter-cell coupling (away from
        // the device) is H10, and the device couples into it through H10 as
        // well; mirror for the drain.
        let sigma1 = self
            .lead1
            .self_energy(e, &self.lead_h00, &self.h10, &self.h10, limits)?;
        let sigma2 =
            self.lead2
                .self_energy(e, &self.lead_h00, &self.lead_h01, &self.h01, limits)?;
        Ok((sigma1, sigma2))
    }

    /// The lead model, lead-internal coupling (towards the deeper cell,
    /// fixing the decimation direction), and device→lead hopping for one
    /// contact slot. The directions mirror [`Self::contact_self_energies`].
    fn lead_parts(&self, slot: LeadSlot) -> (&Lead, &CMatrix, &CMatrix) {
        match slot {
            LeadSlot::Source => (&self.lead1, &self.h10, &self.h10),
            LeadSlot::Drain => (&self.lead2, &self.lead_h01, &self.h01),
        }
    }

    /// Contact self-energy for `slot` at energy `e`, served through
    /// `cache`. GNR contacts are looked up at the quantized relative energy
    /// `E − potential` and the surface GF is evaluated at the *snapped*
    /// energy, so entries are exactly potential-independent; wide-band
    /// metal leads bypass the cache (their Σ is energy-independent and
    /// trivial). Hit/miss/fallback counters go through `shard` so the
    /// worker-shard merge keeps them deterministic.
    fn cached_self_energy(
        &self,
        cache: &SurfaceGfCache,
        slot: LeadSlot,
        e: f64,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<CMatrix, NegfError> {
        let (lead, h01_dir, tau) = self.lead_parts(slot);
        let Lead::GnrContact { potential_ev } = *lead else {
            return lead.self_energy(e, &self.lead_h00, h01_dir, tau, limits);
        };
        let key = cache.key(e - potential_ev);
        let gs = match cache.lookup(slot, key) {
            Lookup::Hit(g) => {
                shard.counter_inc("negf.surface_cache.hit");
                g
            }
            Lookup::Evicted => {
                // Poisoned/evicted entry: fall back to a fresh Sancho–Rubio
                // solve at the same snapped energy (bit-identical value)
                // and heal the store.
                shard.counter_inc("negf.surface_cache.fallback");
                let g = Arc::new(surface_gf(
                    cache.snapped(key),
                    &self.lead_h00,
                    h01_dir,
                    DEFAULT_ETA,
                    SURFACE_GF_MAX_ITER,
                    limits,
                )?);
                cache.insert(slot, key, Arc::clone(&g));
                g
            }
            Lookup::Miss => {
                shard.counter_inc("negf.surface_cache.miss");
                let g = Arc::new(surface_gf(
                    cache.snapped(key),
                    &self.lead_h00,
                    h01_dir,
                    DEFAULT_ETA,
                    SURFACE_GF_MAX_ITER,
                    limits,
                )?);
                cache.insert_or_get(slot, key, g)
            }
        };
        let t1 = tau.matmul(&gs);
        Ok(t1.matmul(&tau.adjoint()))
    }

    /// Both contact self-energies at `e`, served through `cache`. The
    /// limits are threaded into any fresh Sancho–Rubio solve a cache miss
    /// triggers; pass [`ExecLimits::none`] (or `ctx.limits()`) when
    /// unbudgeted.
    ///
    /// # Errors
    ///
    /// Propagates surface-GF convergence failures and budget stops.
    pub fn cached_self_energies(
        &self,
        cache: &SurfaceGfCache,
        e: f64,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<(CMatrix, CMatrix), NegfError> {
        let sigma1 = self.cached_self_energy(cache, LeadSlot::Source, e, shard, limits)?;
        let sigma2 = self.cached_self_energy(cache, LeadSlot::Drain, e, shard, limits)?;
        Ok((sigma1, sigma2))
    }

    /// Deprecated alias of [`Self::cached_self_energies`], kept for one
    /// release: the base method now takes the execution limits directly.
    ///
    /// # Errors
    ///
    /// As [`Self::cached_self_energies`].
    #[deprecated(
        since = "0.1.0",
        note = "use `cached_self_energies` — it takes the limits directly"
    )]
    pub fn cached_self_energies_limited(
        &self,
        cache: &SurfaceGfCache,
        e: f64,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<(CMatrix, CMatrix), NegfError> {
        self.cached_self_energies(cache, e, shard, limits)
    }

    /// Serial pre-indexing pass for the determinism contract: collects the
    /// not-yet-cached `(slot, key)` pairs for `energies` in a fixed
    /// slot-major, energy-ascending order, solves them on `ctx`'s pool
    /// (index-ordered merge), and inserts them in that same order. The
    /// miss count is reported once, serially, to
    /// `negf.surface_cache.miss` — so the counter is bit-identical for any
    /// `GNR_THREADS` as long as primes and integrations sharing the cache
    /// are issued serially (the device-sweep pattern).
    ///
    /// Returns the number of fresh Sancho–Rubio solves performed. Metal
    /// leads have nothing to prime.
    ///
    /// # Errors
    ///
    /// Propagates surface-GF convergence failures.
    pub fn prime_surface_cache(
        &self,
        ctx: &ExecCtx,
        cache: &SurfaceGfCache,
        energies: &[f64],
    ) -> Result<usize, NegfError> {
        let mut pending: Vec<(LeadSlot, i64)> = Vec::new();
        let mut seen: HashSet<(LeadSlot, i64)> = HashSet::new();
        for slot in [LeadSlot::Source, LeadSlot::Drain] {
            let (lead, _, _) = self.lead_parts(slot);
            let Lead::GnrContact { potential_ev } = *lead else {
                continue;
            };
            for &e in energies {
                let key = cache.key(e - potential_ev);
                if seen.insert((slot, key)) && !cache.contains(slot, key) {
                    pending.push((slot, key));
                }
            }
        }
        if pending.is_empty() {
            return Ok(0);
        }
        ctx.counter_add("negf.surface_cache.miss", pending.len() as u64);
        let solved = ctx.try_par_map_indexed(pending.len(), |i| {
            let (slot, key) = pending[i];
            let (_, h01_dir, _) = self.lead_parts(slot);
            surface_gf(
                cache.snapped(key),
                &self.lead_h00,
                h01_dir,
                DEFAULT_ETA,
                SURFACE_GF_MAX_ITER,
                ctx.limits(),
            )
        })?;
        for (&(slot, key), gs) in pending.iter().zip(solved) {
            cache.insert(slot, key, Arc::new(gs));
        }
        Ok(pending.len())
    }

    /// Computes transmission and contact-resolved spectral functions at
    /// energy `e` (eV) with one forward and one backward RGF sweep. The
    /// limits are threaded into the lead surface-GF solves; pass
    /// [`ExecLimits::none`] (or `ctx.limits()`) when unbudgeted.
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures and budget stops.
    pub fn spectral_slice(&self, e: f64, limits: &ExecLimits) -> Result<SpectralSlice, NegfError> {
        let (sigma1, sigma2) = self.contact_self_energies(e, limits)?;
        self.spectral_slice_with_sigmas(e, &sigma1, &sigma2)
    }

    /// Deprecated alias of [`Self::spectral_slice`], kept for one release:
    /// the base method now takes the execution limits directly.
    ///
    /// # Errors
    ///
    /// As [`Self::spectral_slice`].
    #[deprecated(
        since = "0.1.0",
        note = "use `spectral_slice` — it takes the limits directly"
    )]
    pub fn spectral_slice_limited(
        &self,
        e: f64,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError> {
        self.spectral_slice(e, limits)
    }

    /// [`Self::spectral_slice`] with the contact self-energies served
    /// through `cache` instead of fresh Sancho–Rubio solves. The RGF sweeps
    /// themselves are byte-identical to the legacy path; only Σ provenance
    /// changes (cache entries are evaluated at the snapped relative energy,
    /// a perturbation far below `DEFAULT_ETA`).
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures and budget stops.
    pub fn spectral_slice_cached(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError> {
        let (sigma1, sigma2) = self.cached_self_energies(cache, e, shard, limits)?;
        self.spectral_slice_with_sigmas(e, &sigma1, &sigma2)
    }

    /// Deprecated alias of [`Self::spectral_slice_cached`], kept for one
    /// release: the base method now takes the execution limits directly.
    ///
    /// # Errors
    ///
    /// As [`Self::spectral_slice_cached`].
    #[deprecated(
        since = "0.1.0",
        note = "use `spectral_slice_cached` — it takes the limits directly"
    )]
    pub fn spectral_slice_cached_limited(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
        limits: &ExecLimits,
    ) -> Result<SpectralSlice, NegfError> {
        self.spectral_slice_cached(e, cache, shard, limits)
    }

    fn spectral_slice_with_sigmas(
        &self,
        e: f64,
        sigma1: &CMatrix,
        sigma2: &CMatrix,
    ) -> Result<SpectralSlice, NegfError> {
        Ok(self
            .spectral_blocks_with_sigmas(e, sigma1, sigma2)?
            .into_slice())
    }

    /// The full-block core of the RGF solve: identical sweeps to
    /// [`Self::spectral_slice_with_sigmas`], but keeping the per-layer
    /// spectral matrices instead of collapsing to diagonals.
    pub(crate) fn spectral_blocks_with_sigmas(
        &self,
        e: f64,
        sigma1: &CMatrix,
        sigma2: &CMatrix,
    ) -> Result<SpectralBlocks, NegfError> {
        telemetry::counter_inc("negf.rgf.calls");
        telemetry::counter_add("negf.rgf.sweeps", 2);
        let m = self.layer_dim();
        let nl = self.layers();
        let ez = c64(e, RGF_ETA);
        let gamma1 = broadening(sigma1);
        let gamma2 = broadening(sigma2);

        // D_l blocks, built once per energy and shared by both sweeps (the
        // sweeps subtract their connection corrections into a copy).
        let d_block = |l: usize| -> CMatrix {
            let mut d = CMatrix::from_fn(m, m, |i, j| -self.diag[l].get(i, j));
            for i in 0..m {
                d.add_to(i, i, ez);
            }
            if l == 0 {
                for i in 0..m {
                    for j in 0..m {
                        d.add_to(i, j, -sigma1.get(i, j));
                    }
                }
            }
            if l == nl - 1 {
                for i in 0..m {
                    for j in 0..m {
                        d.add_to(i, j, -sigma2.get(i, j));
                    }
                }
            }
            d
        };
        let d_blocks: Vec<CMatrix> = (0..nl).map(d_block).collect();

        // Left-connected sweep: gl[l] includes everything to the left.
        let mut gl: Vec<CMatrix> = Vec::with_capacity(nl);
        for (l, d_l) in d_blocks.iter().enumerate() {
            let mut d = d_l.clone();
            if l > 0 {
                // D_l - H10 gl[l-1] H01
                let corr = self.h10.matmul(&gl[l - 1]).matmul(&self.h01);
                d -= &corr;
            }
            gl.push(d.inverse()?);
        }
        // Right-connected sweep.
        let mut gr: Vec<CMatrix> = vec![CMatrix::zeros(0, 0); nl];
        for l in (0..nl).rev() {
            let mut d = d_blocks[l].clone();
            if l + 1 < nl {
                let corr = self.h01.matmul(&gr[l + 1]).matmul(&self.h10);
                d -= &corr;
            }
            gr[l] = d.inverse()?;
        }

        // First column of G: G_{0,0} = gr-corrected... G_{0,0} equals the
        // fully-connected inverse at layer 0, which is gr[0] with the left
        // boundary already in D_0 — i.e. gr[0] itself. Then
        // G_{l,0} = gr[l]·H10·G_{l-1,0}.
        let mut g_col1: Vec<CMatrix> = Vec::with_capacity(nl);
        g_col1.push(gr[0].clone());
        for l in 1..nl {
            let prev = &g_col1[l - 1];
            g_col1.push(gr[l].matmul(&self.h10).matmul(prev));
        }
        // Last column of G: G_{L-1,L-1} = gl[L-1]; G_{l,L-1} = gl[l]·H01·G_{l+1,L-1}.
        let mut g_coln: Vec<CMatrix> = vec![CMatrix::zeros(0, 0); nl];
        g_coln[nl - 1] = gl[nl - 1].clone();
        for l in (0..nl - 1).rev() {
            let next = g_coln[l + 1].clone();
            g_coln[l] = gl[l].matmul(&self.h01).matmul(&next);
        }

        // Transmission from the (L-1, 0) block.
        let g_n0 = &g_col1[nl - 1];
        let t_matrix = gamma2.matmul(g_n0).matmul(&gamma1).matmul(&g_n0.adjoint());
        let transmission = t_matrix.trace().re.max(0.0);

        // Spectral function blocks: A1(l) = G_{l,0} Γ1 G_{l,0}†,
        // A2(l) = G_{l,L-1} Γ2 G_{l,L-1}†.
        let mut a1 = Vec::with_capacity(nl);
        let mut a2 = Vec::with_capacity(nl);
        for l in 0..nl {
            a1.push(g_col1[l].matmul(&gamma1).matmul(&g_col1[l].adjoint()));
            a2.push(g_coln[l].matmul(&gamma2).matmul(&g_coln[l].adjoint()));
        }
        Ok(SpectralBlocks {
            energy: e,
            transmission,
            a1,
            a2,
        })
    }

    /// Transmission only (skips the spectral-function assembly work when
    /// just `T(E)` is needed).
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures.
    pub fn transmission(&self, e: f64) -> Result<f64, NegfError> {
        let (sigma1, sigma2) = self.contact_self_energies(e, &ExecLimits::none())?;
        self.transmission_with_sigmas(e, &sigma1, &sigma2)
    }

    /// [`Self::transmission`] with cache-served contact self-energies.
    ///
    /// # Errors
    ///
    /// Propagates lead and linear-algebra failures.
    pub fn transmission_cached(
        &self,
        e: f64,
        cache: &SurfaceGfCache,
        shard: &mut TelemetryShard,
    ) -> Result<f64, NegfError> {
        let (sigma1, sigma2) = self.cached_self_energies(cache, e, shard, &ExecLimits::none())?;
        self.transmission_with_sigmas(e, &sigma1, &sigma2)
    }

    fn transmission_with_sigmas(
        &self,
        e: f64,
        sigma1: &CMatrix,
        sigma2: &CMatrix,
    ) -> Result<f64, NegfError> {
        telemetry::counter_inc("negf.rgf.calls");
        telemetry::counter_add("negf.rgf.sweeps", 1);
        let m = self.layer_dim();
        let nl = self.layers();
        let ez = c64(e, RGF_ETA);
        let gamma1 = broadening(sigma1);
        let gamma2 = broadening(sigma2);

        // Left-connected sweep storing only the running surface block, plus
        // the accumulated product needed for G_{L-1,0}.
        let mut gl_prev: Option<CMatrix> = None;
        let mut gl_all: Vec<CMatrix> = Vec::with_capacity(nl);
        for l in 0..nl {
            let mut d = CMatrix::from_fn(m, m, |i, j| -self.diag[l].get(i, j));
            for i in 0..m {
                d.add_to(i, i, ez);
            }
            if l == 0 {
                d = &d - sigma1;
            }
            if l == nl - 1 {
                d = &d - sigma2;
            }
            if let Some(prev) = &gl_prev {
                let corr = self.h10.matmul(prev).matmul(&self.h01);
                d = &d - &corr;
            }
            let g = d.inverse()?;
            gl_all.push(g.clone());
            gl_prev = Some(g);
        }
        // G_{L-1,0} = gl[L-1] · Π_{l=L-2..0} (H10 · gl[l]).
        // Derivation: G_{i,0} = g_i H10 G_{i-1,0} with right-connected g_i;
        // equivalently build from the left-connected functions mirrored —
        // here we use the left-connected gl and the identity
        // G_{L-1,0} = gl[L-1] H10 gl[L-2] H10 ... gl[0] which holds because
        // layer L-1 already contains the full right boundary.
        let mut g_n0 = gl_all[nl - 1].clone();
        for l in (0..nl - 1).rev() {
            g_n0 = g_n0.matmul(&self.h10).matmul(&gl_all[l]);
        }
        let t_matrix = gamma2.matmul(&g_n0).matmul(&gamma1).matmul(&g_n0.adjoint());
        Ok(t_matrix.trace().re.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_lattice::{AGnr, DeviceHamiltonian};

    fn ideal_solver(n: usize, cells: usize) -> RgfSolver {
        let gnr = AGnr::new(n).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
        RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
    }

    #[test]
    fn ideal_ribbon_transmission_is_integer_mode_count() {
        let gnr = AGnr::new(9).unwrap();
        let bands = gnr.band_structure(96).unwrap();
        let edges = bands.conduction_subband_edges(2);
        let solver = ideal_solver(9, 5);
        // Just above the first subband edge: exactly one open mode.
        let t1 = solver.transmission(edges[0] + 0.03).unwrap();
        assert!((t1 - 1.0).abs() < 0.05, "T = {t1}");
        // In the gap: no modes.
        let t0 = solver.transmission(0.0).unwrap();
        assert!(t0 < 1e-3, "gap T = {t0}");
        // Above the second edge: two modes.
        let t2 = solver.transmission(edges[1] + 0.03).unwrap();
        assert!((t2 - 2.0).abs() < 0.1, "T = {t2}");
    }

    #[test]
    fn transmission_independent_of_ideal_device_length() {
        let e = {
            let bands = AGnr::new(9).unwrap().band_structure(96).unwrap();
            bands.conduction_edge() + 0.08
        };
        let t4 = ideal_solver(9, 4).transmission(e).unwrap();
        let t10 = ideal_solver(9, 10).transmission(e).unwrap();
        assert!((t4 - t10).abs() < 0.02, "{t4} vs {t10}");
    }

    #[test]
    fn spectral_slice_matches_dedicated_transmission() {
        let solver = ideal_solver(9, 4);
        let e = 0.9;
        let slice = solver.spectral_slice(e, &ExecLimits::none()).unwrap();
        let t = solver.transmission(e).unwrap();
        assert!((slice.transmission - t).abs() < 1e-8);
    }

    #[test]
    fn barrier_suppresses_transmission() {
        let gnr = AGnr::new(9).unwrap();
        let m = gnr.atoms_per_cell();
        let cells = 8;
        let e_probe = gnr.band_structure(96).unwrap().conduction_edge() + 0.05;
        // Potential barrier of 0.4 eV over the middle 4 cells pushes the
        // local band edge above the probe energy -> tunneling only.
        let mut pot = vec![0.0; m * cells];
        for l in 2..6 {
            for i in 0..m {
                pot[l * m + i] = 0.4;
            }
        }
        let h = DeviceHamiltonian::new(gnr, cells, &pot).unwrap();
        let solver = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact());
        let t_barrier = solver.transmission(e_probe).unwrap();
        let t_ideal = ideal_solver(9, 8).transmission(e_probe).unwrap();
        assert!(
            t_barrier < 0.2 * t_ideal,
            "barrier {t_barrier} vs ideal {t_ideal}"
        );
        assert!(t_barrier > 0.0, "tunneling is finite");
    }

    #[test]
    fn ldos_vanishes_in_gap_inside_device() {
        let solver = ideal_solver(12, 6);
        let slice = solver.spectral_slice(0.0, &ExecLimits::none()).unwrap();
        let ldos = slice.ldos();
        // Middle-layer atoms see only evanescent contact states.
        let m = 24;
        let mid = &ldos[3 * m..4 * m];
        assert!(mid.iter().all(|&v| v < 1e-2), "midgap LDOS {:?}", &mid[..4]);
    }

    #[test]
    fn spectral_functions_nonnegative() {
        let solver = ideal_solver(9, 4);
        let slice = solver.spectral_slice(1.1, &ExecLimits::none()).unwrap();
        assert!(slice.a1_diag.iter().all(|&v| v >= 0.0));
        assert!(slice.a2_diag.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn metal_leads_midgap_tunneling_decays_with_length() {
        // Metal-induced gap states tunnel across the gapped channel; the
        // midgap transmission must decay exponentially with channel length
        // while the in-band transmission stays order-one. This is exactly
        // the Schottky-barrier physics the paper's device relies on.
        let gnr = AGnr::new(12).unwrap();
        let t_of = |cells: usize, e: f64| {
            let h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
            RgfSolver::new(&h, Lead::metal(), Lead::metal())
                .transmission(e)
                .unwrap()
        };
        // Probe at E = 0.2 eV (inside the gap, away from the E ~ 0 end-state
        // resonance of the cut ribbon, whose peak transmission stays O(1)
        // while its linewidth shrinks with length).
        let t5 = t_of(5, 0.2);
        let t12 = t_of(12, 0.2);
        assert!(t12 < 0.2 * t5, "tunneling must decay: {t5} -> {t12}");
        let t_band = t_of(12, 1.0);
        assert!(t_band > 5.0 * t12, "band T {t_band} vs gap T {t12}");
    }

    #[test]
    fn sum_rule_a1_plus_a2_traces_total_dos() {
        // For a ballistic 2-terminal device A = A1 + A2; both spectral
        // pieces must therefore be bounded by the total LDOS and positive
        // where T is positive.
        let solver = ideal_solver(9, 4);
        let slice = solver.spectral_slice(0.95, &ExecLimits::none()).unwrap();
        let total_a1: f64 = slice.a1_diag.iter().sum();
        let total_a2: f64 = slice.a2_diag.iter().sum();
        assert!(total_a1 > 0.0 && total_a2 > 0.0);
        // Left/right symmetry of the ideal device.
        assert!(
            (total_a1 - total_a2).abs() / (total_a1 + total_a2) < 0.05,
            "a1 {total_a1} a2 {total_a2}"
        );
    }

    #[test]
    fn cached_slice_matches_legacy_within_snapping() {
        use gnr_num::Telemetry;
        let solver = ideal_solver(9, 4);
        let cache = SurfaceGfCache::new();
        let sink = Telemetry::isolated();
        let mut shard = TelemetryShard::for_sink(&sink);
        for &e in &[0.65, 0.9, 1.1] {
            let legacy = solver.spectral_slice(e, &ExecLimits::none()).unwrap();
            let cached = solver
                .spectral_slice_cached(e, &cache, &mut shard, &ExecLimits::none())
                .unwrap();
            assert!(
                (legacy.transmission - cached.transmission).abs() < 1e-6,
                "E={e}: {} vs {}",
                legacy.transmission,
                cached.transmission
            );
            for (a, b) in legacy.a1_diag.iter().zip(&cached.a1_diag) {
                assert!((a - b).abs() < 1e-4);
            }
            let t_legacy = solver.transmission(e).unwrap();
            let t_cached = solver.transmission_cached(e, &cache, &mut shard).unwrap();
            assert!((t_legacy - t_cached).abs() < 1e-6);
        }
        shard.merge_into(&sink);
        let snap = sink.snapshot();
        // 3 energies × 2 leads × 2 calls: first call misses, second hits.
        assert_eq!(snap.counter("negf.surface_cache.miss"), Some(6));
        assert_eq!(snap.counter("negf.surface_cache.hit"), Some(6));
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn priming_makes_all_lookups_hits() {
        use gnr_num::Telemetry;
        let solver = ideal_solver(9, 3);
        let cache = SurfaceGfCache::new();
        let energies: Vec<f64> = (0..8).map(|i| 0.6 + 0.05 * i as f64).collect();
        let sink = Telemetry::isolated();
        let ctx = ExecCtx::serial().with_telemetry(sink);
        let primed = solver.prime_surface_cache(&ctx, &cache, &energies).unwrap();
        assert_eq!(primed, 2 * energies.len());
        // Re-priming the same lattice is free.
        assert_eq!(
            solver.prime_surface_cache(&ctx, &cache, &energies).unwrap(),
            0
        );
        let mut shard = TelemetryShard::for_sink(ctx.telemetry());
        for &e in &energies {
            solver
                .spectral_slice_cached(e, &cache, &mut shard, &ExecLimits::none())
                .unwrap();
        }
        shard.merge_into(ctx.telemetry());
        let snap = ctx.telemetry().snapshot();
        assert_eq!(
            snap.counter("negf.surface_cache.miss"),
            Some(2 * energies.len() as u64)
        );
        assert_eq!(
            snap.counter("negf.surface_cache.hit"),
            Some(2 * energies.len() as u64)
        );
    }

    #[test]
    fn lead_potential_shift_reuses_cache_entries() {
        // The same relative energy reached from two bias points must map to
        // one entry per lead slot — the property that makes bias sweeps
        // cheap.
        let gnr = AGnr::new(9).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, 3).unwrap();
        let cache = SurfaceGfCache::new();
        let ctx = ExecCtx::serial();
        let vds = [0.0, 0.1, 0.2];
        let base: Vec<f64> = (0..10).map(|i| -0.5 + 0.1 * i as f64).collect();
        for &vd in &vds {
            let solver = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact_at(-vd));
            // Drain energies relative to the lead: e + vd, stepping on the
            // same 0.1 eV lattice -> all but one entry per new bias shared.
            let energies: Vec<f64> = base.iter().map(|e| e - vd).collect();
            solver.prime_surface_cache(&ctx, &cache, &energies).unwrap();
        }
        // Source slot: 10 + 1 + 1 new snapped energies (each bias shifts
        // the window by one step); drain slot: relative energies identical
        // across biases -> 10 entries total.
        assert_eq!(cache.len(), 12 + 10);
    }

    #[test]
    fn metal_leads_bypass_cache() {
        use gnr_num::Telemetry;
        let gnr = AGnr::new(9).unwrap();
        let h = DeviceHamiltonian::flat_band(gnr, 3).unwrap();
        let solver = RgfSolver::new(&h, Lead::metal(), Lead::metal());
        let cache = SurfaceGfCache::new();
        let ctx = ExecCtx::serial();
        assert_eq!(
            solver
                .prime_surface_cache(&ctx, &cache, &[0.1, 0.2])
                .unwrap(),
            0
        );
        let sink = Telemetry::isolated();
        let mut shard = TelemetryShard::for_sink(&sink);
        let legacy = solver.spectral_slice(0.3, &ExecLimits::none()).unwrap();
        let cached = solver
            .spectral_slice_cached(0.3, &cache, &mut shard, &ExecLimits::none())
            .unwrap();
        assert_eq!(
            legacy.transmission.to_bits(),
            cached.transmission.to_bits(),
            "metal sigmas are exact -> bitwise equal"
        );
        assert!(cache.is_empty());
        shard.merge_into(&sink);
        assert!(sink.snapshot().counter("negf.surface_cache.hit").is_none());
    }
}
