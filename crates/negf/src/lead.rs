//! Contact self-energies.
//!
//! Two lead models cover the paper's device:
//!
//! * **Semi-infinite GNR lead** — the exact surface Green's function of a
//!   periodic half-ribbon obtained with the Sancho–Rubio decimation
//!   iteration; used for ideal ribbon extensions and validation.
//! * **Wide-band metal lead** — an energy-independent `Σ = −i·γ/2·I` on the
//!   contact layer. Together with mid-gap Fermi-level pinning in the device
//!   potential this is the standard Schottky-barrier FET contact (paper §2:
//!   `Φ_Bn = Φ_Bp = E_g/2`).

use crate::error::NegfError;
use gnr_num::budget::ExecLimits;
use gnr_num::telemetry;
use gnr_num::{c64, CMatrix, Complex64};

/// Numerical broadening `η` added to the energy in surface-GF iterations.
pub const DEFAULT_ETA: f64 = 1e-5;

/// Iteration budget used for lead surface-GF solves (each iteration doubles
/// the decimated length, so 200 is far beyond any physical requirement).
pub const SURFACE_GF_MAX_ITER: usize = 200;

/// Default wide-band coupling strength for metal Schottky contacts (eV).
///
/// γ of a few hundred meV gives contact broadening comparable to the GNR
/// bandwidth fraction used in published SBFET simulations.
pub const DEFAULT_METAL_GAMMA: f64 = 0.5;

/// A contact (lead) model attached to one end of the device.
#[derive(Clone, Debug, PartialEq)]
pub enum Lead {
    /// Semi-infinite continuation of the ribbon itself, at the given
    /// electrostatic potential shift (eV) relative to the device zero.
    GnrContact {
        /// Rigid potential shift of the lead bands (eV).
        potential_ev: f64,
    },
    /// Wide-band-limit metal: `Σ = −i·γ/2` on every contact-layer orbital.
    WideBandMetal {
        /// Coupling strength γ (eV).
        gamma_ev: f64,
    },
}

impl Lead {
    /// A semi-infinite GNR contact at zero potential shift.
    pub fn gnr_contact() -> Self {
        Lead::GnrContact { potential_ev: 0.0 }
    }

    /// A semi-infinite GNR contact with a rigid band shift (eV).
    pub fn gnr_contact_at(potential_ev: f64) -> Self {
        Lead::GnrContact { potential_ev }
    }

    /// A wide-band metal contact with the default coupling.
    pub fn metal() -> Self {
        Lead::WideBandMetal {
            gamma_ev: DEFAULT_METAL_GAMMA,
        }
    }

    /// A wide-band metal contact with coupling `gamma_ev`.
    pub fn metal_with_gamma(gamma_ev: f64) -> Self {
        Lead::WideBandMetal { gamma_ev }
    }

    /// Retarded contact self-energy at energy `e` (eV) for a lead attached
    /// through coupling `tau` (the hopping block from the boundary device
    /// layer *into* the first lead cell); `h00`/`h01` describe the periodic
    /// lead itself.
    ///
    /// For the wide-band metal the result is diagonal and `tau` is unused.
    ///
    /// The Sancho–Rubio decimation probes `limits` each doubling (site
    /// `"negf.surface_gf"`); pass [`ExecLimits::none`] (or `ctx.limits()`
    /// from an unlimited context) for the plain unbudgeted call.
    ///
    /// # Errors
    ///
    /// Propagates surface-GF convergence failures and budget stops.
    pub fn self_energy(
        &self,
        e: f64,
        h00: &CMatrix,
        h01: &CMatrix,
        tau: &CMatrix,
        limits: &ExecLimits,
    ) -> Result<CMatrix, NegfError> {
        match *self {
            Lead::GnrContact { potential_ev } => {
                let m = h00.rows();
                let mut h00_shifted = h00.clone();
                for i in 0..m {
                    h00_shifted.add_to(i, i, c64(potential_ev, 0.0));
                }
                let gs = surface_gf(
                    e,
                    &h00_shifted,
                    h01,
                    DEFAULT_ETA,
                    SURFACE_GF_MAX_ITER,
                    limits,
                )?;
                // Σ = τ g_s τ†
                let t1 = tau.matmul(&gs);
                Ok(t1.matmul(&tau.adjoint()))
            }
            Lead::WideBandMetal { gamma_ev } => {
                let m = h00.rows();
                let mut sigma = CMatrix::zeros(m, m);
                let v = c64(0.0, -0.5 * gamma_ev);
                for i in 0..m {
                    sigma.set(i, i, v);
                }
                Ok(sigma)
            }
        }
    }

    /// Deprecated alias of [`Lead::self_energy`], kept for one release:
    /// the base method now takes the execution limits directly.
    ///
    /// # Errors
    ///
    /// As [`Lead::self_energy`].
    #[deprecated(
        since = "0.1.0",
        note = "use `self_energy` — it takes the limits directly"
    )]
    pub fn self_energy_limited(
        &self,
        e: f64,
        h00: &CMatrix,
        h01: &CMatrix,
        tau: &CMatrix,
        limits: &ExecLimits,
    ) -> Result<CMatrix, NegfError> {
        self.self_energy(e, h00, h01, tau, limits)
    }
}

/// Surface Green's function of a semi-infinite periodic lead growing in the
/// `+x` direction away from the device, computed by the Sancho–Rubio
/// decimation iteration (J. Phys. F 15, 851 (1985)).
///
/// `h00` is the intra-cell block, `h01` the coupling from one cell to the
/// next *deeper* cell. Convergence is quadratic: each iteration doubles the
/// effective decimated length.
///
/// The budget is probed at the top of every decimation doubling (site
/// `"negf.surface_gf"`), so a wedged lead solve cannot hold a pool worker
/// past its deadline. Pass [`ExecLimits::none`] (or `ctx.limits()` from an
/// unlimited context) for the plain unbudgeted call, bit for bit.
///
/// # Errors
///
/// Returns [`NegfError::SurfaceGf`] if the coupling norm fails to fall below
/// tolerance within `max_iter` doublings, propagates linear failures, and
/// surfaces budget stops via [`NegfError::Linear`].
pub fn surface_gf(
    e: f64,
    h00: &CMatrix,
    h01: &CMatrix,
    eta: f64,
    max_iter: usize,
    limits: &ExecLimits,
) -> Result<CMatrix, NegfError> {
    let m = h00.rows();
    let ez = c64(e, eta);
    let mut eye_e = CMatrix::zeros(m, m);
    for i in 0..m {
        eye_e.set(i, i, ez);
    }
    // eps_s: surface block; eps: bulk block; alpha/beta: decimated couplings.
    let mut eps_s = h00.clone();
    let mut eps = h00.clone();
    let mut alpha = h01.clone();
    let mut beta = h01.adjoint();
    let tol = 1e-12;
    for it in 0..max_iter {
        limits.check("negf.surface_gf")?;
        let a_norm = alpha.norm_fro();
        if a_norm < tol {
            telemetry::counter_inc("negf.sancho_rubio.calls");
            telemetry::counter_add("negf.sancho_rubio.iterations", it as u64);
            let ges = &eye_e - &eps_s;
            return Ok(ges.inverse()?);
        }
        let g = (&eye_e - &eps).inverse()?;
        // αg and βg each feed two products; computing them once halves the
        // per-iteration matmul count without changing a single FP op.
        let ag = alpha.matmul(&g);
        let bg = beta.matmul(&g);
        let agb = ag.matmul(&beta);
        let bga = bg.matmul(&alpha);
        eps_s += &agb;
        eps += &agb;
        eps += &bga;
        let new_alpha = ag.matmul(&alpha);
        let new_beta = bg.matmul(&beta);
        alpha = new_alpha;
        beta = new_beta;
    }
    Err(NegfError::SurfaceGf {
        iterations: max_iter,
        residual: alpha.norm_fro(),
    })
}

/// Deprecated alias of [`surface_gf`], kept for one release: the base
/// function now takes the execution limits directly.
///
/// # Errors
///
/// As [`surface_gf`].
#[deprecated(
    since = "0.1.0",
    note = "use `surface_gf` — it takes the limits directly"
)]
pub fn surface_gf_limited(
    e: f64,
    h00: &CMatrix,
    h01: &CMatrix,
    eta: f64,
    max_iter: usize,
    limits: &ExecLimits,
) -> Result<CMatrix, NegfError> {
    surface_gf(e, h00, h01, eta, max_iter, limits)
}

/// Broadening matrix `Γ = i(Σ − Σ†)` of a contact self-energy.
pub fn broadening(sigma: &CMatrix) -> CMatrix {
    let d = sigma - &sigma.adjoint();
    d.scale(Complex64::I)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×1 "lead": a 1D tight-binding chain with hopping t. The surface GF
    /// has the closed form g = (E - i sqrt(4t^2 - E^2)) / (2 t^2) inside the
    /// band |E| < 2|t| (retarded branch).
    fn chain_blocks(t: f64) -> (CMatrix, CMatrix) {
        let h00 = CMatrix::zeros(1, 1);
        let mut h01 = CMatrix::zeros(1, 1);
        h01.set(0, 0, c64(-t, 0.0));
        (h00, h01)
    }

    #[test]
    fn chain_surface_gf_matches_analytic_in_band() {
        let t = 1.0;
        let (h00, h01) = chain_blocks(t);
        for &e in &[0.0, 0.5, -1.2, 1.7] {
            // eta must be large enough to regularize the band-centre pole of
            // the decimation iteration; 1e-6 keeps the analytic error ~1e-5.
            let g = surface_gf(e, &h00, &h01, 1e-6, 400, &ExecLimits::none())
                .unwrap()
                .get(0, 0);
            let expect_re = e / (2.0 * t * t);
            let expect_im = -(4.0 * t * t - e * e).sqrt() / (2.0 * t * t);
            assert!(
                (g.re - expect_re).abs() < 1e-4,
                "E={e}: re {} vs {expect_re}",
                g.re
            );
            assert!(
                (g.im - expect_im).abs() < 1e-4,
                "E={e}: im {} vs {expect_im}",
                g.im
            );
        }
    }

    #[test]
    fn chain_surface_gf_real_outside_band() {
        let (h00, h01) = chain_blocks(1.0);
        let g = surface_gf(3.0, &h00, &h01, 1e-7, 400, &ExecLimits::none())
            .unwrap()
            .get(0, 0);
        assert!(g.im.abs() < 1e-3, "outside the band the DOS vanishes: {g}");
    }

    #[test]
    fn surface_gf_limited_stops_on_exhausted_budget() {
        use gnr_num::budget::Budget;
        let (h00, h01) = chain_blocks(1.0);
        // Two decimation doublings are nowhere near convergence at E = 0;
        // the third check trips and surfaces a typed budget error.
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(2));
        let err = surface_gf(0.0, &h00, &h01, 1e-6, 400, &limits).unwrap_err();
        assert!(
            err.to_string().contains("budget"),
            "expected budget stop, got: {err}"
        );
        // The deprecated shim reproduces the base call bit for bit.
        let plain = surface_gf(0.5, &h00, &h01, 1e-6, 400, &ExecLimits::none())
            .unwrap()
            .get(0, 0);
        #[allow(deprecated)]
        let limited = surface_gf_limited(0.5, &h00, &h01, 1e-6, 400, &ExecLimits::none())
            .unwrap()
            .get(0, 0);
        assert_eq!(plain.re.to_bits(), limited.re.to_bits());
        assert_eq!(plain.im.to_bits(), limited.im.to_bits());
    }

    #[test]
    fn gnr_lead_self_energy_is_retarded() {
        use gnr_lattice::{unit_cell_hamiltonian, AGnr};
        let gnr = AGnr::new(9).unwrap();
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let lead = Lead::gnr_contact();
        // tau from the device boundary layer into the lead = h01.
        let sigma = lead
            .self_energy(0.8, &h00, &h01, &h01, &ExecLimits::none())
            .unwrap();
        // Retarded: Gamma = i(Sigma - Sigma^+) is positive semidefinite; a
        // cheap proxy is that its trace (total broadening) is >= 0.
        let gamma = broadening(&sigma);
        assert!(gamma.trace().re >= -1e-9);
        assert!(gamma.trace().im.abs() < 1e-9);
    }

    #[test]
    fn gnr_lead_gapped_inside_gap() {
        use gnr_lattice::{unit_cell_hamiltonian, AGnr};
        let gnr = AGnr::new(12).unwrap();
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let lead = Lead::gnr_contact();
        // In the band gap — but away from E=0, where the cut armchair face
        // hosts physical end-localized states — the lead injects no
        // propagating states: Gamma ~ 0.
        let sigma = lead
            .self_energy(0.2, &h00, &h01, &h01, &ExecLimits::none())
            .unwrap();
        let g_gap = broadening(&sigma).trace().re;
        // Inside the band it injects orders of magnitude more.
        let sigma = lead
            .self_energy(1.0, &h00, &h01, &h01, &ExecLimits::none())
            .unwrap();
        let g_band = broadening(&sigma).trace().re;
        assert!(g_band > 0.1, "band broadening {g_band}");
        assert!(
            g_gap < 0.05 * g_band,
            "gap {g_gap} should be far below band {g_band}"
        );
    }

    #[test]
    fn lead_potential_shift_moves_band_edge() {
        use gnr_lattice::{unit_cell_hamiltonian, AGnr};
        let gnr = AGnr::new(12).unwrap();
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let bands = gnr.band_structure(64).unwrap();
        let ec = bands.conduction_edge();
        let probe = ec + 0.05;
        // Unshifted lead: probe is inside the conduction band -> broadening.
        let g0 = broadening(
            &Lead::gnr_contact()
                .self_energy(probe, &h00, &h01, &h01, &ExecLimits::none())
                .unwrap(),
        )
        .trace()
        .re;
        // Lead raised by +0.45 eV: probe now sits in the (shifted) gap at
        // ~-0.12 eV relative to the lead, away from the end-state energy.
        let g1 = broadening(
            &Lead::gnr_contact_at(0.45)
                .self_energy(probe, &h00, &h01, &h01, &ExecLimits::none())
                .unwrap(),
        )
        .trace()
        .re;
        assert!(g0 > 0.1 && g1 < 0.05 * g0, "g0={g0} g1={g1}");
    }

    #[test]
    fn metal_lead_diagonal() {
        let h00 = CMatrix::zeros(4, 4);
        let h01 = CMatrix::zeros(4, 4);
        let sigma = Lead::metal_with_gamma(0.4)
            .self_energy(0.1, &h00, &h01, &h01, &ExecLimits::none())
            .unwrap();
        for i in 0..4 {
            assert_eq!(sigma.get(i, i), c64(0.0, -0.2));
            for j in 0..4 {
                if i != j {
                    assert_eq!(sigma.get(i, j), Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn broadening_of_metal_lead() {
        let h00 = CMatrix::zeros(2, 2);
        let sigma = Lead::metal_with_gamma(0.6)
            .self_energy(0.0, &h00, &h00, &h00, &ExecLimits::none())
            .unwrap();
        let gamma = broadening(&sigma);
        assert!((gamma.get(0, 0).re - 0.6).abs() < 1e-14);
    }
}
