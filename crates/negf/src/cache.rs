//! Bias-sweep cache for Sancho–Rubio surface Green's functions.
//!
//! A [`Lead::GnrContact`](crate::lead::Lead) at potential `p` satisfies the
//! rigid-shift identity `g_s(E; H00 + p·I) = g_s(E − p; H00)`: the surface
//! Green's function depends only on the energy *relative to the lead
//! potential*. A bias sweep that re-solves the decimation iteration at every
//! `(E, bias)` point therefore recomputes the same matrices over and over —
//! the dominant cost of a `(Vg, Vd)` device-table build.
//!
//! [`SurfaceGfCache`] memoizes `g_s` keyed on that relative energy,
//! **quantized** to a fixed sub-grid-step quantum so float noise in
//! `E − p` (which differs in the last bits between bias points) cannot split
//! logically-identical entries. Every cached solve is evaluated at the
//! *snapped* relative energy `key · quantum`, so a stored value is exactly
//! potential-independent and bit-identical no matter which bias point
//! inserted it first. With the default quantum (2⁻²³ eV ≈ 0.12 µeV) the
//! snapping error is orders of magnitude below the `DEFAULT_ETA = 1e-5 eV`
//! broadening already applied inside the iteration.
//!
//! Determinism contract (DESIGN §9/§11): values are reproducible by
//! construction; hit/miss *counters* stay bit-identical across
//! `GNR_THREADS=1/2/4` when the cache is primed by the serial pre-indexing
//! path ([`RgfSolver::prime_surface_cache`](crate::rgf::RgfSolver)) and
//! integrations sharing one cache are issued serially (the device-sweep
//! pattern), mirroring the MC pre-draw pattern.
//!
//! The fault site [`FAULT_SITE`] models a poisoned or evicted entry: a probe
//! that fires makes the lookup report [`Lookup::Evicted`], forcing the
//! caller down the fresh Sancho–Rubio fallback path (which re-inserts the
//! healed entry).

use gnr_num::{fault, CMatrix};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Fault-injection site probed on every cache lookup of a GNR-contact lead.
pub const FAULT_SITE: &str = "negf.surface_cache";

/// Default key quantum: 2⁻²³ eV. Small enough that snapping is invisible
/// next to `DEFAULT_ETA`, large enough to absorb float noise in `E − p`.
pub const DEFAULT_KEY_QUANTUM_EV: f64 = 1.0 / ((1u64 << 23) as f64);

/// Which contact a cached surface Green's function belongs to. The two
/// slots decimate in opposite directions (source through `H10`, drain
/// through the lead `H01`), so their entries are not interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LeadSlot {
    /// Contact 1, attached to layer 0.
    Source,
    /// Contact 2, attached to the last layer.
    Drain,
}

impl LeadSlot {
    fn tag(self) -> u8 {
        match self {
            LeadSlot::Source => 0,
            LeadSlot::Drain => 1,
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Entry present and healthy.
    Hit(Arc<CMatrix>),
    /// The fault injector poisoned this lookup: the caller must fall back
    /// to a fresh Sancho–Rubio solve (and may re-insert the result).
    Evicted,
    /// No entry under this key yet.
    Miss,
}

/// Shared, thread-safe store of surface Green's functions keyed on
/// `(lead slot, quantized relative energy)`.
///
/// The store only ever holds values computed at snapped energies with the
/// fixed lead-default `η` and iteration budget, so concurrent inserts of
/// the same key are bit-identical and insert order cannot change results.
#[derive(Debug, Default)]
pub struct SurfaceGfCache {
    quantum_ev: f64,
    store: Mutex<HashMap<(u8, i64), Arc<CMatrix>>>,
}

impl SurfaceGfCache {
    /// A cache with the default key quantum.
    pub fn new() -> Self {
        Self::with_quantum(DEFAULT_KEY_QUANTUM_EV)
    }

    /// A cache with an explicit key quantum (eV). Non-finite or
    /// non-positive quanta fall back to the default.
    pub fn with_quantum(quantum_ev: f64) -> Self {
        let q = if quantum_ev.is_finite() && quantum_ev > 0.0 {
            quantum_ev
        } else {
            DEFAULT_KEY_QUANTUM_EV
        };
        SurfaceGfCache {
            quantum_ev: q,
            store: Mutex::new(HashMap::new()),
        }
    }

    /// The key quantum (eV).
    pub fn quantum_ev(&self) -> f64 {
        self.quantum_ev
    }

    /// Quantized key for a relative energy `e_rel = E − potential`.
    pub fn key(&self, e_rel: f64) -> i64 {
        (e_rel / self.quantum_ev).round() as i64
    }

    /// The snapped relative energy a key stands for; cached solves are
    /// always evaluated here, never at the raw `e_rel`.
    pub fn snapped(&self, key: i64) -> f64 {
        key as f64 * self.quantum_ev
    }

    /// Number of stored entries (both slots).
    pub fn len(&self) -> usize {
        self.store.lock().expect("surface cache poisoned").len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `(slot, key)` is stored. Does not probe the fault site.
    pub fn contains(&self, slot: LeadSlot, key: i64) -> bool {
        self.store
            .lock()
            .expect("surface cache poisoned")
            .contains_key(&(slot.tag(), key))
    }

    /// Looks up `(slot, key)`, probing the [`FAULT_SITE`] first so a
    /// poisoned entry is reported as [`Lookup::Evicted`] even when a value
    /// is present. Exactly one fault probe per lookup keeps the injected
    /// fault count deterministic for a fixed lookup count.
    pub fn lookup(&self, slot: LeadSlot, key: i64) -> Lookup {
        if fault::should_fail(FAULT_SITE) {
            return Lookup::Evicted;
        }
        match self
            .store
            .lock()
            .expect("surface cache poisoned")
            .get(&(slot.tag(), key))
        {
            Some(g) => Lookup::Hit(Arc::clone(g)),
            None => Lookup::Miss,
        }
    }

    /// Inserts (or replaces) the entry for `(slot, key)`. Replacement is
    /// harmless: every correctly-computed value for a key is bit-identical.
    pub fn insert(&self, slot: LeadSlot, key: i64, gs: Arc<CMatrix>) {
        self.store
            .lock()
            .expect("surface cache poisoned")
            .insert((slot.tag(), key), gs);
    }

    /// Returns the stored value for `(slot, key)`, or stores `computed` and
    /// returns it. Used by the miss path so a racing duplicate solve still
    /// yields one canonical `Arc`.
    pub fn insert_or_get(&self, slot: LeadSlot, key: i64, computed: Arc<CMatrix>) -> Arc<CMatrix> {
        let mut store = self.store.lock().expect("surface cache poisoned");
        Arc::clone(store.entry((slot.tag(), key)).or_insert(computed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_quantize_and_snap() {
        let c = SurfaceGfCache::new();
        let e = 0.3125;
        let k = c.key(e);
        assert!((c.snapped(k) - e).abs() <= 0.5 * c.quantum_ev());
        // Noise far below the quantum maps to the same key.
        assert_eq!(c.key(e + 1e-12), k);
        assert_eq!(c.key(e - 1e-12), k);
        // A full quantum away maps to a neighbouring key.
        assert_eq!(c.key(e + c.quantum_ev()), k + 1);
    }

    #[test]
    fn bias_shifted_energies_collide() {
        // E - p computed through different float routes must agree on the
        // key: this is the property the bias sweep relies on.
        let c = SurfaceGfCache::new();
        let e_rel = -0.2875;
        for vd in [0.0, 0.1, 0.25, 0.4] {
            let e_abs = e_rel + vd; // grid energy at bias vd
            assert_eq!(c.key(e_abs - vd), c.key(e_rel), "vd={vd}");
        }
    }

    #[test]
    fn store_round_trip_and_slots_disjoint() {
        let c = SurfaceGfCache::new();
        let g = Arc::new(CMatrix::zeros(2, 2));
        assert!(matches!(c.lookup(LeadSlot::Source, 7), Lookup::Miss));
        c.insert(LeadSlot::Source, 7, Arc::clone(&g));
        assert!(c.contains(LeadSlot::Source, 7));
        assert!(!c.contains(LeadSlot::Drain, 7));
        assert!(matches!(c.lookup(LeadSlot::Source, 7), Lookup::Hit(_)));
        assert!(matches!(c.lookup(LeadSlot::Drain, 7), Lookup::Miss));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_or_get_returns_first_writer() {
        let c = SurfaceGfCache::new();
        let first = Arc::new(CMatrix::zeros(1, 1));
        let second = Arc::new(CMatrix::zeros(1, 1));
        let got1 = c.insert_or_get(LeadSlot::Drain, 3, Arc::clone(&first));
        let got2 = c.insert_or_get(LeadSlot::Drain, 3, second);
        assert!(Arc::ptr_eq(&got1, &first));
        assert!(Arc::ptr_eq(&got2, &first));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalid_quantum_falls_back_to_default() {
        assert_eq!(
            SurfaceGfCache::with_quantum(f64::NAN).quantum_ev(),
            DEFAULT_KEY_QUANTUM_EV
        );
        assert_eq!(
            SurfaceGfCache::with_quantum(-1.0).quantum_ev(),
            DEFAULT_KEY_QUANTUM_EV
        );
    }
}
