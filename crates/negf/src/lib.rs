//! `gnr-negf` — non-equilibrium Green's function quantum transport.
//!
//! Implements the NEGF machinery of the paper's §2 (its Eq. 1):
//!
//! ```text
//! Gʳ(E) = [(E + i0⁺)I − H − U − Σ₁ − Σ₂]⁻¹
//! ```
//!
//! for block-tridiagonal device Hamiltonians produced by
//! [`gnr_lattice::DeviceHamiltonian`]:
//!
//! * [`lead`] — contact self-energies: the Sancho–Rubio iterative surface
//!   Green's function for semi-infinite periodic (GNR) leads and the
//!   wide-band-limit metal lead used for Schottky contacts;
//! * [`rgf`] — the recursive Green's function algorithm: transmission
//!   `T(E)`, contact-resolved spectral functions, and local density of
//!   states without ever materializing the full `Gʳ`;
//! * [`transport`] — Landauer current and bias-resolved electron/hole
//!   charge integrals over energy, with an optional adaptive (bisecting)
//!   energy grid behind [`TransportOptions`];
//! * [`cache`] — bias-sweep memoization of Sancho–Rubio surface Green's
//!   functions keyed on the quantized energy relative to the lead
//!   potential, so `(Vg, Vd)` table builds reuse shifted entries.
//!
//! # Example: ideal-ribbon transmission is the mode count
//!
//! ```
//! use gnr_lattice::{AGnr, DeviceHamiltonian};
//! use gnr_negf::{lead::Lead, rgf::RgfSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gnr = AGnr::new(9)?;
//! let h = DeviceHamiltonian::flat_band(gnr, 6)?;
//! let solver = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact());
//! let bands = gnr.band_structure(64)?;
//! let e = bands.conduction_edge() + 0.05; // just inside the first subband
//! let t = solver.transmission(e)?;
//! assert!((t - 1.0).abs() < 0.05, "one open mode: T = {t}");
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod error;
pub mod lead;
pub mod mode_space;
pub mod rgf;
pub mod transport;

pub use cache::{LeadSlot, SurfaceGfCache};
pub use error::NegfError;
pub use lead::Lead;
pub use mode_space::{ModeBasis, ModeSpaceOptions, ModeSpaceSolver};
pub use rgf::RgfSolver;
pub use transport::{
    integrate_transport, integrate_transport_frozen, integrate_transport_with, ChargeProfile,
    EnergyGrid, RefineOptions, SpectralSolver, TransportOptions, TransportResult,
};
