//! Property-based tests of the quantum-transport invariants, driven by
//! the in-house seeded RNG (deterministic across runs).

use gnr_lattice::{AGnr, DeviceHamiltonian};
use gnr_negf::{Lead, RgfSolver};
use gnr_num::rng::Rng;

/// Transmission is bounded by the number of conducting channels
/// (2N orbitals per layer is a loose upper bound) and non-negative,
/// at any energy, for arbitrary potential profiles.
#[test]
fn transmission_bounded() {
    let mut rng = Rng::seed_from_u64(0x4e45_4701);
    for _ in 0..10 {
        let e = rng.uniform_in(-2.0, 2.0);
        let barrier = rng.uniform_in(0.0, 0.6);
        let gnr = AGnr::new(6).expect("valid index");
        let m = gnr.atoms_per_cell();
        let cells = 4;
        let pot: Vec<f64> = (0..m * cells).map(|_| barrier * rng.uniform()).collect();
        let h = DeviceHamiltonian::new(gnr, cells, &pot).expect("builds");
        let solver = RgfSolver::new(&h, Lead::metal(), Lead::metal());
        let t = solver.transmission(e).expect("solves");
        assert!(t >= 0.0, "T = {t}");
        assert!(t <= m as f64 + 1e-6, "T = {t} exceeds channel count");
        assert!(t.is_finite());
    }
}

/// Spectral functions are non-negative everywhere (positivity of the
/// density of states) and the slice transmission matches the dedicated
/// transmission kernel.
#[test]
fn spectral_positivity_and_consistency() {
    let mut rng = Rng::seed_from_u64(0x4e45_4702);
    for _ in 0..10 {
        let e = rng.uniform_in(-1.5, 1.5);
        let gnr = AGnr::new(6).expect("valid index");
        let h = DeviceHamiltonian::flat_band(gnr, 3).expect("builds");
        let solver = RgfSolver::new(&h, Lead::metal(), Lead::metal());
        let slice = solver
            .spectral_slice(e, &gnr_num::budget::ExecLimits::none())
            .expect("solves");
        assert!(slice.a1_diag.iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!(slice.a2_diag.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let t = solver.transmission(e).expect("solves");
        assert!((slice.transmission - t).abs() < 1e-8 * (1.0 + t));
    }
}

/// Left-right symmetry: a symmetric device with symmetric leads has a
/// symmetric spectral weight distribution.
#[test]
fn symmetric_device_symmetric_spectra() {
    let mut rng = Rng::seed_from_u64(0x4e45_4703);
    for _ in 0..10 {
        let e = rng.uniform_in(0.2, 1.2);
        let gnr = AGnr::new(6).expect("valid index");
        let h = DeviceHamiltonian::flat_band(gnr, 4).expect("builds");
        let solver = RgfSolver::new(&h, Lead::metal(), Lead::metal());
        let slice = solver
            .spectral_slice(e, &gnr_num::budget::ExecLimits::none())
            .expect("solves");
        let total1: f64 = slice.a1_diag.iter().sum();
        let total2: f64 = slice.a2_diag.iter().sum();
        assert!(
            (total1 - total2).abs() < 0.02 * (total1 + total2).max(1e-12),
            "a1 {total1} vs a2 {total2}"
        );
    }
}

/// Raising a uniform potential shifts the transmission spectrum
/// rigidly: T[U](E) = T[0](E - U) for uniform U with matching leads.
#[test]
fn uniform_shift_translates_spectrum() {
    let mut rng = Rng::seed_from_u64(0x4e45_4704);
    for _ in 0..10 {
        let u = rng.uniform_in(-0.3, 0.3);
        let e = rng.uniform_in(0.5, 1.0);
        let gnr = AGnr::new(6).expect("valid index");
        let m = gnr.atoms_per_cell();
        let cells = 3;
        let flat = DeviceHamiltonian::flat_band(gnr, cells).expect("builds");
        let shifted = DeviceHamiltonian::new(gnr, cells, &vec![u; m * cells]).expect("builds");
        // GNR leads shifted by the same amount keep the system homogeneous.
        let s0 = RgfSolver::new(&flat, Lead::gnr_contact(), Lead::gnr_contact());
        let s1 = RgfSolver::new(&shifted, Lead::gnr_contact_at(u), Lead::gnr_contact_at(u));
        let t0 = s0.transmission(e).expect("solves");
        let t1 = s1.transmission(e + u).expect("solves");
        assert!((t0 - t1).abs() < 0.05 * (1.0 + t0), "T0 {t0} vs T1 {t1}");
    }
}
