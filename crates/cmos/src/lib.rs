//! `gnr-cmos` — the scaled-CMOS comparison baseline.
//!
//! The paper's Table 1 compares GNRFET ring oscillators with scaled CMOS at
//! the 22, 32, and 45 nm nodes "simulated using the PTM model". The PTM
//! cards and HSPICE flow are proprietary, so this crate substitutes a
//! smooth velocity-saturated alpha-power compact model with subthreshold
//! conduction and DIBL, carded per node to PTM-reported drive currents,
//! thresholds, and gate capacitances (see DESIGN.md §2, substitution 2).
//! The model is sampled into a [`gnr_device::DeviceTable`], so the exact
//! same `gnr-spice` benchmarks run on CMOS and GNRFET devices.
//!
//! # Example
//!
//! ```
//! use gnr_cmos::{CmosNode, CmosTransistor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = CmosTransistor::nominal(CmosNode::N22);
//! // Strong inversion: hundreds of uA for a ~0.5 um device.
//! let i_on = t.drain_current(0.8, 0.8);
//! assert!(i_on > 1e-4 && i_on < 2e-3, "I_on = {i_on:.3e}");
//! // Subthreshold: orders of magnitude lower.
//! assert!(t.drain_current(0.0, 0.8) < 1e-6 * i_on * 1e4);
//! # Ok(())
//! # }
//! ```

use gnr_device::table::TableGrid;
use gnr_device::{DeviceError, DeviceTable, Polarity, TableKey, TableStore};
use gnr_num::consts::thermal_voltage;

/// Scaled technology nodes of the paper's Table 1.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum CmosNode {
    /// 22 nm node.
    N22,
    /// 32 nm node.
    N32,
    /// 45 nm node.
    N45,
}

impl CmosNode {
    /// All nodes, in the paper's order.
    pub const ALL: [CmosNode; 3] = [CmosNode::N22, CmosNode::N32, CmosNode::N45];

    /// Display label ("22nm", ...).
    pub fn label(&self) -> &'static str {
        match self {
            CmosNode::N22 => "22nm",
            CmosNode::N32 => "32nm",
            CmosNode::N45 => "45nm",
        }
    }
}

/// A velocity-saturated alpha-power-law MOSFET with subthreshold
/// conduction and DIBL — a PTM-like predictive compact model.
///
/// The drive strength corresponds to a logic-sized device (minimum-pitch
/// width), *not* per-micron normalization, so inverter netlists can use it
/// directly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmosTransistor {
    /// Zero-bias threshold voltage \[V\].
    pub vth0: f64,
    /// Velocity-saturation exponent (1 = full saturation, 2 = long channel).
    pub alpha: f64,
    /// Drive coefficient `k` \[A/V^alpha\].
    pub k: f64,
    /// Subthreshold ideality factor (SS = n·ln10·kT/q).
    pub n_sub: f64,
    /// DIBL coefficient \[V/V\].
    pub dibl: f64,
    /// Saturation-voltage coefficient: `V_dsat = k_sat · V_ov`.
    pub k_sat: f64,
    /// Total gate capacitance of the device \[F\].
    pub c_gate: f64,
    /// Temperature \[K\].
    pub temperature_k: f64,
}

impl CmosTransistor {
    /// Nominal logic transistor of a node, carded against PTM-class
    /// numbers: V_th ≈ 0.3–0.4 V, I_on ≈ 0.5–0.9 mA/µm at V_DD = 0.8–1 V,
    /// C_gate ≈ 1 fF/µm, for minimum-pitch logic widths (W ≈ 10 F).
    pub fn nominal(node: CmosNode) -> Self {
        // Width W ~ 10x the half-pitch; capacitance ~1 fF/um of width plus
        // wiring-less FO4 assumption; drive scaled per node.
        match node {
            CmosNode::N22 => CmosTransistor {
                vth0: 0.32,
                alpha: 1.25,
                k: 9.0e-4,
                n_sub: 1.35,
                dibl: 0.10,
                k_sat: 0.75,
                c_gate: 0.30e-15,
                temperature_k: 300.0,
            },
            CmosNode::N32 => CmosTransistor {
                vth0: 0.34,
                alpha: 1.30,
                k: 8.0e-4,
                n_sub: 1.30,
                dibl: 0.08,
                k_sat: 0.80,
                c_gate: 0.42e-15,
                temperature_k: 300.0,
            },
            CmosNode::N45 => CmosTransistor {
                vth0: 0.36,
                alpha: 1.35,
                k: 7.2e-4,
                n_sub: 1.25,
                dibl: 0.06,
                k_sat: 0.85,
                c_gate: 0.60e-15,
                temperature_k: 300.0,
            },
        }
    }

    /// Drain current \[A\] in the internal n-type convention; smooth across
    /// the subthreshold/strong-inversion boundary (EKV-style soft-plus
    /// overdrive), monotone in both arguments — Newton-friendly.
    pub fn drain_current(&self, v_gs: f64, v_ds: f64) -> f64 {
        if v_ds == 0.0 {
            return 0.0;
        }
        if v_ds < 0.0 {
            // Source/drain exchange symmetry.
            return -self.drain_current(v_gs - v_ds, -v_ds);
        }
        let vt = thermal_voltage(self.temperature_k);
        let nvt = self.n_sub * vt;
        let vth = self.vth0 - self.dibl * v_ds;
        // Soft-plus effective overdrive: exponential below threshold,
        // linear above.
        // Soft-plus overdrive with the alpha exponent compensated so the
        // subthreshold slope stays exactly n.kT/q per e-fold:
        // v_ov = alpha.n.vt.softplus(x/alpha)  =>  I ~ e^x below threshold
        // and I ~ k (v_gs - v_th)^alpha above it.
        let x = (v_gs - vth) / nvt;
        let v_ov = self.alpha * nvt * softplus(x / self.alpha);
        let i_sat = self.k * v_ov.powf(self.alpha);
        // Saturation-voltage smoothing of the output characteristic.
        let v_dsat = (self.k_sat * v_ov).max(2.0 * vt);
        let sat = 1.0 - (-v_ds / v_dsat).exp();
        i_sat * sat
    }

    /// Channel charge \[C\]: a constant-capacitance charge model
    /// `Q = C_g·(V_GS − V_DS/2)` giving `C_GS = C_g/2`, `C_GD = C_g/2`.
    pub fn channel_charge(&self, v_gs: f64, v_ds: f64) -> f64 {
        -self.c_gate * (v_gs - 0.5 * v_ds)
    }

    /// Samples the model into a lookup table compatible with the GNRFET
    /// circuit flow. The grid must cover the intended supply range.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures.
    pub fn to_table(&self, polarity: Polarity, vmax: f64) -> Result<DeviceTable, DeviceError> {
        let grid = TableGrid {
            vgs: (-0.2, vmax + 0.25),
            vds: (0.0, vmax + 0.2),
            points: 31,
        };
        let me = *self;
        DeviceTable::from_samples(
            grid,
            polarity,
            |vg, vd| me.drain_current(vg, vd),
            |vg, vd| me.channel_charge(vg, vd),
        )
    }

    /// [`to_table`](CmosTransistor::to_table) through a content-addressed
    /// [`TableStore`]: the table is keyed on every model card field, the
    /// polarity, and the grid, so repeated invocations (the benchmark
    /// sweeps every node at several supplies) are served from the cache.
    ///
    /// # Errors
    ///
    /// Propagates table-construction and serialization failures.
    pub fn to_table_cached(
        &self,
        store: &TableStore,
        polarity: Polarity,
        vmax: f64,
    ) -> Result<DeviceTable, DeviceError> {
        let key = TableKey::new("cmos-alpha-power/v1")
            .field_f64("vth0", self.vth0)
            .field_f64("alpha", self.alpha)
            .field_f64("k", self.k)
            .field_f64("n_sub", self.n_sub)
            .field_f64("dibl", self.dibl)
            .field_f64("k_sat", self.k_sat)
            .field_f64("c_gate", self.c_gate)
            .field_f64("temperature_k", self.temperature_k)
            .field_f64("vmax", vmax)
            .polarity(polarity)
            .finish();
        store.get_or_build(key, || self.to_table(polarity, vmax))
    }
}

/// Numerically-stable `ln(1 + e^x)` (soft-plus), linear for large `x`.
fn softplus(x: f64) -> f64 {
    if x > 40.0 {
        x
    } else if x < -40.0 {
        0.0
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t22() -> CmosTransistor {
        CmosTransistor::nominal(CmosNode::N22)
    }

    #[test]
    fn on_off_ratio_is_large() {
        let t = t22();
        let on = t.drain_current(0.8, 0.8);
        let off = t.drain_current(0.0, 0.8);
        assert!(on / off > 1e3, "on/off = {}", on / off);
    }

    #[test]
    fn subthreshold_slope_near_card() {
        let t = t22();
        // SS = n kT/q ln10 ~ 80 mV/dec for n = 1.35.
        let i1 = t.drain_current(0.05, 0.8);
        let i2 = t.drain_current(0.13, 0.8);
        let ss = 0.08 / (i2 / i1).log10();
        assert!((ss - 0.080).abs() < 0.01, "SS = {ss}");
    }

    #[test]
    fn dibl_raises_leakage_with_vds() {
        let t = t22();
        let i_low = t.drain_current(0.0, 0.1);
        let i_high = t.drain_current(0.0, 0.8);
        assert!(i_high > 2.0 * i_low);
    }

    #[test]
    fn current_monotone_in_both_biases() {
        let t = t22();
        let mut prev = 0.0;
        for i in 0..20 {
            let vg = i as f64 * 0.05;
            let id = t.drain_current(vg, 0.8);
            assert!(id >= prev);
            prev = id;
        }
        prev = 0.0;
        for j in 0..20 {
            let vd = j as f64 * 0.05;
            let id = t.drain_current(0.8, vd);
            assert!(id >= prev - 1e-15);
            prev = id;
        }
    }

    #[test]
    fn negative_vds_antisymmetry() {
        let t = t22();
        let a = t.drain_current(0.5, -0.3);
        let b = -t.drain_current(0.8, 0.3);
        assert!((a - b).abs() < 1e-15);
        assert_eq!(t.drain_current(0.5, 0.0), 0.0);
    }

    #[test]
    fn nodes_scale_sensibly() {
        // Older nodes: bigger caps, slightly higher Vth, lower drive.
        let (t22, t32, t45) = (
            CmosTransistor::nominal(CmosNode::N22),
            CmosTransistor::nominal(CmosNode::N32),
            CmosTransistor::nominal(CmosNode::N45),
        );
        assert!(t22.c_gate < t32.c_gate && t32.c_gate < t45.c_gate);
        assert!(t22.vth0 < t45.vth0);
        assert!(t22.drain_current(0.8, 0.8) > t45.drain_current(0.8, 0.8));
    }

    #[test]
    fn table_matches_model() {
        let t = t22();
        let table = t.to_table(Polarity::NType, 0.8).unwrap();
        for (vg, vd, tol) in [(0.4, 0.4, 0.05), (0.8, 0.8, 0.05), (0.2, 0.6, 0.3)] {
            // Bilinear interpolation of an exponential subthreshold region
            // carries larger midpoint error; the paper's lookup tables have
            // the same property.
            let a = t.drain_current(vg, vd);
            let b = table.current(vg, vd);
            assert!(
                (a - b).abs() < tol * a.abs().max(1e-9),
                "({vg},{vd}): {a:.3e} vs {b:.3e}"
            );
        }
        // Capacitances from the charge model: |dQ/dVgs| = C_g.
        let cg = table.cg_intrinsic(0.4, 0.4);
        assert!((cg - t.c_gate).abs() < 0.05 * t.c_gate, "cg = {cg:.3e}");
    }

    #[test]
    fn ptype_mirror_through_table() {
        let t = t22();
        let table = t.to_table(Polarity::PType, 0.8).unwrap();
        // Pull-up convention: negative vgs/vds give negative current.
        let i = table.current(-0.8, -0.4);
        assert!(i < 0.0);
        assert!((i + t.drain_current(0.8, 0.4)).abs() < 0.05 * i.abs());
    }
}
