//! Property-based tests of the device-table invariants.

use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_table() -> &'static DeviceTable {
    static TABLE: OnceLock<DeviceTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid");
        let model = SbfetModel::new(&cfg).expect("builds");
        DeviceTable::from_model(&model, Polarity::NType, TableGrid::coarse(), 4)
            .expect("table")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The p-type mirror is an exact point symmetry of the n-type table.
    #[test]
    fn ptype_mirror_point_symmetry(vg in -0.3f64..0.9, vd in -0.7f64..0.7) {
        let n = shared_table();
        let p = n.mirrored();
        let a = n.current(vg, vd);
        let b = p.current(-vg, -vd);
        prop_assert!((a + b).abs() <= 1e-12 * a.abs().max(1e-18), "{a:.3e} vs {b:.3e}");
        let qa = n.charge(vg, vd);
        let qb = p.charge(-vg, -vd);
        prop_assert!((qa + qb).abs() <= 1e-12 * qa.abs().max(1e-30));
    }

    /// Source/drain exchange: I(vg, -vd) = -I(vg + vd, vd) — swapping the
    /// terminals re-references the gate to the new source.
    #[test]
    fn source_drain_exchange(vg in -0.2f64..0.8, vd in 0.0f64..0.7) {
        let t = shared_table();
        let a = t.current(vg, -vd);
        let b = -t.current(vg + vd, vd);
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-15), "{a:.3e} vs {b:.3e}");
    }

    /// Gate-shift equivariance: shifting the table then looking up at a
    /// shifted gate voltage is the identity.
    #[test]
    fn vg_shift_equivariance(
        vg in -0.2f64..0.8,
        vd in 0.0f64..0.7,
        shift in -0.25f64..0.25,
    ) {
        let t = shared_table();
        let shifted = t.with_vg_shift(shift);
        let a = t.current(vg, vd);
        let b = shifted.current(vg + shift, vd);
        prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1e-18));
    }

    /// Capacitances are non-negative and finite over the table domain.
    #[test]
    fn capacitances_well_formed(vg in -0.3f64..0.9, vd in 0.0f64..0.75) {
        let t = shared_table();
        let cgd = t.cgd_intrinsic(vg, vd);
        let cgs = t.cgs_intrinsic(vg, vd);
        let cg = t.cg_intrinsic(vg, vd);
        prop_assert!(cgd >= 0.0 && cgd.is_finite());
        prop_assert!(cgs >= 0.0 && cgs.is_finite());
        prop_assert!(cg >= 0.0 && cg < 1e-14, "C_G = {cg:.3e}");
    }

    /// Series-resistance folding satisfies its defining implicit equation:
    /// the folded current equals the intrinsic table evaluated at the
    /// resistor-dropped internal bias. (Strict contraction does not hold
    /// for ambipolar devices, where a source drop can turn the hole branch
    /// further on.)
    #[test]
    fn resistance_folding_self_consistent(gi in 0usize..13, di in 1usize..13) {
        let t = shared_table();
        let (rs, rd) = (20e3, 20e3);
        let folded = t.fold_series_resistance(rs, rd).expect("folds");
        // Check on actual grid nodes (between nodes, bilinear interpolation
        // of the folded table differs from folding the interpolant).
        let (vgs_nodes, vds_nodes) = t.bias_nodes();
        let vg_node = vgs_nodes[gi.min(vgs_nodes.len() - 1)];
        let vd_node = vds_nodes[di.min(vds_nodes.len() - 1)];
        let i_f = folded.current(vg_node, vd_node);
        let expect = t.current(vg_node - i_f * rs, vd_node - i_f * (rs + rd));
        prop_assert!(
            (i_f - expect).abs() <= 1e-6 * expect.abs().max(1e-12),
            "folded {i_f:.6e} vs implicit {expect:.6e}"
        );
        prop_assert!(folded.current(vg_node, 0.0).abs() < 1e-9);
    }

    /// JSON serialization is an exact round trip at arbitrary biases.
    #[test]
    fn json_roundtrip_everywhere(vg in -0.3f64..0.9, vd in 0.0f64..0.75) {
        let t = shared_table();
        let back = DeviceTable::from_json(&t.to_json().expect("serializes"))
            .expect("deserializes");
        prop_assert!((t.current(vg, vd) - back.current(vg, vd)).abs() < 1e-18);
        prop_assert!((t.charge(vg, vd) - back.charge(vg, vd)).abs() < 1e-30);
    }
}
