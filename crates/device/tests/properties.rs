//! Property-based tests of the device-table invariants, driven by the
//! in-house seeded RNG (deterministic across runs).

use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnr_num::par::ExecCtx;
use gnr_num::rng::Rng;
use std::sync::OnceLock;

fn shared_table() -> &'static DeviceTable {
    static TABLE: OnceLock<DeviceTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let cfg = DeviceConfig::test_small(12).expect("valid");
        let model = SbfetModel::new(&cfg).expect("builds");
        DeviceTable::from_model(
            &ExecCtx::serial(),
            &model,
            Polarity::NType,
            TableGrid::coarse(),
            4,
        )
        .expect("table")
    })
}

/// The p-type mirror is an exact point symmetry of the n-type table.
#[test]
fn ptype_mirror_point_symmetry() {
    let mut rng = Rng::seed_from_u64(0x4445_5601);
    for _ in 0..48 {
        let vg = rng.uniform_in(-0.3, 0.9);
        let vd = rng.uniform_in(-0.7, 0.7);
        let n = shared_table();
        let p = n.mirrored();
        let a = n.current(vg, vd);
        let b = p.current(-vg, -vd);
        assert!(
            (a + b).abs() <= 1e-12 * a.abs().max(1e-18),
            "{a:.3e} vs {b:.3e}"
        );
        let qa = n.charge(vg, vd);
        let qb = p.charge(-vg, -vd);
        assert!((qa + qb).abs() <= 1e-12 * qa.abs().max(1e-30));
    }
}

/// Source/drain exchange: I(vg, -vd) = -I(vg + vd, vd) — swapping the
/// terminals re-references the gate to the new source.
#[test]
fn source_drain_exchange() {
    let mut rng = Rng::seed_from_u64(0x4445_5602);
    for _ in 0..48 {
        let vg = rng.uniform_in(-0.2, 0.8);
        let vd = rng.uniform_in(0.0, 0.7);
        let t = shared_table();
        let a = t.current(vg, -vd);
        let b = -t.current(vg + vd, vd);
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1e-15),
            "{a:.3e} vs {b:.3e}"
        );
    }
}

/// Gate-shift equivariance: shifting the table then looking up at a
/// shifted gate voltage is the identity.
#[test]
fn vg_shift_equivariance() {
    let mut rng = Rng::seed_from_u64(0x4445_5603);
    for _ in 0..48 {
        let vg = rng.uniform_in(-0.2, 0.8);
        let vd = rng.uniform_in(0.0, 0.7);
        let shift = rng.uniform_in(-0.25, 0.25);
        let t = shared_table();
        let shifted = t.with_vg_shift(shift);
        let a = t.current(vg, vd);
        let b = shifted.current(vg + shift, vd);
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1e-18));
    }
}

/// Capacitances are non-negative and finite over the table domain.
#[test]
fn capacitances_well_formed() {
    let mut rng = Rng::seed_from_u64(0x4445_5604);
    for _ in 0..48 {
        let vg = rng.uniform_in(-0.3, 0.9);
        let vd = rng.uniform_in(0.0, 0.75);
        let t = shared_table();
        let cgd = t.cgd_intrinsic(vg, vd);
        let cgs = t.cgs_intrinsic(vg, vd);
        let cg = t.cg_intrinsic(vg, vd);
        assert!(cgd >= 0.0 && cgd.is_finite());
        assert!(cgs >= 0.0 && cgs.is_finite());
        assert!((0.0..1e-14).contains(&cg), "C_G = {cg:.3e}");
    }
}

/// Series-resistance folding satisfies its defining implicit equation:
/// the folded current equals the intrinsic table evaluated at the
/// resistor-dropped internal bias. (Strict contraction does not hold
/// for ambipolar devices, where a source drop can turn the hole branch
/// further on.)
#[test]
fn resistance_folding_self_consistent() {
    let mut rng = Rng::seed_from_u64(0x4445_5605);
    let t = shared_table();
    let (rs, rd) = (20e3, 20e3);
    let folded = t.fold_series_resistance(rs, rd).expect("folds");
    // Check on actual grid nodes (between nodes, bilinear interpolation
    // of the folded table differs from folding the interpolant).
    let (vgs_iter, vds_iter) = t.bias_nodes();
    let (vgs_nodes, vds_nodes): (Vec<f64>, Vec<f64>) = (vgs_iter.collect(), vds_iter.collect());
    for _ in 0..48 {
        let gi = rng.below(vgs_nodes.len());
        let di = 1 + rng.below(vds_nodes.len() - 1);
        let vg_node = vgs_nodes[gi];
        let vd_node = vds_nodes[di];
        let i_f = folded.current(vg_node, vd_node);
        let expect = t.current(vg_node - i_f * rs, vd_node - i_f * (rs + rd));
        assert!(
            (i_f - expect).abs() <= 1e-6 * expect.abs().max(1e-12),
            "folded {i_f:.6e} vs implicit {expect:.6e}"
        );
        assert!(folded.current(vg_node, 0.0).abs() < 1e-9);
    }
}

/// JSON serialization is an exact round trip at arbitrary biases.
#[test]
fn json_roundtrip_everywhere() {
    let mut rng = Rng::seed_from_u64(0x4445_5606);
    let t = shared_table();
    let back = DeviceTable::from_json(&t.to_json().expect("serializes")).expect("deserializes");
    for _ in 0..48 {
        let vg = rng.uniform_in(-0.3, 0.9);
        let vd = rng.uniform_in(0.0, 0.75);
        assert!((t.current(vg, vd) - back.current(vg, vd)).abs() < 1e-18);
        assert!((t.charge(vg, vd) - back.charge(vg, vd)).abs() < 1e-30);
    }
}
