//! Threshold-voltage extraction.
//!
//! The paper (§2, Fig. 2b) uses "traditional V_T extraction methods for MOS
//! devices": at low drain bias, the tangent of the I-V curve at its maximum
//! transconductance point is extrapolated to the V_G axis; the intercept is
//! V_T. An applied gate work-function offset shifts V_T by the same amount.

use crate::error::DeviceError;
use gnr_num::linfit::fit_line;

/// Extracts the threshold voltage from `(V_G, I_D)` samples of an I-V curve
/// at low drain bias, via linear extrapolation at the maximum-slope point.
///
/// # Errors
///
/// Returns [`DeviceError::Config`] if fewer than four samples are given or
/// the fitted tangent is horizontal (no gate control in the sampled range).
pub fn extract_vt(samples: &[(f64, f64)]) -> Result<f64, DeviceError> {
    if samples.len() < 4 {
        return Err(DeviceError::config(
            "vt extraction needs at least four I-V samples",
        ));
    }
    // Locate the maximum forward slope.
    let mut best = (0usize, f64::NEG_INFINITY);
    for w in 0..samples.len() - 1 {
        let (v0, i0) = samples[w];
        let (v1, i1) = samples[w + 1];
        let slope = (i1 - i0) / (v1 - v0);
        if slope > best.1 {
            best = (w, slope);
        }
    }
    // Fit the tangent through a window around the max-gm point.
    let lo = best.0.saturating_sub(1);
    let hi = (best.0 + 2).min(samples.len() - 1);
    let xs: Vec<f64> = samples[lo..=hi].iter().map(|s| s.0).collect();
    let ys: Vec<f64> = samples[lo..=hi].iter().map(|s| s.1).collect();
    let fit = fit_line(&xs, &ys).map_err(DeviceError::from)?;
    fit.x_intercept()
        .ok_or_else(|| DeviceError::config("i-v curve has no gate control (zero slope)"))
}

/// Samples an I-V curve from a current function over `[v_lo, v_hi]` and
/// extracts V_T; convenience wrapper over [`extract_vt`].
///
/// # Errors
///
/// Propagates evaluation and extraction failures.
pub fn extract_vt_from<F>(
    mut current: F,
    v_lo: f64,
    v_hi: f64,
    points: usize,
) -> Result<f64, DeviceError>
where
    F: FnMut(f64) -> Result<f64, DeviceError>,
{
    let points = points.max(4);
    let step = (v_hi - v_lo) / (points - 1) as f64;
    let mut samples = Vec::with_capacity(points);
    for i in 0..points {
        let v = v_lo + step * i as f64;
        samples.push((v, current(v)?));
    }
    extract_vt(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_square_law_vt() {
        // I = k (V - VT)^2 above VT: the tangent at the top of the sampled
        // range extrapolates to (V + VT)/2 ... for a pure square law the
        // max-gm tangent intercept is midway; use a linear-above-threshold
        // device for an exact check instead.
        let vt_true = 0.3;
        let samples: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let v = i as f64 * 0.025;
                (v, (v - vt_true).max(0.0) * 2.0e-6)
            })
            .collect();
        let vt = extract_vt(&samples).unwrap();
        assert!((vt - vt_true).abs() < 0.03, "vt = {vt}");
    }

    #[test]
    fn offset_shifts_vt_equally() {
        // Paper: "when the off-set is applied ... VT changes by an amount
        // equal to the off-set".
        let curve = |v: f64, off: f64| ((v + off) - 0.3).max(0.0) * 1e-6;
        let base: Vec<_> = (0..40)
            .map(|i| (i as f64 * 0.02, curve(i as f64 * 0.02, 0.0)))
            .collect();
        let shifted: Vec<_> = (0..40)
            .map(|i| (i as f64 * 0.02, curve(i as f64 * 0.02, 0.2)))
            .collect();
        let vt0 = extract_vt(&base).unwrap();
        let vt1 = extract_vt(&shifted).unwrap();
        assert!(((vt0 - vt1) - 0.2).abs() < 0.03, "{vt0} vs {vt1}");
    }

    #[test]
    fn rejects_too_few_samples() {
        assert!(extract_vt(&[(0.0, 0.0), (0.1, 1.0)]).is_err());
    }

    #[test]
    fn rejects_flat_curve() {
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 0.1, 1.0)).collect();
        assert!(extract_vt(&flat).is_err());
    }

    #[test]
    fn wrapper_samples_function() {
        let vt = extract_vt_from(|v| Ok((v - 0.25).max(0.0) * 3e-6), 0.0, 0.8, 33).unwrap();
        assert!((vt - 0.25).abs() < 0.03);
    }
}
