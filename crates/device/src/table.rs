//! Device lookup tables — the interface between device and circuit levels.
//!
//! The paper's circuit simulator is "based on table lookup techniques": the
//! drain current `I_D(V_GS, V_DS)` and channel charge `Q(V_GS, V_DS)` of the
//! intrinsic device are tabulated on a uniform bias grid, and the intrinsic
//! capacitances follow by differentiation:
//! `C_GD,i = |∂Q/∂V_DS|`, `C_GS,i = |∂Q/∂V_GS| − |∂Q/∂V_DS|` (§3).
//!
//! A [`DeviceTable`] represents one FET (n- or p-type) built from one or
//! more ribbons. P-type devices mirror the n-type table
//! (`I_p(V_GS,V_DS) = −I_n(−V_GS,−V_DS)`), which the paper justifies by the
//! ambipolar symmetry of the SBFET. Negative `V_DS` on an n-type device is
//! handled by source/drain exchange symmetry.

use crate::error::DeviceError;
use crate::sbfet::SbfetModel;
use crate::scf::ScfSolver;
use gnr_num::par::ExecCtx;
use gnr_num::{BilinearTable, Grid1, Grid2, Json};

/// Carrier-type role of a FET in a logic gate.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Polarity {
    /// Electron-conducting pull-down device.
    NType,
    /// Hole-conducting pull-up device (mirrored table).
    PType,
}

/// Bias-grid specification for table construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableGrid {
    /// Gate-source range \[V\].
    pub vgs: (f64, f64),
    /// Drain-source range \[V\] (non-negative; negative bias is mapped by
    /// device symmetry).
    pub vds: (f64, f64),
    /// Points per axis.
    pub points: usize,
}

impl TableGrid {
    /// The paper's grid (§3: "discrete voltage steps of V_GS and V_DS
    /// ranging from 0 V to 0.75 V"), widened slightly so transient
    /// excursions stay on-table.
    pub fn paper() -> Self {
        TableGrid {
            vgs: (-0.35, 1.0),
            vds: (0.0, 0.85),
            points: 46,
        }
    }

    /// A coarse grid for fast tests.
    pub fn coarse() -> Self {
        TableGrid {
            vgs: (-0.3, 0.9),
            vds: (0.0, 0.8),
            points: 13,
        }
    }
}

/// Lookup-table model of one extrinsic-ready FET: current, charge, and
/// intrinsic capacitances on a uniform `(V_GS, V_DS)` grid.
#[derive(Clone, Debug)]
pub struct DeviceTable {
    id_a: BilinearTable,
    q_c: BilinearTable,
    polarity: Polarity,
    /// Parallel ribbons represented by the table.
    ribbons: usize,
    /// V_T-engineering shift applied at lookup time \[V\] (positive shift
    /// raises the threshold).
    vg_shift: f64,
    /// Provenance of the builder that produced the node values (e.g.
    /// `"surrogate"`, `"negf-real-space"`, `"negf-mode-space"`, `"negf-scf"`);
    /// recorded in the JSON form so cached tables identify their solver path.
    solver_path: String,
}

impl DeviceTable {
    /// Builds a table by sampling a single-ribbon model and scaling by
    /// `ribbons` identical parallel ribbons (the paper's 4-GNR array).
    ///
    /// The bias grid is sampled on `ctx`'s thread pool, one gate-voltage
    /// row per work item, with an ordered merge: tables are bit-identical
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation failures.
    pub fn from_model(
        ctx: &ExecCtx,
        model: &SbfetModel,
        polarity: Polarity,
        grid: TableGrid,
        ribbons: usize,
    ) -> Result<Self, DeviceError> {
        let ribbons = ribbons.max(1);
        let mut single = Self::from_ribbon_models(ctx, &[model], polarity, grid)?;
        // Identical parallel ribbons scale linearly: evaluate once.
        let k = ribbons as f64;
        single.id_a = single.id_a.map(|v| v * k);
        single.q_c = single.q_c.map(|v| v * k);
        single.ribbons = ribbons;
        Ok(single)
    }

    /// Builds a table by sampling arbitrary current/charge functions — the
    /// hook that lets non-GNR devices (e.g. the scaled-CMOS baseline in
    /// `gnr-cmos`) flow through the same circuit machinery.
    ///
    /// `id_fn(v_gs, v_ds)` returns amperes, `q_fn` coulombs, both in the
    /// device's *internal n-type* convention (p-type mirroring is applied
    /// at lookup).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for a degenerate grid.
    pub fn from_samples(
        grid: TableGrid,
        polarity: Polarity,
        mut id_fn: impl FnMut(f64, f64) -> f64,
        mut q_fn: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, DeviceError> {
        if grid.points < 3 {
            return Err(DeviceError::config("table grid needs >= 3 points/axis"));
        }
        let gx = Grid1::new(grid.vgs.0, grid.vgs.1, grid.points)?;
        let gy = Grid1::new(grid.vds.0, grid.vds.1, grid.points)?;
        let g2 = Grid2::new(gx, gy);
        let mut id_vals = Vec::with_capacity(g2.len());
        let mut q_vals = Vec::with_capacity(g2.len());
        for i in 0..grid.points {
            let vg = gx.point(i);
            for j in 0..grid.points {
                let vd = gy.point(j);
                id_vals.push(id_fn(vg, vd));
                q_vals.push(q_fn(vg, vd));
            }
        }
        Ok(DeviceTable {
            id_a: BilinearTable::new(g2, id_vals)?,
            q_c: BilinearTable::new(g2, q_vals)?,
            polarity,
            ribbons: 1,
            vg_shift: 0.0,
            solver_path: "surrogate".into(),
        })
    }

    /// Builds a table for a parallel array of per-ribbon models — the
    /// mechanism behind the paper's "one of four GNRs affected" scenarios:
    /// pass three nominal models and one variant.
    ///
    /// Grid rows (fixed `V_GS`, all `V_DS`) are independent bias points and
    /// run on `ctx`'s pool; per-point model contributions accumulate in
    /// model order and rows merge in grid order, so the table is
    /// bit-identical to the serial nested loop.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for an empty model list or a
    /// degenerate grid; propagates model failures.
    pub fn from_ribbon_models<M: std::borrow::Borrow<SbfetModel> + Sync>(
        ctx: &ExecCtx,
        models: &[M],
        polarity: Polarity,
        grid: TableGrid,
    ) -> Result<Self, DeviceError> {
        if models.is_empty() {
            return Err(DeviceError::config("need at least one ribbon model"));
        }
        if grid.points < 3 {
            return Err(DeviceError::config("table grid needs >= 3 points/axis"));
        }
        let gx = Grid1::new(grid.vgs.0, grid.vgs.1, grid.points)?;
        let gy = Grid1::new(grid.vds.0, grid.vds.1, grid.points)?;
        let g2 = Grid2::new(gx, gy);
        type Row = (Vec<f64>, Vec<f64>);
        let rows = ctx.try_par_map_indexed(grid.points, |i| -> Result<Row, DeviceError> {
            let vg = gx.point(i);
            let mut id_row = vec![0.0; grid.points];
            let mut q_row = vec![0.0; grid.points];
            // Accumulate per-point contributions in model order — the same
            // float-add sequence as the original model-outer nested loop.
            for model in models {
                let model = model.borrow();
                for (j, (id_cell, q_cell)) in id_row.iter_mut().zip(&mut q_row).enumerate() {
                    let vd = gy.point(j);
                    let (id, q) = model.evaluate(vg, vd)?;
                    *id_cell += id;
                    *q_cell += q;
                }
            }
            Ok((id_row, q_row))
        })?;
        let mut id_vals = Vec::with_capacity(g2.len());
        let mut q_vals = Vec::with_capacity(g2.len());
        for (id_row, q_row) in rows {
            id_vals.extend(id_row);
            q_vals.extend(q_row);
        }
        ctx.counter_inc("device.table.builds");
        ctx.counter_add("device.table.bias_points", g2.len() as u64);
        Ok(DeviceTable {
            id_a: BilinearTable::new(g2, id_vals)?,
            q_c: BilinearTable::new(g2, q_vals)?,
            polarity,
            ribbons: models.len(),
            vg_shift: 0.0,
            solver_path: "surrogate".into(),
        })
    }

    /// Builds a table directly from row-major (`vgs`-major) node values
    /// already scaled to the full device. Crate-internal hook for builders
    /// that compute whole grids up front (e.g. the ballistic NEGF sweep).
    pub(crate) fn from_node_values(
        grid: TableGrid,
        polarity: Polarity,
        ribbons: usize,
        id_vals: Vec<f64>,
        q_vals: Vec<f64>,
    ) -> Result<Self, DeviceError> {
        if grid.points < 3 {
            return Err(DeviceError::config("table grid needs >= 3 points/axis"));
        }
        let gx = Grid1::new(grid.vgs.0, grid.vgs.1, grid.points)?;
        let gy = Grid1::new(grid.vds.0, grid.vds.1, grid.points)?;
        let g2 = Grid2::new(gx, gy);
        if id_vals.len() != g2.len() || q_vals.len() != g2.len() {
            return Err(DeviceError::config(format!(
                "node value count {}/{} does not match grid size {}",
                id_vals.len(),
                q_vals.len(),
                g2.len()
            )));
        }
        Ok(DeviceTable {
            id_a: BilinearTable::new(g2, id_vals)?,
            q_c: BilinearTable::new(g2, q_vals)?,
            polarity,
            ribbons: ribbons.max(1),
            vg_shift: 0.0,
            solver_path: "surrogate".into(),
        })
    }

    /// Builds a table by running the rigorous NEGF⇄Poisson SCF loop at
    /// every bias point, scaled by `ribbons` identical parallel ribbons.
    ///
    /// With `warm_start` set, each bias point's potential is seeded from
    /// its nearest already-solved neighbour on the grid: within a
    /// gate-voltage row the previous (lower `V_DS`) point, and at a row
    /// head the previous row's head. The sweep itself is serial in
    /// row-major order — the chain of seeds is then fixed regardless of
    /// `GNR_THREADS` (the *inner* energy integration still parallelizes
    /// over `ctx`'s pool), preserving the bit-identical determinism
    /// contract. `warm_start = false` reproduces the independent cold
    /// solves exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for a degenerate grid; propagates
    /// SCF failures.
    pub fn from_scf(
        ctx: &ExecCtx,
        solver: &ScfSolver,
        polarity: Polarity,
        grid: TableGrid,
        ribbons: usize,
        warm_start: bool,
    ) -> Result<Self, DeviceError> {
        if grid.points < 3 {
            return Err(DeviceError::config("table grid needs >= 3 points/axis"));
        }
        let ribbons = ribbons.max(1);
        let k = ribbons as f64;
        let gx = Grid1::new(grid.vgs.0, grid.vgs.1, grid.points)?;
        let gy = Grid1::new(grid.vds.0, grid.vds.1, grid.points)?;
        let mut id_vals = Vec::with_capacity(grid.points * grid.points);
        let mut q_vals = Vec::with_capacity(grid.points * grid.points);
        let mut row_head_seed: Option<Vec<f64>> = None;
        let mut seeds = 0u64;
        for i in 0..grid.points {
            let vg = gx.point(i);
            let mut prev: Option<Vec<f64>> = None;
            for j in 0..grid.points {
                let vd = gy.point(j);
                let seed = if !warm_start {
                    None
                } else if j == 0 {
                    row_head_seed.as_deref()
                } else {
                    prev.as_deref()
                };
                if seed.is_some() {
                    seeds += 1;
                }
                let (r, _) = solver.solve_seeded(ctx, vg, vd, seed)?;
                id_vals.push(r.current_a * k);
                q_vals.push(r.charge_c * k);
                if j == 0 {
                    row_head_seed = Some(r.atom_potential_ev.clone());
                }
                prev = Some(r.atom_potential_ev);
            }
        }
        ctx.counter_inc("device.table.scf_builds");
        ctx.counter_add(
            "device.table.scf_points",
            (grid.points * grid.points) as u64,
        );
        ctx.counter_add("device.table.warm_seeds", seeds);
        let mut t = Self::from_node_values(grid, polarity, ribbons, id_vals, q_vals)?;
        t.ribbons = ribbons;
        t.solver_path = "negf-scf".into();
        Ok(t)
    }

    /// The device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The internal bias-grid node coordinates `(vgs_nodes, vds_nodes)` the
    /// table was sampled on (raw n-type convention, before shift/mirror),
    /// as non-allocating iterators.
    pub fn bias_nodes(
        &self,
    ) -> (
        impl Iterator<Item = f64> + '_,
        impl Iterator<Item = f64> + '_,
    ) {
        let g = self.id_a.grid();
        (
            (0..g.x.len()).map(move |i| g.x.point(i)),
            (0..g.y.len()).map(move |j| g.y.point(j)),
        )
    }

    /// Number of parallel ribbons folded into the table.
    pub fn ribbons(&self) -> usize {
        self.ribbons
    }

    /// Which solver path produced the node values: `"surrogate"` for the
    /// analytic SBFET model, `"negf-real-space"` / `"negf-mode-space"` for
    /// the ballistic NEGF table builder, `"negf-scf"` for the rigorous
    /// NEGF⇄Poisson sweep.
    pub fn solver_path(&self) -> &str {
        &self.solver_path
    }

    /// Stamps the builder provenance (crate-internal; tables default to
    /// `"surrogate"`).
    pub(crate) fn set_solver_path(&mut self, path: &str) {
        self.solver_path = path.into();
    }

    /// The current V_T-engineering shift \[V\].
    pub fn vg_shift(&self) -> f64 {
        self.vg_shift
    }

    /// Returns a copy with an additional gate shift: positive `delta_v`
    /// moves the I-V curve towards higher |V_GS|, raising the threshold —
    /// the paper's work-function V_T engineering (§2/§3.1).
    pub fn with_vg_shift(&self, delta_v: f64) -> DeviceTable {
        let mut t = self.clone();
        t.vg_shift += delta_v;
        t
    }

    /// Mirrors this table to the opposite polarity (n↔p).
    pub fn mirrored(&self) -> DeviceTable {
        let mut t = self.clone();
        t.polarity = match self.polarity {
            Polarity::NType => Polarity::PType,
            Polarity::PType => Polarity::NType,
        };
        t
    }

    /// Maps external `(v_gs, v_ds)` to internal n-type table coordinates,
    /// returning `(vg, vd, sign)` where `sign` flips the looked-up current.
    fn map_bias(&self, v_gs: f64, v_ds: f64) -> (f64, f64, f64) {
        let (vg, vd, sign, _) = self.map_bias_swap(v_gs, v_ds);
        (vg, vd, sign)
    }

    /// [`map_bias`](Self::map_bias) plus a flag for whether the
    /// source/drain exchange fired — derivative chain rules differ in the
    /// swapped region.
    fn map_bias_swap(&self, v_gs: f64, v_ds: f64) -> (f64, f64, f64, bool) {
        // Polarity mirror first.
        let (mut vg, mut vd, mut sign) = match self.polarity {
            Polarity::NType => (v_gs, v_ds, 1.0),
            Polarity::PType => (-v_gs, -v_ds, -1.0),
        };
        vg -= self.vg_shift;
        // Source/drain exchange for negative internal drain bias:
        // I(vg, -vd) = -I(vg - vd ... with both terminals swapped the
        // gate-to-new-source voltage is vg - vd.
        let swapped = vd < 0.0;
        if swapped {
            vg -= vd;
            vd = -vd;
            sign = -sign;
        }
        (vg, vd, sign, swapped)
    }

    /// Drain current \[A\] at the external bias `(v_gs, v_ds)`.
    pub fn current(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, sign) = self.map_bias(v_gs, v_ds);
        sign * self.id_a.eval(vg, vd)
    }

    /// Output conductance `∂I_D/∂V_DS` \[S\].
    pub fn gds(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, _, swapped) = self.map_bias_swap(v_gs, v_ds);
        // Unswapped: both sign flips (current and axis) cancel, leaving
        // deriv_y. Swapped: the exchange substitutes vg' = vg - vd, so the
        // external V_DS derivative picks up the gate-axis term as well —
        // dropping it makes the Newton Jacobian inconsistent exactly where
        // series-stack internal nodes land mid-iteration.
        if swapped {
            self.id_a.deriv_x(vg, vd) + self.id_a.deriv_y(vg, vd)
        } else {
            self.id_a.deriv_y(vg, vd)
        }
    }

    /// Transconductance `∂I_D/∂V_GS` \[S\].
    pub fn gm(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, sign) = self.map_bias(v_gs, v_ds);
        let mut g = self.id_a.deriv_x(vg, vd);
        // Internal sign: dI/dVgs external = sign * dI/dvg * dvg/dVgs.
        let chain = match self.polarity {
            Polarity::NType => 1.0,
            Polarity::PType => -1.0,
        };
        g *= sign * chain;
        g
    }

    /// Net channel charge \[C\] at the external bias.
    pub fn charge(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, sign) = self.map_bias(v_gs, v_ds);
        sign * self.q_c.eval(vg, vd)
    }

    /// Intrinsic gate-drain capacitance `C_GD,i = |∂Q/∂V_DS|` \[F\] (§3).
    pub fn cgd_intrinsic(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, _) = self.map_bias(v_gs, v_ds);
        self.q_c.deriv_y(vg, vd).abs()
    }

    /// Intrinsic gate-source capacitance
    /// `C_GS,i = |∂Q/∂V_GS| − |∂Q/∂V_DS|` \[F\], clamped at zero (§3).
    pub fn cgs_intrinsic(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, _) = self.map_bias(v_gs, v_ds);
        (self.q_c.deriv_x(vg, vd).abs() - self.q_c.deriv_y(vg, vd).abs()).max(0.0)
    }

    /// Total intrinsic gate capacitance `C_G,i = |∂Q/∂V_GS|` \[F\].
    pub fn cg_intrinsic(&self, v_gs: f64, v_ds: f64) -> f64 {
        let (vg, vd, _) = self.map_bias(v_gs, v_ds);
        self.q_c.deriv_x(vg, vd).abs()
    }

    /// Folds series contact resistances `R_S`/`R_D` (Ω) into the table,
    /// returning a new table expressed in *external* terminal voltages.
    ///
    /// The paper's extrinsic model (Fig. 3a) places `R_S = R_D ∈ [1, 100] kΩ`
    /// in series with the intrinsic device; because the resistors are
    /// static, they fold exactly into the DC I-V relation by solving
    /// `i = I_int(v_gs − i·R_S, v_ds − i·(R_S+R_D))` at every external grid
    /// node. This keeps logic-gate netlists free of internal nodes, which
    /// is what makes the exploration sweeps cheap. (The displacement
    /// current error introduced by also reading the charge at the internal
    /// bias is O(R·C) ≈ 0.02 ps, negligible against gate delays.)
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for negative resistances.
    pub fn fold_series_resistance(&self, r_s: f64, r_d: f64) -> Result<DeviceTable, DeviceError> {
        if r_s < 0.0 || r_d < 0.0 {
            return Err(DeviceError::config("contact resistances must be >= 0"));
        }
        if r_s == 0.0 && r_d == 0.0 {
            return Ok(self.clone());
        }
        let g = self.id_a.grid();
        let (nx, ny) = (g.x.len(), g.y.len());
        let mut id_vals = Vec::with_capacity(nx * ny);
        let mut q_vals = Vec::with_capacity(nx * ny);
        // A current bound for the bisection bracket: the table's largest
        // magnitude plus margin.
        let mut i_max = 0.0f64;
        for i in 0..nx {
            for j in 0..ny {
                i_max = i_max.max(self.id_a.node(i, j).abs());
            }
        }
        let bound = 2.0 * i_max + 1e-9;
        for i in 0..nx {
            let vg_ext = g.x.point(i);
            for j in 0..ny {
                let vd_ext = g.y.point(j);
                // Solve f(i) = i - I_int(vg - i R_S, vd - i (R_S+R_D)) = 0.
                let f = |cur: f64| {
                    cur - self
                        .id_a
                        .eval(vg_ext - cur * r_s, vd_ext - cur * (r_s + r_d))
                };
                let cur = match gnr_num::roots::brent(f, -bound, bound, 1e-18, 200) {
                    Ok(c) => c,
                    // Monotone in practice; fall back to the unloaded value
                    // if the bracket degenerates at an extreme corner.
                    Err(_) => self.id_a.eval(vg_ext, vd_ext),
                };
                id_vals.push(cur);
                q_vals.push(
                    self.q_c
                        .eval(vg_ext - cur * r_s, vd_ext - cur * (r_s + r_d)),
                );
            }
        }
        Ok(DeviceTable {
            id_a: BilinearTable::new(g, id_vals)?,
            q_c: BilinearTable::new(g, q_vals)?,
            polarity: self.polarity,
            ribbons: self.ribbons,
            vg_shift: self.vg_shift,
            solver_path: self.solver_path.clone(),
        })
    }

    /// Serializes to a JSON string (inspection / caching).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] if serialization fails (does not
    /// occur for finite tables).
    pub fn to_json(&self) -> Result<String, DeviceError> {
        let g = self.id_a.grid();
        let axis = |a: &Grid1| {
            Json::Arr(vec![
                Json::Num(a.start()),
                Json::Num(a.stop()),
                Json::from(a.len()),
            ])
        };
        let nodes = |t: &BilinearTable| -> Json {
            Json::Arr(
                (0..g.x.len())
                    .flat_map(|i| (0..g.y.len()).map(move |j| (i, j)))
                    .map(|(i, j)| Json::Num(t.node(i, j)))
                    .collect(),
            )
        };
        let doc = Json::Obj(vec![
            ("vgs".into(), axis(&g.x)),
            ("vds".into(), axis(&g.y)),
            ("id_a".into(), nodes(&self.id_a)),
            ("q_c".into(), nodes(&self.q_c)),
            (
                "polarity".into(),
                Json::from(match self.polarity {
                    Polarity::NType => "NType",
                    Polarity::PType => "PType",
                }),
            ),
            ("ribbons".into(), Json::from(self.ribbons)),
            ("vg_shift".into(), Json::Num(self.vg_shift)),
            ("solver_path".into(), Json::from(self.solver_path.as_str())),
        ]);
        Ok(doc.dump())
    }

    /// Deserializes a table previously produced by [`DeviceTable::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, DeviceError> {
        let bad = |msg: &str| DeviceError::config(format!("device table json: {msg}"));
        let doc = Json::parse(json).map_err(|e| DeviceError::config(e.to_string()))?;
        let axis = |key: &str| -> Result<Grid1, DeviceError> {
            let a = doc
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| bad(&format!("missing axis '{key}'")))?;
            match a {
                [start, stop, len] => Ok(Grid1::new(
                    start.as_f64().ok_or_else(|| bad("axis start"))?,
                    stop.as_f64().ok_or_else(|| bad("axis stop"))?,
                    len.as_usize().ok_or_else(|| bad("axis length"))?,
                )?),
                _ => Err(bad(&format!("axis '{key}' needs [start, stop, len]"))),
            }
        };
        let values = |key: &str| -> Result<Vec<f64>, DeviceError> {
            doc.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| bad(&format!("missing values '{key}'")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| bad(&format!("non-number in '{key}'")))
                })
                .collect()
        };
        let polarity = match doc.get("polarity").and_then(Json::as_str) {
            Some("NType") => Polarity::NType,
            Some("PType") => Polarity::PType,
            _ => return Err(bad("polarity must be 'NType' or 'PType'")),
        };
        let g2 = Grid2::new(axis("vgs")?, axis("vds")?);
        Ok(DeviceTable {
            id_a: BilinearTable::new(g2, values("id_a")?)?,
            q_c: BilinearTable::new(g2, values("q_c")?)?,
            polarity,
            ribbons: doc
                .get("ribbons")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("missing ribbons"))?,
            vg_shift: doc
                .get("vg_shift")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing vg_shift"))?,
            // Lenient for tables serialized before provenance existed.
            solver_path: doc
                .get("solver_path")
                .and_then(Json::as_str)
                .unwrap_or("surrogate")
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use std::sync::OnceLock;

    fn ctx() -> ExecCtx {
        ExecCtx::serial()
    }

    fn shared_table() -> &'static DeviceTable {
        static TABLE: OnceLock<DeviceTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            let cfg = DeviceConfig::test_small(12).unwrap();
            let model = SbfetModel::new(&cfg).unwrap();
            DeviceTable::from_model(&ctx(), &model, Polarity::NType, TableGrid::coarse(), 4)
                .unwrap()
        })
    }

    #[test]
    fn parallel_table_build_bit_identical_to_serial() {
        let cfg = DeviceConfig::test_small(12).unwrap();
        let model = SbfetModel::new(&cfg).unwrap();
        let serial = shared_table().to_json().unwrap();
        for threads in [2, 4] {
            let par = DeviceTable::from_model(
                &ExecCtx::with_threads(threads),
                &model,
                Polarity::NType,
                TableGrid::coarse(),
                4,
            )
            .unwrap()
            .to_json()
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn bias_nodes_span_the_grid() {
        let t = shared_table();
        let (vgs, vds): (Vec<f64>, Vec<f64>) = {
            let (gx, gy) = t.bias_nodes();
            (gx.collect(), gy.collect())
        };
        assert_eq!(vgs.len(), 13);
        assert_eq!(vds.len(), 13);
        assert!((vgs[0] - (-0.3)).abs() < 1e-12);
        assert!((vgs[12] - 0.9).abs() < 1e-12);
        assert!((vds[0]).abs() < 1e-12);
        assert!((vds[12] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn four_ribbons_carry_four_times_single_current() {
        let cfg = DeviceConfig::test_small(12).unwrap();
        let model = SbfetModel::new(&cfg).unwrap();
        let one = DeviceTable::from_model(&ctx(), &model, Polarity::NType, TableGrid::coarse(), 1)
            .unwrap();
        let four = shared_table();
        let i1 = one.current(0.5, 0.5);
        let i4 = four.current(0.5, 0.5);
        assert!(
            (i4 - 4.0 * i1).abs() < 1e-3 * i4.abs(),
            "{i1:.3e} vs {i4:.3e}"
        );
        assert_eq!(four.ribbons(), 4);
    }

    #[test]
    fn ptype_mirror_symmetry() {
        let t = shared_table();
        let p = t.mirrored();
        assert_eq!(p.polarity(), Polarity::PType);
        // I_p(-vg, -vd) = -I_n(vg, vd)
        let a = t.current(0.4, 0.3);
        let b = p.current(-0.4, -0.3);
        assert!(
            (a + b).abs() < 1e-12 * a.abs().max(1e-18),
            "{a:.3e} {b:.3e}"
        );
    }

    #[test]
    fn negative_vds_antisymmetry_at_matched_gate() {
        // Swapping source and drain: I(vg, -vd) = -I(vg - vd, vd).
        let t = shared_table();
        let a = t.current(0.2, -0.3);
        let b = -t.current(0.5, 0.3);
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1e-15),
            "{a:.3e} vs {b:.3e}"
        );
    }

    #[test]
    fn zero_vds_zero_current() {
        let t = shared_table();
        for vg in [-0.2, 0.0, 0.3, 0.7] {
            let i = t.current(vg, 0.0);
            assert!(i.abs() < 1e-9, "I({vg}, 0) = {i:.3e}");
        }
    }

    #[test]
    fn vg_shift_translates_curve() {
        let t = shared_table();
        let shifted = t.with_vg_shift(0.15);
        let a = t.current(0.5, 0.4);
        let b = shifted.current(0.65, 0.4);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1e-15));
        assert!((shifted.vg_shift() - 0.15).abs() < 1e-15);
    }

    #[test]
    fn capacitances_positive_and_finite() {
        let t = shared_table();
        for vg in [0.0, 0.3, 0.6] {
            for vd in [0.05, 0.3, 0.6] {
                let cgd = t.cgd_intrinsic(vg, vd);
                let cgs = t.cgs_intrinsic(vg, vd);
                let cg = t.cg_intrinsic(vg, vd);
                assert!(cgd >= 0.0 && cgd.is_finite());
                assert!(cgs >= 0.0 && cgs.is_finite());
                assert!(cg > 0.0 && cg < 1e-15, "C_G = {cg:.3e} F");
            }
        }
    }

    #[test]
    fn gm_positive_in_ntype_branch() {
        let t = shared_table();
        assert!(t.gm(0.6, 0.5) > 0.0);
        // p-type mirror: gm of the p-device at its active branch.
        let p = t.mirrored();
        assert!(p.gm(-0.6, -0.5) > 0.0, "gm_p = {}", p.gm(-0.6, -0.5));
    }

    #[test]
    fn json_roundtrip_preserves_lookup() {
        let t = shared_table();
        let json = t.to_json().unwrap();
        let back = DeviceTable::from_json(&json).unwrap();
        for vg in [-0.1, 0.2, 0.55] {
            for vd in [0.0, 0.25, 0.7] {
                assert!((t.current(vg, vd) - back.current(vg, vd)).abs() < 1e-18);
                assert!((t.charge(vg, vd) - back.charge(vg, vd)).abs() < 1e-30);
            }
        }
        assert!(DeviceTable::from_json("not json").is_err());
    }

    #[test]
    fn rejects_empty_model_list() {
        let models: Vec<SbfetModel> = Vec::new();
        assert!(matches!(
            DeviceTable::from_ribbon_models(&ctx(), &models, Polarity::NType, TableGrid::coarse()),
            Err(DeviceError::Config { .. })
        ));
    }
}
