//! Device geometry and its mapping onto the electrostatics grid.
//!
//! The paper's device: a 15 nm armchair GNR channel, double-gate through
//! 1.5 nm SiO₂ (`ε_r = 3.9`), metal source/drain blocks at the channel ends
//! acting as Schottky contacts. Everything is rectilinear, so the geometry
//! maps exactly onto the structured Poisson grid.

use crate::error::DeviceError;
use gnr_lattice::{AGnr, BandStructure};
use gnr_num::consts::EPS_R_SIO2;
use gnr_poisson::{Grid3, PoissonProblem, Region};

/// Complete description of one GNRFET device (geometry + environment).
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// The channel ribbon.
    pub gnr: AGnr,
    /// Channel length in unit cells along transport (paper: 35 ≈ 15 nm).
    pub channel_cells: usize,
    /// Gate-oxide thickness \[nm\] (paper: 1.5).
    pub t_ox_nm: f64,
    /// Source/drain metal block length \[nm\].
    pub contact_nm: f64,
    /// Poisson grid spacing \[nm\].
    pub grid_h_nm: f64,
    /// Lattice temperature \[K\].
    pub temperature_k: f64,
    /// Wide-band Schottky contact coupling γ \[eV\].
    pub contact_gamma_ev: f64,
    /// Gate work-function offset \[V\]: shifts the effective gate voltage,
    /// the paper's V_T-engineering knob (§2, Fig. 2b).
    pub gate_offset_v: f64,
}

impl DeviceConfig {
    /// The paper's nominal device for GNR index `n`: 15 nm channel
    /// (35 unit cells), 1.5 nm SiO₂, double gate, mid-gap Schottky contacts.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Lattice`] for an invalid index.
    pub fn paper_nominal(n: usize) -> Result<Self, DeviceError> {
        Ok(DeviceConfig {
            gnr: AGnr::new(n)?,
            channel_cells: 35,
            t_ox_nm: 1.5,
            contact_nm: 1.5,
            grid_h_nm: 0.25,
            temperature_k: 300.0,
            contact_gamma_ev: 0.5,
            gate_offset_v: 0.0,
        })
    }

    /// A reduced-fidelity configuration for fast tests: shorter channel and
    /// coarser grid, same physics.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Lattice`] for an invalid index.
    pub fn test_small(n: usize) -> Result<Self, DeviceError> {
        Ok(DeviceConfig {
            gnr: AGnr::new(n)?,
            // ~10.7 nm: long enough that direct source-drain tunneling does
            // not swamp the Schottky-barrier behaviour.
            channel_cells: 25,
            t_ox_nm: 1.5,
            contact_nm: 1.0,
            grid_h_nm: 0.5,
            temperature_k: 300.0,
            contact_gamma_ev: 0.5,
            gate_offset_v: 0.0,
        })
    }

    /// Channel length in nm.
    pub fn channel_nm(&self) -> f64 {
        self.channel_cells as f64 * self.gnr.period_m() * 1e9
    }

    /// Band structure of the channel ribbon (cached by callers).
    ///
    /// # Errors
    ///
    /// Propagates band-solve failures.
    pub fn bands(&self) -> Result<BandStructure, DeviceError> {
        Ok(self.gnr.band_structure(128)?)
    }

    /// Grid cell counts `(nx, ny, nz)` implied by the geometry.
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        let h = self.grid_h_nm;
        let cells = |nm: f64| -> usize { (nm / h).round().max(1.0) as usize };
        let nx = cells(self.contact_nm) * 2 + cells(self.channel_nm());
        // Width margin of >= 1 nm on each side of the widest ribbon.
        let w = self.gnr.width_nm();
        let ny = cells(w + 2.0);
        // gate | oxide | GNR plane | oxide | gate
        let nz = 1 + cells(self.t_ox_nm) + 1 + cells(self.t_ox_nm) + 1;
        (nx, ny, nz)
    }

    /// z-index of the GNR plane.
    pub fn gnr_plane_k(&self) -> usize {
        1 + (self.t_ox_nm / self.grid_h_nm).round() as usize
    }

    /// x-index range `[first, last]` of the channel region.
    pub fn channel_x_range(&self) -> (usize, usize) {
        let c = (self.contact_nm / self.grid_h_nm).round() as usize;
        let (nx, _, _) = self.grid_dims();
        (c, nx - c - 1)
    }

    /// Builds the Poisson problem for electrode potentials `(v_s, v_d, v_g)`
    /// volts. The gate electrode already includes the work-function offset.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn build_poisson(
        &self,
        v_s: f64,
        v_d: f64,
        v_g: f64,
    ) -> Result<PoissonProblem, DeviceError> {
        let (nx, ny, nz) = self.grid_dims();
        let grid = Grid3::new(nx, ny, nz, self.grid_h_nm)?;
        let mut p = PoissonProblem::new(grid);
        // Oxide everywhere in the stack interior.
        p.set_dielectric(
            Region::new((0, nx - 1), (0, ny - 1), (1, nz - 2)),
            EPS_R_SIO2,
        );
        let (ch0, ch1) = self.channel_x_range();
        let v_g_eff = v_g + self.gate_offset_v;
        // Double gate: bottom (k = 0) and top (k = nz-1) planes over the
        // channel footprint only.
        p.set_electrode(Region::new((ch0, ch1), (0, ny - 1), (0, 0)), v_g_eff);
        p.set_electrode(
            Region::new((ch0, ch1), (0, ny - 1), (nz - 1, nz - 1)),
            v_g_eff,
        );
        // Source and drain metal blocks fill the stack at the channel ends.
        if ch0 > 0 {
            p.set_electrode(Region::new((0, ch0 - 1), (0, ny - 1), (1, nz - 2)), v_s);
        }
        if ch1 + 1 < nx {
            p.set_electrode(
                Region::new((ch1 + 1, nx - 1), (0, ny - 1), (1, nz - 2)),
                v_d,
            );
        }
        Ok(p)
    }

    /// Samples the electrostatic potential along the ribbon axis: one value
    /// per channel-region grid column, at the ribbon plane and width centre.
    pub fn sample_along_channel(&self, sol: &gnr_poisson::PoissonSolution) -> Vec<f64> {
        let (ch0, ch1) = self.channel_x_range();
        let (_, ny, _) = self.grid_dims();
        let h = self.grid_h_nm;
        let y_mid = ny as f64 * h / 2.0;
        let z_gnr = (self.gnr_plane_k() as f64 + 0.5) * h;
        (ch0..=ch1)
            .map(|i| sol.potential_at((i as f64 + 0.5) * h, y_mid, z_gnr))
            .collect()
    }

    /// Electrode response profiles along the channel: the potential that a
    /// unit volt on (source, drain, gate) produces on the ribbon with all
    /// other electrodes grounded. By linearity of the Laplace problem,
    /// `φ(x) = g_s·V_S + g_d·V_D + g_g·(V_G + offset)` for any bias.
    ///
    /// # Errors
    ///
    /// Propagates Poisson failures.
    pub fn electrode_responses(&self) -> Result<ResponseProfiles, DeviceError> {
        // Unit-source response.
        let mut cfg = self.clone();
        cfg.gate_offset_v = 0.0;
        let limits = gnr_num::budget::ExecLimits::none();
        let mut g_s =
            cfg.sample_along_channel(&cfg.build_poisson(1.0, 0.0, 0.0)?.solve(None, &limits)?);
        let mut g_d =
            cfg.sample_along_channel(&cfg.build_poisson(0.0, 1.0, 0.0)?.solve(None, &limits)?);
        let mut g_g =
            cfg.sample_along_channel(&cfg.build_poisson(0.0, 0.0, 1.0)?.solve(None, &limits)?);
        // Pin the contact faces explicitly: the metal Fermi level clamps the
        // ribbon potential at the interfaces (mid-gap Schottky pinning), and
        // the half-cell-offset samples would otherwise miss the thin barrier
        // top at the contact.
        g_s.insert(0, 1.0);
        g_s.push(0.0);
        g_d.insert(0, 0.0);
        g_d.push(1.0);
        g_g.insert(0, 0.0);
        g_g.push(0.0);
        Ok(ResponseProfiles {
            x_step_nm: self.grid_h_nm,
            g_source: g_s,
            g_drain: g_d,
            g_gate: g_g,
        })
    }
}

/// Laplace response of the ribbon potential to unit electrode voltages,
/// sampled per grid column along the channel.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseProfiles {
    /// Spacing between samples \[nm\].
    pub x_step_nm: f64,
    /// Response to V_S = 1 V.
    pub g_source: Vec<f64>,
    /// Response to V_D = 1 V.
    pub g_drain: Vec<f64>,
    /// Response to V_G = 1 V.
    pub g_gate: Vec<f64>,
}

impl ResponseProfiles {
    /// Number of samples along the channel.
    pub fn len(&self) -> usize {
        self.g_gate.len()
    }

    /// `true` if the profile is empty (never for a valid device).
    pub fn is_empty(&self) -> bool {
        self.g_gate.is_empty()
    }

    /// The ribbon potential profile for bias `(v_s, v_d, v_g_eff)` \[V\].
    pub fn superpose(&self, v_s: f64, v_d: f64, v_g_eff: f64) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.g_source[i] * v_s + self.g_drain[i] * v_d + self.g_gate[i] * v_g_eff)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_geometry_matches_paper() {
        let cfg = DeviceConfig::paper_nominal(12).unwrap();
        assert!((cfg.channel_nm() - 14.9).abs() < 0.1);
        assert_eq!(cfg.t_ox_nm, 1.5);
        let (nx, ny, nz) = cfg.grid_dims();
        assert!(nx > 60 && ny >= 10 && nz == 15);
    }

    #[test]
    fn grid_regions_consistent() {
        let cfg = DeviceConfig::test_small(9).unwrap();
        let (nx, _, nz) = cfg.grid_dims();
        let (c0, c1) = cfg.channel_x_range();
        assert!(c0 > 0 && c1 < nx - 1);
        assert!(cfg.gnr_plane_k() > 0 && cfg.gnr_plane_k() < nz - 1);
    }

    #[test]
    fn responses_partition_unity_mid_channel() {
        let cfg = DeviceConfig::test_small(9).unwrap();
        let r = cfg.electrode_responses().unwrap();
        let mid = r.len() / 2;
        let total = r.g_source[mid] + r.g_drain[mid] + r.g_gate[mid];
        // With Neumann outer walls the three responses nearly partition
        // unity on the ribbon (small leakage through the side margins).
        assert!((total - 1.0).abs() < 0.05, "sum {total}");
        // Mid-channel is gate dominated in a 1.5 nm-oxide double gate.
        assert!(r.g_gate[mid] > 0.8, "gate control {}", r.g_gate[mid]);
    }

    #[test]
    fn responses_boundary_dominated_by_contacts() {
        let cfg = DeviceConfig::test_small(9).unwrap();
        let r = cfg.electrode_responses().unwrap();
        assert!(r.g_source[0] > 0.3, "source face {}", r.g_source[0]);
        assert!(r.g_drain[r.len() - 1] > 0.3);
        assert!(r.g_source[r.len() - 1] < 0.05);
        assert!(r.g_drain[0] < 0.05);
    }

    #[test]
    fn superposition_is_linear() {
        let cfg = DeviceConfig::test_small(9).unwrap();
        let r = cfg.electrode_responses().unwrap();
        let a = r.superpose(0.1, 0.5, 0.4);
        let b = r.superpose(0.2, 1.0, 0.8);
        for (x, y) in a.iter().zip(&b) {
            assert!((2.0 * x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn full_bias_poisson_matches_superposition() {
        // Laplace linearity: a direct solve at a bias point equals the
        // superposed unit responses.
        let cfg = DeviceConfig::test_small(9).unwrap();
        let r = cfg.electrode_responses().unwrap();
        let direct = cfg.sample_along_channel(
            &cfg.build_poisson(0.0, 0.5, 0.3)
                .unwrap()
                .solve(None, &gnr_num::budget::ExecLimits::none())
                .unwrap(),
        );
        let sup = r.superpose(0.0, 0.5, 0.3);
        // superpose() carries two pinned boundary samples; skip them.
        for (d, s) in direct.iter().zip(&sup[1..]) {
            assert!((d - s).abs() < 1e-6, "{d} vs {s}");
        }
    }

    #[test]
    fn thinner_oxide_improves_gate_control() {
        // The paper (§4) names oxide-thickness control as a variability
        // source alongside width: a thinner oxide must raise the gate's
        // share of the ribbon potential.
        let mut thin = DeviceConfig::test_small(12).unwrap();
        thin.t_ox_nm = 1.0;
        let mut thick = DeviceConfig::test_small(12).unwrap();
        thick.t_ox_nm = 2.0;
        let g_thin = thin.electrode_responses().unwrap();
        let g_thick = thick.electrode_responses().unwrap();
        let mid_thin = g_thin.g_gate[g_thin.len() / 2];
        let mid_thick = g_thick.g_gate[g_thick.len() / 2];
        assert!(
            mid_thin > mid_thick + 0.01,
            "gate control: t_ox=1nm {mid_thin:.3} vs t_ox=2nm {mid_thick:.3}"
        );
    }

    #[test]
    fn gate_offset_shifts_effective_gate() {
        let mut cfg = DeviceConfig::test_small(9).unwrap();
        cfg.gate_offset_v = 0.2;
        let direct = cfg.sample_along_channel(
            &cfg.build_poisson(0.0, 0.0, 0.1)
                .unwrap()
                .solve(None, &gnr_num::budget::ExecLimits::none())
                .unwrap(),
        );
        let r = cfg.electrode_responses().unwrap();
        let sup = r.superpose(0.0, 0.0, 0.1 + 0.2);
        for (d, s) in direct.iter().zip(&sup[1..]) {
            assert!((d - s).abs() < 1e-6);
        }
    }
}
