//! Ballistic NEGF lookup-table builder — the bias-sweep hot path the
//! transport acceleration layer exists for.
//!
//! [`ballistic_negf_table`] runs the full Sancho–Rubio + RGF transport
//! machinery at every `(V_GS, V_DS)` node of a [`TableGrid`]: the channel
//! potential is frozen from the surrogate's self-consistent profile
//! ([`SbfetModel::potential_profile`], whose boundary samples are pinned at
//! the contact potentials `0` and `−V_DS`), the contacts are semi-infinite
//! GNR leads at those potentials, and current/charge come from
//! [`integrate_transport_with`]. Unlike the wide-band-metal SCF path, every
//! energy point here pays two Sancho–Rubio decimations — exactly the
//! redundant structure the [`SurfaceGfCache`] removes.
//!
//! Sweep design for cache reuse:
//! * one **global energy window** `[−V_DS,max − pad, +pad]` shared by all
//!   bias points, so the source-lead entries (potential 0) are computed
//!   once for the entire sweep;
//! * the energy step is **snapped to divide the `V_DS` grid spacing**, so a
//!   drain lead at `−V_DS` sees relative energies `E + V_DS` that land on
//!   the same quantized lattice — each new drain bias adds only the few
//!   keys at the window edge instead of a full fresh set;
//! * all base-lattice entries are primed **serially up front** (the
//!   pre-indexing that fixes cache order and miss counters), then the bias
//!   points run in fixed row-major order with the energy loop parallel on
//!   `ctx`'s pool — results and telemetry are bit-identical for any
//!   `GNR_THREADS`.

use crate::error::DeviceError;
use crate::sbfet::SbfetModel;
use crate::table::{DeviceTable, Polarity, TableGrid};
use gnr_lattice::DeviceHamiltonian;
use gnr_negf::mode_space::{ModeBasis, ModeSpaceOptions, ModeSpaceSolver};
use gnr_negf::transport::{
    integrate_transport_with, EnergyGrid, RefineOptions, SpectralSolver, TransportOptions,
};
use gnr_negf::{Lead, RgfSolver, SurfaceGfCache};
use gnr_num::par::ExecCtx;
use gnr_num::Grid1;
use std::sync::Arc;

/// Controls for the ballistic NEGF table sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NegfTableOptions {
    /// Requested energy-grid step (eV); snapped to divide the `V_DS` grid
    /// spacing. With `refine` set this is the *coarse base* step.
    pub energy_step_ev: f64,
    /// Window padding beyond the bias window on each side (eV).
    pub energy_pad_ev: f64,
    /// Adaptive refinement of the energy grid; `None` = uniform.
    pub refine: Option<RefineOptions>,
    /// Serve lead self-energies from a sweep-wide [`SurfaceGfCache`].
    pub use_cache: bool,
    /// Run the sweep through the reduced mode-space solver path
    /// ([`ModeSpaceSolver`]); `None` keeps dense real-space RGF.
    pub mode_space: Option<ModeSpaceOptions>,
}

impl NegfTableOptions {
    /// The legacy A/B reference: dense uniform grid, no cache — every
    /// energy point of every bias point pays fresh Sancho–Rubio solves.
    pub fn legacy() -> Self {
        NegfTableOptions {
            energy_step_ev: 0.015,
            energy_pad_ev: 0.25,
            refine: None,
            use_cache: false,
            mode_space: None,
        }
    }

    /// The accelerated path: 5× coarser base grid with band-edge
    /// refinement, and the shared surface-GF cache. The charge (DOS)
    /// refinement trigger is loosened relative to the SCF default — the
    /// table's gate is the 1e-6 A I–V conformance, and the van Hove
    /// structure of the GNR leads would otherwise drive every band edge to
    /// full depth and eat the speedup.
    pub fn accelerated() -> Self {
        NegfTableOptions {
            energy_step_ev: 0.075,
            energy_pad_ev: 0.25,
            refine: Some(RefineOptions {
                tol_dos_rel: 0.6,
                ..RefineOptions::default()
            }),
            use_cache: true,
            mode_space: None,
        }
    }

    /// The mode-space path: the accelerated sweep run on reduced
    /// transverse-mode blocks, with the separability monitor guarding the
    /// transform (degraded devices transparently fall back to real-space).
    pub fn mode_space() -> Self {
        NegfTableOptions {
            mode_space: Some(ModeSpaceOptions::default()),
            ..NegfTableOptions::accelerated()
        }
    }

    /// Sets the (coarse base) energy-grid step \[eV\].
    pub fn with_energy_step_ev(mut self, step: f64) -> Self {
        self.energy_step_ev = step;
        self
    }

    /// Sets the window padding beyond the bias window \[eV\].
    pub fn with_energy_pad_ev(mut self, pad: f64) -> Self {
        self.energy_pad_ev = pad;
        self
    }

    /// Sets (or clears) adaptive energy-grid refinement.
    pub fn with_refine(mut self, refine: Option<RefineOptions>) -> Self {
        self.refine = refine;
        self
    }

    /// Enables or disables the sweep-wide surface-GF cache.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Sets (or clears) the mode-space solver path.
    pub fn with_mode_space(mut self, mode_space: Option<ModeSpaceOptions>) -> Self {
        self.mode_space = mode_space;
        self
    }

    /// The provenance string recorded on tables built with these options
    /// (see [`DeviceTable::solver_path`]).
    pub fn solver_path(&self) -> &'static str {
        if self.mode_space.is_some() {
            "negf-mode-space"
        } else {
            "negf-real-space"
        }
    }
}

impl Default for NegfTableOptions {
    /// The [`accelerated`](NegfTableOptions::accelerated) production path.
    fn default() -> Self {
        NegfTableOptions::accelerated()
    }
}

/// Interpolates the surrogate potential profile (samples at
/// `x = (i − ½)·dx`, pinned faces just outside the channel) onto the atom
/// `x` positions, clamping at the contact faces.
fn profile_at(u: &[f64], dx_nm: f64, x_nm: f64) -> f64 {
    let s = x_nm / dx_nm + 0.5;
    if s <= 0.0 {
        return u[0];
    }
    let i0 = s.floor() as usize;
    if i0 + 1 >= u.len() {
        return u[u.len() - 1];
    }
    let frac = s - i0 as f64;
    u[i0] * (1.0 - frac) + u[i0 + 1] * frac
}

/// Runs the frozen-potential transport sweep over the bias grid with one
/// solver instance per node, in fixed row-major order. Generic over the
/// solver path ([`RgfSolver`] or [`ModeSpaceSolver`]) so both share the
/// exact bias/energy loop structure — and therefore the same determinism
/// contract.
#[allow(clippy::too_many_arguments)]
fn sweep_grid<S, F>(
    ctx: &ExecCtx,
    gy: &Grid1,
    points: usize,
    gnr: gnr_lattice::AGnr,
    cells: usize,
    atom_pots: &[Vec<f64>],
    energy_grid: &EnergyGrid,
    topts: &TransportOptions,
    temperature_k: f64,
    scale: f64,
    make_solver: F,
) -> Result<(Vec<f64>, Vec<f64>), DeviceError>
where
    S: SpectralSolver + Sync,
    F: Fn(&DeviceHamiltonian, f64) -> Result<S, DeviceError>,
{
    let mut id_vals = Vec::with_capacity(points * points);
    let mut q_vals = Vec::with_capacity(points * points);
    for i in 0..points {
        for j in 0..points {
            let vd = gy.point(j);
            let atom_pot = &atom_pots[i * points + j];
            let ham = DeviceHamiltonian::new(gnr, cells, atom_pot)?;
            let solver = make_solver(&ham, vd)?;
            let r = integrate_transport_with(
                ctx,
                &solver,
                energy_grid,
                topts,
                0.0,
                -vd,
                temperature_k,
                atom_pot,
            )?;
            id_vals.push(r.current_a * scale);
            q_vals.push(r.charge.total() * gnr_num::consts::Q_E * scale);
        }
    }
    Ok((id_vals, q_vals))
}

/// Builds a [`DeviceTable`] by ballistic NEGF transport at every bias node,
/// scaled by `ribbons` identical parallel ribbons.
///
/// The channel potential at each `(v_g, v_d)` is the surrogate's
/// self-consistent profile; source and drain are semi-infinite GNR contacts
/// at potentials `0` and `−v_d` with Fermi levels `μ_s = 0`, `μ_d = −v_d`.
/// With [`NegfTableOptions::legacy`] this is the uniform-grid,
/// fresh-Sancho–Rubio reference; with [`NegfTableOptions::accelerated`]
/// the same sweep reuses cached surface GFs across bias points and refines
/// the energy grid only where `T(E)` has structure.
///
/// # Errors
///
/// Returns [`DeviceError::Config`] for a degenerate grid; propagates
/// lattice, lead, and transport failures.
pub fn ballistic_negf_table(
    ctx: &ExecCtx,
    model: &SbfetModel,
    polarity: Polarity,
    grid: TableGrid,
    ribbons: usize,
    opts: &NegfTableOptions,
) -> Result<DeviceTable, DeviceError> {
    if grid.points < 3 {
        return Err(DeviceError::config("table grid needs >= 3 points/axis"));
    }
    if opts.energy_step_ev.is_nan() || opts.energy_step_ev <= 0.0 || !opts.energy_pad_ev.is_finite()
    {
        return Err(DeviceError::config("invalid energy grid options"));
    }
    let cfg = model.config();
    let gnr = cfg.gnr;
    let cells = cfg.channel_cells;
    let m = gnr.atoms_per_cell();
    let lattice = gnr.lattice(cells);
    let atom_x_nm: Vec<f64> = lattice.atoms().iter().map(|a| a.x * 1e9).collect();
    debug_assert_eq!(atom_x_nm.len(), cells * m);
    let dx_nm = cfg.grid_h_nm;

    let gx = Grid1::new(grid.vgs.0, grid.vgs.1, grid.points)?;
    let gy = Grid1::new(grid.vds.0, grid.vds.1, grid.points)?;

    // Global energy window covering every bias point's transport integral,
    // with the step snapped so the vds spacing is an integer number of
    // energy steps (drain-lead cache keys then collide across biases).
    let vd_hi = grid.vds.0.abs().max(grid.vds.1.abs());
    let lo = -vd_hi - opts.energy_pad_ev;
    let hi = opts.energy_pad_ev;
    let dvd = (grid.vds.1 - grid.vds.0) / (grid.points - 1) as f64;
    let step = if dvd > opts.energy_step_ev {
        dvd / (dvd / opts.energy_step_ev).round()
    } else if dvd > 0.0 {
        dvd
    } else {
        opts.energy_step_ev
    };
    let energy_grid = EnergyGrid::with_step(lo, hi, step)?;
    let base_energies: Vec<f64> = energy_grid.energies().collect();

    let cache = opts.use_cache.then(|| Arc::new(SurfaceGfCache::new()));
    let topts = TransportOptions {
        refine: opts.refine,
        cache: cache.clone(),
    };

    // Freeze every bias node's channel potential up front (row-major), so
    // the mode-space window pre-pass and the sweep see identical profiles.
    let mut atom_pots: Vec<Vec<f64>> = Vec::with_capacity(grid.points * grid.points);
    for i in 0..grid.points {
        let vg = gx.point(i);
        for j in 0..grid.points {
            let u = model.potential_profile(vg, gy.point(j));
            atom_pots.push(
                atom_x_nm
                    .iter()
                    .map(|&x| profile_at(&u, dx_nm, x))
                    .collect(),
            );
        }
    }

    // Serial pre-indexing: prime every (slot, snapped-energy) base entry in
    // fixed drain-bias order before the sweep. The lead blocks do not
    // depend on the channel potential, so one representative (flat-band)
    // Hamiltonian serves all gate voltages — and, on the mode-space path,
    // is never degraded, so it primes the *reduced* lead entries.
    let zero_pot = vec![0.0; cells * m];
    let rep_ham = DeviceHamiltonian::new(gnr, cells, &zero_pot)?;

    // The sweep: bias points serial (the inner energy loop parallelizes on
    // ctx's pool; nesting pool dispatch is not supported), row-major order.
    let k = ribbons.max(1) as f64;
    let (id_vals, q_vals) = match &opts.mode_space {
        Some(ms) => {
            // Mode-selection window: a band at energy B under potential U
            // appears at B + U, so covering E ∈ [lo, hi] for every swept
            // potential U ∈ [u_min, u_max] needs B ∈ [lo − u_max, hi − u_min].
            // The lead potentials 0 and −vd are folded in explicitly (the
            // surrogate profile pins them at the faces anyway).
            let (mut u_min, mut u_max) = (0.0f64, 0.0f64);
            for &p in atom_pots.iter().flatten() {
                u_min = u_min.min(p);
                u_max = u_max.max(p);
            }
            for j in 0..grid.points {
                u_min = u_min.min(-gy.point(j));
                u_max = u_max.max(-gy.point(j));
            }
            let (lead_h00, lead_h01) = gnr_lattice::unit_cell_hamiltonian(gnr);
            let basis = ModeBasis::build(&lead_h00, &lead_h01, lo - u_max, hi - u_min, ms)?;
            if let Some(cache) = &cache {
                for j in 0..grid.points {
                    let vd = gy.point(j);
                    let solver = ModeSpaceSolver::new(
                        &rep_ham,
                        Lead::gnr_contact(),
                        Lead::gnr_contact_at(-vd),
                        &basis,
                        ms,
                    )?;
                    solver.prime_surface_cache(ctx, cache, &base_energies)?;
                }
            }
            ctx.counter_add("device.negf_table.mode_space_modes", basis.modes() as u64);
            sweep_grid(
                ctx,
                &gy,
                grid.points,
                gnr,
                cells,
                &atom_pots,
                &energy_grid,
                &topts,
                cfg.temperature_k,
                k,
                |ham, vd| {
                    Ok(ModeSpaceSolver::new(
                        ham,
                        Lead::gnr_contact(),
                        Lead::gnr_contact_at(-vd),
                        &basis,
                        ms,
                    )?)
                },
            )?
        }
        None => {
            if let Some(cache) = &cache {
                for j in 0..grid.points {
                    let vd = gy.point(j);
                    let solver =
                        RgfSolver::new(&rep_ham, Lead::gnr_contact(), Lead::gnr_contact_at(-vd));
                    solver.prime_surface_cache(ctx, cache, &base_energies)?;
                }
            }
            sweep_grid(
                ctx,
                &gy,
                grid.points,
                gnr,
                cells,
                &atom_pots,
                &energy_grid,
                &topts,
                cfg.temperature_k,
                k,
                |ham, vd| {
                    Ok(RgfSolver::new(
                        ham,
                        Lead::gnr_contact(),
                        Lead::gnr_contact_at(-vd),
                    ))
                },
            )?
        }
    };
    ctx.counter_inc("device.negf_table.builds");
    ctx.counter_add(
        "device.negf_table.bias_points",
        (grid.points * grid.points) as u64,
    );
    let mut table = DeviceTable::from_node_values(grid, polarity, ribbons.max(1), id_vals, q_vals)?;
    table.set_solver_path(opts.solver_path());
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn small_model() -> SbfetModel {
        let mut cfg = DeviceConfig::test_small(7).unwrap();
        cfg.channel_cells = 4;
        SbfetModel::new(&cfg).unwrap()
    }

    fn small_grid() -> TableGrid {
        TableGrid {
            vgs: (0.0, 0.5),
            vds: (0.05, 0.35),
            points: 3,
        }
    }

    #[test]
    fn accelerated_matches_legacy_within_current_tolerance() {
        let model = small_model();
        let ctx = ExecCtx::serial();
        let legacy = ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            small_grid(),
            1,
            &NegfTableOptions::legacy(),
        )
        .unwrap();
        let accel = ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            small_grid(),
            1,
            &NegfTableOptions::accelerated(),
        )
        .unwrap();
        let (vgs, vds): (Vec<f64>, Vec<f64>) = {
            let (a, b) = legacy.bias_nodes();
            (a.collect(), b.collect())
        };
        for &vg in &vgs {
            for &vd in &vds {
                let (il, ia) = (legacy.current(vg, vd), accel.current(vg, vd));
                assert!(
                    (il - ia).abs() < 1e-6,
                    "I({vg}, {vd}): legacy {il:.6e} vs accelerated {ia:.6e}"
                );
            }
        }
    }

    #[test]
    fn mode_space_matches_real_space_within_current_tolerance() {
        let model = small_model();
        let ctx = ExecCtx::serial();
        let real = ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            small_grid(),
            1,
            &NegfTableOptions::accelerated(),
        )
        .unwrap();
        let ms = ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            small_grid(),
            1,
            &NegfTableOptions::mode_space(),
        )
        .unwrap();
        assert_eq!(real.solver_path(), "negf-real-space");
        assert_eq!(ms.solver_path(), "negf-mode-space");
        let (vgs, vds): (Vec<f64>, Vec<f64>) = {
            let (a, b) = real.bias_nodes();
            (a.collect(), b.collect())
        };
        for &vg in &vgs {
            for &vd in &vds {
                let (ir, im) = (real.current(vg, vd), ms.current(vg, vd));
                assert!(
                    (ir - im).abs() < 1e-6,
                    "I({vg}, {vd}): real-space {ir:.6e} vs mode-space {im:.6e}"
                );
            }
        }
    }

    #[test]
    fn currents_increase_with_drive() {
        let model = small_model();
        let ctx = ExecCtx::serial();
        let t = ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            small_grid(),
            1,
            &NegfTableOptions::accelerated(),
        )
        .unwrap();
        let on = t.current(0.5, 0.35);
        let off = t.current(0.0, 0.35);
        assert!(on.is_finite() && off.is_finite());
        assert!(on > off, "on {on:.3e} off {off:.3e}");
    }

    #[test]
    fn ribbons_scale_linearly() {
        let model = small_model();
        let ctx = ExecCtx::serial();
        let opts = NegfTableOptions::accelerated();
        let one =
            ballistic_negf_table(&ctx, &model, Polarity::NType, small_grid(), 1, &opts).unwrap();
        let four =
            ballistic_negf_table(&ctx, &model, Polarity::NType, small_grid(), 4, &opts).unwrap();
        let (i1, i4) = (one.current(0.4, 0.3), four.current(0.4, 0.3));
        assert!((i4 - 4.0 * i1).abs() <= 1e-9 * i4.abs().max(1e-15));
        assert_eq!(four.ribbons(), 4);
    }

    #[test]
    fn rejects_bad_options() {
        let model = small_model();
        let ctx = ExecCtx::serial();
        let mut bad = NegfTableOptions::legacy();
        bad.energy_step_ev = 0.0;
        assert!(
            ballistic_negf_table(&ctx, &model, Polarity::NType, small_grid(), 1, &bad).is_err()
        );
        let mut tiny = small_grid();
        tiny.points = 2;
        assert!(ballistic_negf_table(
            &ctx,
            &model,
            Polarity::NType,
            tiny,
            1,
            &NegfTableOptions::legacy()
        )
        .is_err());
    }
}
